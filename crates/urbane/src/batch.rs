//! The batching planner: coalesce concurrent queries into one raster pass.
//!
//! Under concurrent load, the serving layer's queries are dominated by the
//! raster passes' *shared* work: projecting every point through the
//! viewport and rasterizing every region polygon. Queries that agree on
//! `(dataset, generation, level, mode, resolution)` — the dimensions that
//! fix the canvas and the geometry — differ only in their filter
//! conjunction and aggregate, which raster-join's batched executor
//! ([`raster_join::RasterJoin::execute_batch_store`]) evaluates as
//! per-target masks over a single pass. The planner's job is purely
//! admission: hold the first arrival for a short *window*, admit compatible
//! arrivals into the same group, then run the whole group as one batch.
//!
//! Protocol (leader/follower, mirroring [`crate::cache::SingleFlight`]):
//!
//! * The first query for a group key becomes the **leader**. It waits up to
//!   the window (or until the group hits `max_size`, whichever is first),
//!   seals the group, and executes the batch with the *minimum* member
//!   deadline as the batch budget — the batch must be fast enough for its
//!   most impatient member.
//! * Later arrivals become **followers**: they park on the group and wake
//!   when the leader publishes, each taking its own slot of the result.
//! * Any batch failure (deadline, data error, panic) publishes `None` for
//!   every member; each falls back *independently* to its own serial
//!   degradation ladder, so one poisoned member cannot poison its siblings'
//!   answers — at worst it costs them the window plus a failed pass.
//!
//! The planner never changes an answer: the batched executor is
//! bit-identical to serial execution, and every fallback path re-runs the
//! exact serial ladder. It only changes *when* work runs — which is why the
//! window is a latency/throughput trade the caller must opt into
//! ([`crate::service::ServiceConfig::batch_window`], default off).

use crate::session::lock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use urban_data::query::SpatialAggQuery;

/// Occupancy-histogram bucket upper bounds (a final `+Inf` bucket is
/// implied). Powers of two because batch sizes cluster there: the window
/// admits whatever bursts arrive, and bursts are small or saturate
/// `max_size`.
pub const BATCH_SIZE_BUCKETS: [usize; 5] = [1, 2, 4, 8, 16];

/// Planner counters, for `/metrics` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchStats {
    /// Batches executed (including size-1 batches — a leader whose window
    /// expired alone).
    pub batches: u64,
    /// Queries that went through a batch (Σ over batches of their size).
    pub batched_queries: u64,
    /// Per-bucket occupancy counts; `size_buckets[i]` counts batches with
    /// `BATCH_SIZE_BUCKETS[i-1] < size ≤ BATCH_SIZE_BUCKETS[i]`, and the
    /// final slot is the `+Inf` bucket.
    pub size_buckets: [u64; BATCH_SIZE_BUCKETS.len() + 1],
    /// Total wall-clock time leaders spent holding their admission window
    /// open, in milliseconds.
    pub window_wait_ms: f64,
}

/// One member's share of a successful batch.
pub(crate) struct BatchOutcome<V> {
    /// This member's result.
    pub value: V,
    /// How many queries shared the raster passes (the `batched: K`
    /// annotation for the member's [`crate::guard::GuardReport`]).
    pub batched: usize,
}

/// Mutable state of one admission group.
struct GroupState<V> {
    /// Members admitted so far, in arrival order. Slot `i` of the results
    /// belongs to member `i`.
    queries: Vec<SpatialAggQuery>,
    /// Each member's deadline; the batch runs under the minimum.
    deadlines: Vec<Duration>,
    /// Set when the group stops admitting (window expired or `max_size`
    /// hit). A member that finds its group sealed before it pushed lost the
    /// race and regroups.
    sealed: bool,
    /// Published by the leader: one slot per member (`None` on batch
    /// failure — fall back to the serial ladder).
    results: Option<Vec<Option<V>>>,
}

struct Group<V> {
    state: Mutex<GroupState<V>>,
    changed: Condvar,
}

impl<V> Group<V> {
    fn new() -> Self {
        Group {
            state: Mutex::new(GroupState {
                queries: Vec::new(),
                deadlines: Vec::new(),
                sealed: false,
                results: None,
            }),
            changed: Condvar::new(),
        }
    }
}

/// Drop guard armed while the leader executes: if the execution closure
/// unwinds, publish `None` for every member so followers wake and fall back
/// instead of waiting out their timeout.
struct PublishOnDrop<'g, V> {
    group: &'g Group<V>,
    members: usize,
    armed: bool,
}

impl<V> Drop for PublishOnDrop<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = lock(&self.group.state);
            if st.results.is_none() {
                st.results = Some((0..self.members).map(|_| None).collect());
            }
            self.group.changed.notify_all();
        }
    }
}

/// The admission planner. Generic over the per-member result payload `V`
/// (the service uses `(Arc<AggTable>, f64)`; tests use plain values).
pub(crate) struct BatchPlanner<V> {
    window: Duration,
    max_size: usize,
    /// Open (joinable) groups by group key. Invariant: a group in this map
    /// is unsealed and below `max_size`; sealing removes it, so the map
    /// never grows beyond the number of concurrently open groups.
    groups: Mutex<HashMap<String, Arc<Group<V>>>>,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    size_buckets: [AtomicU64; BATCH_SIZE_BUCKETS.len() + 1],
    window_wait_us: AtomicU64,
}

impl<V> BatchPlanner<V> {
    /// A planner admitting for `window` per group, at most `max_size`
    /// members per batch (clamped to the executor's
    /// [`raster_join::MAX_BATCH_TARGETS`]).
    pub fn new(window: Duration, max_size: usize) -> Self {
        BatchPlanner {
            window,
            max_size: max_size.clamp(1, raster_join::MAX_BATCH_TARGETS),
            groups: Mutex::new(HashMap::new()),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            size_buckets: Default::default(),
            window_wait_us: AtomicU64::new(0),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BatchStats {
        let mut size_buckets = [0u64; BATCH_SIZE_BUCKETS.len() + 1];
        for (out, b) in size_buckets.iter_mut().zip(&self.size_buckets) {
            // lint: relaxed-ok monotone histogram counter read for display only
            *out = b.load(Ordering::Relaxed);
        }
        BatchStats {
            // lint: relaxed-ok monotone counter reads for display only
            batches: self.batches.load(Ordering::Relaxed),
            // lint: relaxed-ok monotone counter reads for display only
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            size_buckets,
            // lint: relaxed-ok monotone counter reads for display only
            window_wait_ms: self.window_wait_us.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }

    /// Join (or open) the admission group for `group_key` and come back with
    /// this member's share of the batch, or `None` when the member should
    /// fall back to its own serial execution (batch failed, or the wait
    /// outran `deadline`'s grace).
    ///
    /// `exec` is invoked by exactly one member — the leader — with every
    /// admitted query (this member's included) and the minimum member
    /// deadline; it must return one result per query, in order.
    pub fn submit<E>(
        &self,
        group_key: &str,
        query: SpatialAggQuery,
        deadline: Duration,
        exec: E,
    ) -> Option<BatchOutcome<V>>
    where
        E: FnOnce(&[SpatialAggQuery], Duration) -> crate::Result<Vec<V>>,
    {
        // Admission: find an open group or open one, and push this member.
        // Lock order is groups-map before group-state, everywhere.
        let (group, index) = loop {
            let mut groups = lock(&self.groups);
            let group = match groups.get(group_key) {
                Some(g) => Arc::clone(g),
                None => {
                    let g = Arc::new(Group::new());
                    // lint: bounded-by the number of concurrently open admission groups (sealing removes the entry)
                    groups.insert(group_key.to_string(), Arc::clone(&g));
                    g
                }
            };
            let mut st = lock(&group.state);
            if st.sealed {
                // Lost the race with the leader sealing this group between
                // our map lookup and state lock; regroup into a fresh one.
                drop(st);
                drop(groups);
                continue;
            }
            // lint: bounded-by max_size (the member that fills the group seals it below)
            st.queries.push(query);
            // lint: bounded-by max_size (sealed in lockstep with queries)
            st.deadlines.push(deadline);
            let index = st.queries.len() - 1;
            if st.queries.len() >= self.max_size {
                // Full: seal and dispatch immediately — no point holding
                // the window open for a batch that cannot grow.
                st.sealed = true;
                groups.remove(group_key);
                group.changed.notify_all();
            }
            drop(st);
            drop(groups);
            break (group, index);
        };

        if index == 0 {
            self.lead(group_key, &group, exec)
        } else {
            Self::follow(&group, index, deadline, self.window)
        }
    }

    /// Leader protocol: hold the window, seal, execute, publish.
    fn lead<E>(
        &self,
        group_key: &str,
        group: &Arc<Group<V>>,
        exec: E,
    ) -> Option<BatchOutcome<V>>
    where
        E: FnOnce(&[SpatialAggQuery], Duration) -> crate::Result<Vec<V>>,
    {
        // lint: allow(determinism) wall clock feeds only the window-wait metric, never the answer
        let opened = Instant::now();
        {
            let st = lock(&group.state);
            // Wait out the admission window unless a filler seals us early.
            // Spurious wakes re-enter the wait; the predicate is the truth.
            let _st = group
                .changed
                .wait_timeout_while(st, self.window, |s| !s.sealed)
                .unwrap_or_else(|p| p.into_inner());
        }
        // Seal on window expiry. The state lock is NOT held while taking the
        // map lock (lock order), so a late member may still slip in between
        // the wait and the removal — it simply joins this batch. The
        // pointer check guards against removing a *successor* group a
        // filler-sealed predecessor already replaced under the same key.
        {
            let mut groups = lock(&self.groups);
            if groups.get(group_key).is_some_and(|g| Arc::ptr_eq(g, group)) {
                groups.remove(group_key);
            }
        }
        let (queries, deadlines) = {
            let mut st = lock(&group.state);
            st.sealed = true;
            (std::mem::take(&mut st.queries), std::mem::take(&mut st.deadlines))
        };
        // lint: allow(determinism) wall clock feeds only the window-wait metric, never the answer
        let waited = opened.elapsed();
        // lint: relaxed-ok monotone metric counter; nothing is published through it
        self.window_wait_us.fetch_add(waited.as_micros() as u64, Ordering::Relaxed);

        let members = queries.len();
        let batch_deadline = deadlines.iter().copied().min().unwrap_or(Duration::ZERO);

        // Publish `None` for everyone if `exec` unwinds — followers must
        // wake and fall back rather than wait out their timeout.
        let mut guard = PublishOnDrop { group: group.as_ref(), members, armed: true };
        let outcome = exec(&queries, batch_deadline);
        guard.armed = false;
        drop(guard);

        let mut slots: Vec<Option<V>> = match outcome {
            Ok(values) if values.len() == members => values.into_iter().map(Some).collect(),
            // Wrong arity is an executor contract violation; treat it like
            // a failed batch rather than misassigning results.
            Ok(_) | Err(_) => (0..members).map(|_| None).collect(),
        };
        let mine = slots.first_mut().and_then(Option::take);

        self.record(members);
        let mut st = lock(&group.state);
        st.results = Some(slots);
        drop(st);
        group.changed.notify_all();

        mine.map(|value| BatchOutcome { value, batched: members })
    }

    /// Follower protocol: park until the leader publishes, bounded by this
    /// member's own deadline plus the ladder's grace and the window itself —
    /// past that, answering late serially beats waiting forever.
    fn follow(
        group: &Group<V>,
        index: usize,
        deadline: Duration,
        window: Duration,
    ) -> Option<BatchOutcome<V>> {
        let timeout = deadline + deadline / 2 + window * 2 + Duration::from_millis(50);
        let st = lock(&group.state);
        let (mut st, _timed_out) = group
            .changed
            .wait_timeout_while(st, timeout, |s| s.results.is_none())
            .unwrap_or_else(|p| p.into_inner());
        let batched = st.results.as_ref().map(|r| r.len()).unwrap_or(0);
        let mine = st.results.as_mut().and_then(|r| r.get_mut(index)).and_then(Option::take);
        mine.map(|value| BatchOutcome { value, batched })
    }

    fn record(&self, members: usize) {
        // lint: relaxed-ok monotone metric counters; nothing is published through them
        self.batches.fetch_add(1, Ordering::Relaxed);
        // lint: relaxed-ok monotone metric counters; nothing is published through them
        self.batched_queries.fetch_add(members as u64, Ordering::Relaxed);
        let bucket = BATCH_SIZE_BUCKETS
            .iter()
            .position(|&b| members <= b)
            .unwrap_or(BATCH_SIZE_BUCKETS.len());
        // lint: relaxed-ok monotone histogram counter; nothing is published through it
        self.size_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use urban_data::query::AggKind;

    fn q() -> SpatialAggQuery {
        SpatialAggQuery::new(AggKind::Count)
    }

    const DL: Duration = Duration::from_secs(5);

    #[test]
    fn lone_leader_runs_a_batch_of_one() {
        let p: BatchPlanner<u32> = BatchPlanner::new(Duration::from_millis(5), 8);
        let out = p
            .submit("g", q(), DL, |queries, _| Ok(queries.iter().map(|_| 7u32).collect()))
            .expect("lone batch must succeed");
        assert_eq!(out.value, 7);
        assert_eq!(out.batched, 1);
        let st = p.stats();
        assert_eq!(st.batches, 1);
        assert_eq!(st.batched_queries, 1);
        assert_eq!(st.size_buckets[0], 1, "size-1 batch lands in the ≤1 bucket");
    }

    #[test]
    fn concurrent_members_coalesce_into_one_batch() {
        let p: Arc<BatchPlanner<usize>> = Arc::new(BatchPlanner::new(Duration::from_millis(500), 8));
        let execs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let p = Arc::clone(&p);
                    let execs = &execs;
                    s.spawn(move || {
                        p.submit("g", q(), DL, |queries, _| {
                            execs.fetch_add(1, Ordering::SeqCst);
                            Ok((0..queries.len()).collect())
                        })
                    })
                })
                .collect();
            let outs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let k = outs[0].as_ref().unwrap().batched;
            assert!(k >= 2, "a 500ms window must coalesce threads spawned back-to-back");
            // Each member gets its own slot, exactly once.
            let mut values: Vec<usize> =
                outs.iter().flatten().map(|o| o.value).collect();
            values.sort_unstable();
            let batched_total: usize = outs.iter().flatten().count();
            assert_eq!(batched_total, 4);
            assert_eq!(values, (0..4).collect::<Vec<_>>());
        });
        assert_eq!(execs.load(Ordering::SeqCst), 1, "one exec for the whole batch");
        assert_eq!(p.stats().batched_queries, 4);
    }

    #[test]
    fn full_group_dispatches_before_the_window() {
        let p: Arc<BatchPlanner<u32>> = Arc::new(BatchPlanner::new(Duration::from_secs(30), 2));
        // lint: allow(determinism) test-only elapsed-time assertion
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    p.submit("g", q(), DL, |queries, _| {
                        Ok(queries.iter().map(|_| 1u32).collect())
                    })
                });
            }
        });
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "a full group must not wait out a 30s window"
        );
        assert_eq!(p.stats().batches, 1);
    }

    #[test]
    fn failed_batch_sends_every_member_to_the_fallback() {
        let p: Arc<BatchPlanner<u32>> = Arc::new(BatchPlanner::new(Duration::from_millis(100), 8));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        p.submit("g", q(), DL, |_, _| {
                            Err(crate::UrbaneError::DeadlineExceeded)
                        })
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().unwrap().is_none(), "failure must fall back, not panic");
            }
        });
    }

    #[test]
    fn panicking_exec_releases_followers() {
        let p: Arc<BatchPlanner<u32>> = Arc::new(BatchPlanner::new(Duration::from_millis(100), 8));
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let p = Arc::clone(&p);
                    s.spawn(move || {
                        // Only the leader's closure runs (and panics); the
                        // others must still wake with None.
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            p.submit("g", q(), DL, |_, _| panic!("boom"))
                        }))
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let panicked = results.iter().filter(|r| r.is_err()).count();
            assert_eq!(panicked, 1, "exactly the leader unwinds");
            for r in results.into_iter().filter_map(|r| r.ok()) {
                assert!(r.is_none());
            }
        });
    }

    #[test]
    fn distinct_group_keys_do_not_coalesce() {
        let p: Arc<BatchPlanner<u32>> = Arc::new(BatchPlanner::new(Duration::from_millis(50), 8));
        std::thread::scope(|s| {
            for key in ["a", "b"] {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let out = p
                        .submit(key, q(), DL, |queries, _| {
                            Ok(queries.iter().map(|_| 1u32).collect())
                        })
                        .unwrap();
                    assert_eq!(out.batched, 1, "different keys must not share a batch");
                });
            }
        });
        assert_eq!(p.stats().batches, 2);
    }

    #[test]
    fn batch_budget_is_the_minimum_member_deadline() {
        let p: Arc<BatchPlanner<u32>> = Arc::new(BatchPlanner::new(Duration::from_millis(500), 8));
        let seen = Arc::new(Mutex::new(None));
        std::thread::scope(|s| {
            for dl_ms in [5_000u64, 700] {
                let p = Arc::clone(&p);
                let seen = Arc::clone(&seen);
                s.spawn(move || {
                    p.submit("g", q(), Duration::from_millis(dl_ms), move |queries, dl| {
                        *lock(&seen) = Some(dl);
                        Ok(queries.iter().map(|_| 1u32).collect())
                    })
                });
            }
        });
        let dl = lock(&seen).expect("exactly one exec ran");
        // Whichever member led, the budget is the smaller deadline when
        // both coalesced; a solo batch (scheduling raced) sees its own.
        assert!(
            dl == Duration::from_millis(700) || p.stats().batches == 2,
            "coalesced batch must run under the minimum deadline, got {dl:?}"
        );
    }
}
