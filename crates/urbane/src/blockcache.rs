//! Additive block cache — GeoBlocks-style partial-aggregate composition.
//!
//! The exact-key cache ([`crate::cache::QueryCache`]) only helps when a
//! request repeats *verbatim*. Interactive exploration almost never does
//! that: every zoom/pan step carries a fresh viewport filter, so the
//! exact-key hit rate on a TaxiVis-style trace is ~0 even though each step
//! re-aggregates mostly the same regions. GeoBlocks (arXiv 1908.07753)
//! resolves this by caching *partial aggregates over spatial blocks* and
//! assembling answers additively; this module is that idea grafted onto
//! Urbane's executors.
//!
//! ## Why composition is exact here
//!
//! The points-first raster join computes every region's [`AggState`]
//! independently: the point pass renders points regardless of regions, and
//! the per-region gather only reads that region's mask. Combined with the
//! fact that [`AggState::default`] is an exact merge identity, a pass
//! restricted to a subset of regions (via
//! [`raster_join::RasterJoin::execute_store_subset`], which preserves the
//! full set's canvas plan) produces states *bit-identical* to a whole-set
//! pass — urbane-verify's `region_split` / `filter_partition` / `composition`
//! metamorphic laws certify exactly this invariant.
//!
//! ## Keying and viewport independence
//!
//! A block key is `(dataset, generation, level, mode, resolution, agg,
//! non-spatial filter conjunction, block id)` — deliberately **without** the
//! query's `SpatialBox` filters. A cached block therefore answers *any*
//! viewport, provided the viewport cannot clip the block's regions: a region
//! whose bbox, inflated by a conservative raster-assignment margin, lies
//! inside the viewport joins exactly the same points with or without the
//! viewport filter. [`BlockPlan`] classifies every region as *inner*
//! (servable from viewport-independent blocks), *outer* (provably empty
//! under the viewport), or *band* (straddling the viewport edge — computed
//! fresh with the full filter conjunction and never block-cached).
//!
//! ## ε accounting
//!
//! Every block entry stores the certified ε of the pass that produced it.
//! A composed answer's certified bound is the **sum of its component-block
//! bounds** plus the residual passes' bounds — conservative (per-region
//! error never exceeds any single component's ε) but additive, which is
//! what [`urbane_verify`-style](crate::guard::GuardReport::error_bound)
//! budget bookkeeping needs to stay closed under composition.
//!
//! ## Memory
//!
//! Storage is a byte-budgeted LRU: every entry is charged its canonical key
//! plus `states.len() × size_of::<AggState>()`, and inserts evict the
//! coldest entries until the budget holds. A budget of 0 disables the cache
//! entirely (the service default).

use crate::session::lock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use urban_data::filter::Filter;
use urban_data::query::AggState;
use urban_data::{RegionId, RegionSet};
use urbane_geom::BoundingBox;

/// Consecutive region ids grouped per block. Small enough that a pan step
/// invalidates little, large enough that entry overhead stays negligible.
pub const BLOCK_REGIONS: u32 = 8;

/// The block a region id belongs to.
#[inline]
pub fn block_of(region: RegionId) -> u32 {
    region / BLOCK_REGIONS
}

/// Number of blocks covering `n_regions` regions.
#[inline]
pub fn block_count(n_regions: usize) -> u32 {
    (n_regions as u32).div_ceil(BLOCK_REGIONS)
}

/// The member region ids of a block (clamped to the set's arity).
pub fn block_span(block: u32, n_regions: usize) -> std::ops::Range<RegionId> {
    let start = block * BLOCK_REGIONS;
    let end = (start + BLOCK_REGIONS).min(n_regions as u32);
    start..end.max(start)
}

/// One cached block: the member regions' partial aggregates plus the
/// certified ε bound of the pass that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEntry {
    /// Per-member states; index = `region_id - block_span(block).start`.
    pub states: Vec<AggState>,
    /// Certified positional error bound of the producing pass.
    pub epsilon: f64,
}

impl BlockEntry {
    fn cost(&self, canonical_len: usize) -> usize {
        canonical_len + self.states.len() * std::mem::size_of::<AggState>() + ENTRY_OVERHEAD
    }
}

/// Fixed bookkeeping charge per entry (hash-map slot, clocks, lengths).
const ENTRY_OVERHEAD: usize = 64;

/// How a query's region set decomposes against its viewport.
#[derive(Debug, Clone, Default)]
pub struct BlockPlan {
    /// Regions whose results are viewport-independent (cached blocks apply).
    pub inner: Vec<RegionId>,
    /// Regions straddling the viewport edge — evaluated fresh with the full
    /// filter conjunction, never block-cached.
    pub band: Vec<RegionId>,
    /// Regions provably empty under the viewport (default state, no work).
    pub outer: Vec<RegionId>,
    /// Blocks covering `inner`, sorted and deduplicated.
    pub blocks: Vec<u32>,
}

/// The viewport a filter conjunction pins down: the intersection of its
/// `SpatialBox` terms (`None` when there are none — the whole world).
pub fn viewport_of(filters: &[Filter]) -> Option<BoundingBox> {
    let mut vp: Option<BoundingBox> = None;
    for f in filters {
        if let Filter::SpatialBox(b) = f {
            vp = Some(match vp {
                Some(v) => v.intersection(b),
                None => *b,
            });
        }
    }
    vp
}

/// The filter conjunction with every `SpatialBox` term removed — the
/// viewport-independent part that goes into block keys.
pub fn strip_spatial(filters: &[Filter]) -> Vec<Filter> {
    filters
        .iter()
        .filter(|f| !matches!(f, Filter::SpatialBox(_)))
        .cloned()
        .collect()
}

/// A conservative margin for raster assignment: a point can land in a
/// region's pixel mask from up to roughly one pixel diagonal outside the
/// region, so four pixel widths of the effective canvas safely over-covers
/// every mode (bounded center sampling, weighted coverage, accurate PIP).
pub fn assignment_margin(extent: &BoundingBox, resolution: u32) -> f64 {
    let r = resolution.max(1) as f64;
    4.0 * (extent.width().max(extent.height()) / r).max(f64::MIN_POSITIVE)
}

/// Classify every region of `regions` against the conjunction's viewport.
/// `margin` widens each region bbox before the containment tests (see
/// [`assignment_margin`]); with no `SpatialBox` filter every region is
/// inner.
pub fn plan(regions: &RegionSet, filters: &[Filter], margin: f64) -> BlockPlan {
    let viewport = viewport_of(filters);
    let mut out = BlockPlan::default();
    for (id, _, geom) in regions.iter() {
        match &viewport {
            None => out.inner.push(id),
            Some(vp) => {
                let inflated = geom.bbox().inflate(margin);
                if vp.contains_box(&inflated) {
                    out.inner.push(id);
                } else if !vp.intersects(&inflated) {
                    out.outer.push(id);
                } else {
                    out.band.push(id);
                }
            }
        }
    }
    out.blocks = out.inner.iter().map(|&r| block_of(r)).collect();
    out.blocks.dedup();
    out
}

/// Block-cache counters (`/metrics` and `repro --exp blockcache`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Individual blocks served from cache.
    pub hits: u64,
    /// Queries answered by composing cached blocks with residual work.
    pub partial_hits: u64,
    /// Blocks computed through residual passes and back-filled.
    pub residual_blocks: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: u64,
    /// Bytes currently charged against the budget.
    pub bytes: u64,
}

struct Entry {
    canonical: String,
    value: BlockEntry,
    last_used: u64,
    cost: usize,
}

struct Store {
    map: HashMap<u64, Entry>,
    clock: u64,
    bytes: usize,
}

/// The byte-budgeted LRU block store. A single mutex suffices: the store is
/// consulted a handful of times per query (once per needed block), not once
/// per point, so contention is negligible next to the raster passes.
pub struct BlockCache {
    inner: Mutex<Store>,
    budget_bytes: usize,
    hits: AtomicU64,
    partial_hits: AtomicU64,
    residual_blocks: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// A cache charging entries against `budget_bytes` (0 disables caching).
    pub fn new(budget_bytes: usize) -> Self {
        BlockCache {
            inner: Mutex::new(Store { map: HashMap::new(), clock: 0, bytes: 0 }),
            budget_bytes,
            hits: AtomicU64::new(0),
            partial_hits: AtomicU64::new(0),
            residual_blocks: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Is the cache enabled at all?
    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Look a block up by canonical key, refreshing its LRU position and
    /// counting a block-level hit. Collisions cannot serve wrong blocks:
    /// the canonical string is compared on every probe.
    pub fn get(&self, canonical: &str) -> Option<BlockEntry> {
        if self.budget_bytes == 0 {
            return None;
        }
        let mut store = lock(&self.inner);
        store.clock += 1;
        let tick = store.clock;
        match store.map.get_mut(&Self::fnv1a(canonical.as_bytes())) {
            Some(e) if e.canonical == canonical => {
                e.last_used = tick;
                // lint: relaxed-ok monotone hit counter; the store mutex orders the entry itself
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            _ => None,
        }
    }

    /// Insert (or replace) a block, evicting the coldest entries until the
    /// byte budget holds. An entry larger than the whole budget is dropped
    /// on the floor rather than thrashing everything else out.
    pub fn insert(&self, canonical: String, value: BlockEntry) {
        if self.budget_bytes == 0 {
            return;
        }
        let cost = value.cost(canonical.len());
        if cost > self.budget_bytes {
            return;
        }
        let hash = Self::fnv1a(canonical.as_bytes());
        let mut store = lock(&self.inner);
        store.clock += 1;
        let tick = store.clock;
        if let Some(old) = store.map.remove(&hash) {
            store.bytes -= old.cost;
        }
        // lint: bounded-by budget_bytes (byte-budgeted LRU evicts below)
        store.map.insert(hash, Entry { canonical, value, last_used: tick, cost });
        store.bytes += cost;
        while store.bytes > self.budget_bytes {
            let Some(coldest) =
                store.map.iter().min_by_key(|(_, e)| e.last_used).map(|(&h, _)| h)
            else {
                break;
            };
            if let Some(e) = store.map.remove(&coldest) {
                store.bytes -= e.cost;
                // lint: relaxed-ok monotone eviction counter; the store mutex orders the map
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop every entry whose canonical key starts with `prefix` — dataset
    /// reloads call this so no stale-generation block survives (correctness
    /// does not depend on it: keys embed the generation).
    pub fn purge(&self, prefix: &str) {
        let mut store = lock(&self.inner);
        let mut freed = 0usize;
        store.map.retain(|_, e| {
            if e.canonical.starts_with(prefix) {
                freed += e.cost;
                false
            } else {
                true
            }
        });
        store.bytes -= freed;
    }

    /// Count one query answered by composing cached blocks with residual
    /// work (the partial-hit event behind the ci smoke stage).
    pub fn note_partial_hit(&self) {
        // lint: relaxed-ok monotone event counter; nothing is published through it
        self.partial_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` blocks computed through a residual pass and back-filled.
    pub fn note_residual_blocks(&self, n: u64) {
        // lint: relaxed-ok monotone event counter; nothing is published through it
        self.residual_blocks.fetch_add(n, Ordering::Relaxed);
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> BlockCacheStats {
        let (entries, bytes) = {
            let store = lock(&self.inner);
            (store.map.len() as u64, store.bytes as u64)
        };
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed), // lint: relaxed-ok counter read for stats only
            partial_hits: self.partial_hits.load(Ordering::Relaxed), // lint: relaxed-ok counter read for stats only
            residual_blocks: self.residual_blocks.load(Ordering::Relaxed), // lint: relaxed-ok counter read for stats only
            evictions: self.evictions.load(Ordering::Relaxed), // lint: relaxed-ok counter read for stats only
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urban_data::time::TimeRange;
    use urbane_geom::Polygon;

    fn entry(n: usize, eps: f64) -> BlockEntry {
        BlockEntry { states: vec![AggState::default(); n], epsilon: eps }
    }

    #[test]
    fn block_arithmetic() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(BLOCK_REGIONS - 1), 0);
        assert_eq!(block_of(BLOCK_REGIONS), 1);
        assert_eq!(block_count(0), 0);
        assert_eq!(block_count(1), 1);
        assert_eq!(block_count(BLOCK_REGIONS as usize + 1), 2);
        let span = block_span(1, BLOCK_REGIONS as usize + 3);
        assert_eq!(span, BLOCK_REGIONS..BLOCK_REGIONS + 3);
    }

    #[test]
    fn viewport_is_the_intersection_of_spatial_terms() {
        assert_eq!(viewport_of(&[]), None);
        let a = BoundingBox::from_coords(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::from_coords(5.0, 5.0, 20.0, 20.0);
        let vp = viewport_of(&[
            Filter::SpatialBox(a),
            Filter::Time(TimeRange::new(0, 10)),
            Filter::SpatialBox(b),
        ])
        .unwrap();
        assert_eq!(vp, BoundingBox::from_coords(5.0, 5.0, 10.0, 10.0));
        let stripped = strip_spatial(&[Filter::SpatialBox(a), Filter::Time(TimeRange::new(0, 10))]);
        assert_eq!(stripped.len(), 1);
        assert!(matches!(stripped[0], Filter::Time(_)));
    }

    fn three_squares() -> RegionSet {
        // r0 deep inside the viewport, r1 straddling its edge, r2 far out.
        RegionSet::from_polygons(
            "t",
            "r",
            vec![
                Polygon::from_coords(&[(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]).unwrap(),
                Polygon::from_coords(&[(8.0, 2.0), (12.0, 2.0), (12.0, 4.0), (8.0, 4.0)]).unwrap(),
                Polygon::from_coords(&[(30.0, 2.0), (32.0, 2.0), (32.0, 4.0), (30.0, 4.0)])
                    .unwrap(),
            ],
        )
    }

    #[test]
    fn plan_classifies_inner_band_outer() {
        let regions = three_squares();
        let vp = Filter::SpatialBox(BoundingBox::from_coords(0.0, 0.0, 10.0, 10.0));
        let p = plan(&regions, &[vp], 0.5);
        assert_eq!(p.inner, vec![0]);
        assert_eq!(p.band, vec![1]);
        assert_eq!(p.outer, vec![2]);
        assert_eq!(p.blocks, vec![0]);
    }

    #[test]
    fn plan_without_viewport_is_all_inner() {
        let regions = three_squares();
        let p = plan(&regions, &[Filter::Time(TimeRange::new(0, 5))], 0.5);
        assert_eq!(p.inner, vec![0, 1, 2]);
        assert!(p.band.is_empty() && p.outer.is_empty());
    }

    #[test]
    fn plan_with_empty_viewport_is_all_outer() {
        let regions = three_squares();
        let a = Filter::SpatialBox(BoundingBox::from_coords(0.0, 0.0, 1.0, 1.0));
        let b = Filter::SpatialBox(BoundingBox::from_coords(50.0, 50.0, 60.0, 60.0));
        let p = plan(&regions, &[a, b], 0.5);
        assert!(p.inner.is_empty() && p.band.is_empty());
        assert_eq!(p.outer.len(), 3);
    }

    #[test]
    fn margin_widens_the_band() {
        let regions = three_squares();
        let vp = Filter::SpatialBox(BoundingBox::from_coords(0.0, 0.0, 10.0, 10.0));
        // A margin wide enough pushes the deep-inner region into the band.
        let p = plan(&regions, std::slice::from_ref(&vp), 7.0);
        assert!(p.inner.is_empty());
        assert!(p.band.contains(&0));
    }

    #[test]
    fn get_insert_and_canonical_guard() {
        let c = BlockCache::new(1 << 16);
        assert!(c.get("k1").is_none());
        c.insert("k1".into(), entry(4, 0.5));
        let hit = c.get("k1").unwrap();
        assert_eq!(hit.states.len(), 4);
        assert_eq!(hit.epsilon, 0.5);
        assert!(c.get("k2").is_none());
        let st = c.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.entries, 1);
        assert!(st.bytes > 0);
    }

    #[test]
    fn zero_budget_disables() {
        let c = BlockCache::new(0);
        assert!(!c.enabled());
        c.insert("k".into(), entry(1, 0.1));
        assert!(c.get("k").is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn byte_budget_evicts_the_coldest() {
        let unit = entry(BLOCK_REGIONS as usize, 0.1);
        let unit_cost = unit.cost(2);
        let c = BlockCache::new(unit_cost * 2 + unit_cost / 2); // fits two
        c.insert("k1".into(), unit.clone());
        c.insert("k2".into(), unit.clone());
        assert!(c.get("k1").is_some()); // refresh k1
        c.insert("k3".into(), unit.clone()); // evicts k2 (coldest)
        assert!(c.get("k2").is_none());
        assert!(c.get("k1").is_some());
        assert!(c.get("k3").is_some());
        let st = c.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 2);
        assert!(st.bytes as usize <= unit_cost * 2 + unit_cost / 2);
        // An entry larger than the entire budget is refused outright.
        c.insert("huge".into(), entry(10_000, 0.1));
        assert!(c.get("huge").is_none());
    }

    #[test]
    fn replacement_rebalances_bytes() {
        let c = BlockCache::new(1 << 16);
        c.insert("k".into(), entry(64, 0.1));
        let big = c.stats().bytes;
        c.insert("k".into(), entry(4, 0.1));
        let small = c.stats().bytes;
        assert!(small < big);
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn purge_by_prefix_frees_bytes() {
        let c = BlockCache::new(1 << 16);
        c.insert("taxi|0|a".into(), entry(4, 0.1));
        c.insert("taxi|0|b".into(), entry(4, 0.1));
        c.insert("crime|0|a".into(), entry(4, 0.1));
        c.purge("taxi|");
        assert!(c.get("taxi|0|a").is_none());
        assert!(c.get("crime|0|a").is_some());
        let st = c.stats();
        assert_eq!(st.entries, 1);
        assert_eq!(st.bytes, entry(4, 0.1).cost("crime|0|a".len()) as u64);
    }

    #[test]
    fn event_counters_accumulate() {
        let c = BlockCache::new(1 << 10);
        c.note_partial_hit();
        c.note_residual_blocks(3);
        c.note_residual_blocks(2);
        let st = c.stats();
        assert_eq!(st.partial_hits, 1);
        assert_eq!(st.residual_blocks, 5);
    }
}
