//! Spatial brushes — ad-hoc, user-drawn query regions.
//!
//! The abstract's key constraint: pre-aggregation "do[es] not support ad-hoc
//! query constraints or *polygons of arbitrary shapes*". In Urbane the user
//! draws those polygons interactively: a lasso around a candidate
//! development site, a circle of influence, a corridor along an avenue.
//! A [`Brush`] converts such gestures into a one-region [`RegionSet`] that
//! any executor (Raster Join included) answers like any other region set —
//! no precomputation possible, which is exactly the demo's point.

use crate::{Result, UrbaneError};
use urban_data::RegionSet;
use urbane_geom::{BoundingBox, MultiPolygon, Point, Polygon, Ring};

/// A user-drawn spatial selection.
#[derive(Debug, Clone)]
pub enum Brush {
    /// Freehand lasso: the vertex chain is closed automatically.
    Lasso(Vec<Point>),
    /// Circle tool (approximated by a 64-gon).
    Circle { center: Point, radius: f64 },
    /// Rectangle tool.
    Rect(BoundingBox),
    /// Corridor tool: a polyline buffered by half `width` (square caps) —
    /// e.g. "activity along this avenue".
    Corridor { path: Vec<Point>, width: f64 },
}

impl Brush {
    /// Materialize the brush as polygon geometry.
    pub fn to_geometry(&self) -> Result<MultiPolygon> {
        match self {
            Brush::Lasso(pts) => {
                let ring = Ring::new(pts.clone())
                    .map_err(|e| UrbaneError::Data(format!("lasso: {e}")))?;
                if !ring.is_simple() {
                    return Err(UrbaneError::Data("lasso self-intersects".into()));
                }
                Ok(Polygon::new(ring).into())
            }
            Brush::Circle { center, radius } => {
                if *radius <= 0.0 || radius.is_nan() {
                    return Err(UrbaneError::Data("circle radius must be positive".into()));
                }
                Polygon::regular(*center, *radius, 64)
                    .map(Into::into)
                    .map_err(|e| UrbaneError::Data(e.to_string()))
            }
            Brush::Rect(b) => {
                if b.is_empty() {
                    return Err(UrbaneError::Data("empty rectangle".into()));
                }
                Ok(Polygon::rect(b).into())
            }
            Brush::Corridor { path, width } => {
                if path.len() < 2 {
                    return Err(UrbaneError::Data("corridor needs at least 2 vertices".into()));
                }
                if *width <= 0.0 || width.is_nan() {
                    return Err(UrbaneError::Data("corridor width must be positive".into()));
                }
                // One quad per segment (square caps, mitre-free); segments
                // are separate parts so sharp turns cannot self-intersect.
                let half = width / 2.0;
                let mut parts = Vec::with_capacity(path.len() - 1);
                for seg in path.windows(2) {
                    let &[s0, s1] = seg else { continue };
                    let dir = match (s1 - s0).normalized() {
                        Some(d) => d,
                        None => continue, // zero-length segment
                    };
                    let n = dir.perp() * half;
                    let ring = Ring::new(vec![
                        s0 - n,
                        s1 - n,
                        s1 + n,
                        s0 + n,
                    ])
                    .map_err(|e| UrbaneError::Data(format!("corridor: {e}")))?;
                    parts.push(Polygon::new(ring));
                }
                if parts.is_empty() {
                    return Err(UrbaneError::Data("corridor degenerated to a point".into()));
                }
                Ok(MultiPolygon::new(parts))
            }
        }
    }

    /// Wrap the brush as a single-region set, ready for any executor.
    ///
    /// Note: corridor parts may overlap near turns, so corridor COUNTs use
    /// the point-in-any-part semantics of [`MultiPolygon::contains`] when
    /// evaluated exactly; the raster executors share that semantics per
    /// pixel.
    pub fn to_region_set(&self, name: &str) -> Result<RegionSet> {
        Ok(RegionSet::new("brush", vec![(name.to_string(), self.to_geometry()?)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lasso_roundtrip() {
        let b = Brush::Lasso(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(1.0, 4.0),
        ]);
        let rs = b.to_region_set("my lasso").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.region_name(0), "my lasso");
        assert!(rs.geometry(0).contains(Point::new(2.0, 1.0)));
        assert!(!rs.geometry(0).contains(Point::new(5.0, 5.0)));
    }

    #[test]
    fn self_intersecting_lasso_rejected() {
        let b = Brush::Lasso(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(b.to_geometry().is_err());
    }

    #[test]
    fn circle_area_and_containment() {
        let b = Brush::Circle { center: Point::new(5.0, 5.0), radius: 2.0 };
        let g = b.to_geometry().unwrap();
        let circle_area = std::f64::consts::PI * 4.0;
        assert!((g.area() - circle_area).abs() / circle_area < 0.01);
        assert!(g.contains(Point::new(5.0, 6.9)));
        assert!(!g.contains(Point::new(5.0, 7.1)));
        assert!(Brush::Circle { center: Point::ORIGIN, radius: 0.0 }.to_geometry().is_err());
    }

    #[test]
    fn rect_tool() {
        let b = Brush::Rect(BoundingBox::from_coords(1.0, 2.0, 3.0, 5.0));
        let g = b.to_geometry().unwrap();
        assert_eq!(g.area(), 6.0);
        assert!(Brush::Rect(BoundingBox::empty()).to_geometry().is_err());
    }

    #[test]
    fn corridor_covers_the_path() {
        let b = Brush::Corridor {
            path: vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 10.0)],
            width: 2.0,
        };
        let g = b.to_geometry().unwrap();
        assert_eq!(g.len(), 2); // one quad per segment
        assert!(g.contains(Point::new(5.0, 0.5)));
        assert!(g.contains(Point::new(10.0, 5.0)));
        assert!(!g.contains(Point::new(5.0, 5.0)));
        // Area ≈ total length × width (corner overlap is small).
        assert!((g.area() - 40.0).abs() < 4.0);
    }

    #[test]
    fn corridor_validation() {
        assert!(Brush::Corridor { path: vec![Point::ORIGIN], width: 1.0 }.to_geometry().is_err());
        assert!(Brush::Corridor {
            path: vec![Point::ORIGIN, Point::new(1.0, 0.0)],
            width: 0.0
        }
        .to_geometry()
        .is_err());
        // All-duplicate path degenerates.
        assert!(Brush::Corridor {
            path: vec![Point::ORIGIN, Point::ORIGIN],
            width: 1.0
        }
        .to_geometry()
        .is_err());
    }

    #[test]
    fn brush_feeds_raster_join() {
        use raster_join::{RasterJoin, RasterJoinConfig};
        use urban_data::query::SpatialAggQuery;
        use urban_data::schema::Schema;

        let mut t = urban_data::PointTable::new(Schema::empty());
        for i in 0..50 {
            t.push(Point::new(5.0 + (i % 5) as f64 * 0.1, 5.0), i, &[]).unwrap();
        }
        t.push(Point::new(50.0, 50.0), 0, &[]).unwrap();

        let rs = Brush::Circle { center: Point::new(5.2, 5.0), radius: 3.0 }
            .to_region_set("probe")
            .unwrap();
        let res = RasterJoin::new(RasterJoinConfig::accurate(256))
            .execute(&t, &rs, &SpatialAggQuery::count())
            .unwrap();
        assert_eq!(res.table.value(0), Some(50.0));
    }
}
