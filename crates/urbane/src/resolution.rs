//! The resolution pyramid behind Urbane's resolution switcher.
//!
//! "Urbane allows users to visualize a data set of interest at different
//! resolutions over varying time periods" — the spatial side of that is a
//! stack of region sets ordered from coarse (boroughs) to fine (tract
//! grids), all covering the same extent.

use crate::{Result, UrbaneError};
use std::sync::Arc;
use urban_data::RegionSet;
use urbane_geom::BoundingBox;

/// An ordered stack of region sets, coarse to fine.
#[derive(Debug, Clone)]
pub struct ResolutionPyramid {
    levels: Vec<Arc<RegionSet>>,
}

impl ResolutionPyramid {
    /// Build from levels ordered coarse → fine.
    ///
    /// # Panics
    /// Panics on an empty level list — a pyramid needs at least one level.
    pub fn new(levels: Vec<RegionSet>) -> Self {
        assert!(!levels.is_empty(), "pyramid needs at least one level");
        ResolutionPyramid { levels: levels.into_iter().map(Arc::new).collect() }
    }

    /// The standard demo pyramid over `extent`: 5 boroughs, `n_nbhd`
    /// neighborhoods, and a `tracts × tracts` grid.
    pub fn standard(extent: &BoundingBox, n_nbhd: usize, tracts: u32, seed: u64) -> Self {
        Self::new(urban_data::gen::regions::resolution_pyramid(extent, n_nbhd, tracts, seed))
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Pyramids are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Level by index (0 = coarsest).
    pub fn level(&self, idx: usize) -> Result<Arc<RegionSet>> {
        self.levels
            .get(idx)
            .cloned()
            .ok_or_else(|| UrbaneError::UnknownResolution(format!("level {idx}")))
    }

    /// Level by region-set name.
    pub fn by_name(&self, name: &str) -> Result<Arc<RegionSet>> {
        self.levels
            .iter()
            .find(|l| l.name() == name)
            .cloned()
            .ok_or_else(|| UrbaneError::UnknownResolution(name.to_string()))
    }

    /// Level names, coarse → fine.
    pub fn names(&self) -> Vec<&str> {
        self.levels.iter().map(|l| l.name()).collect()
    }

    /// Pick the coarsest level with at least `min_regions` regions — the
    /// zoom-driven auto-selection rule (zoom in → finer polygons).
    pub fn auto_select(&self, min_regions: usize) -> Arc<RegionSet> {
        self.levels
            .iter()
            .find(|l| l.len() >= min_regions)
            .cloned()
            // lint: allow(panic-freedom) documented expect: the pyramid constructor rejects empty level sets
            .unwrap_or_else(|| self.levels.last().expect("non-empty").clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pyramid() -> ResolutionPyramid {
        let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
        ResolutionPyramid::standard(&extent, 20, 8, 3)
    }

    #[test]
    fn standard_levels() {
        let p = pyramid();
        assert_eq!(p.len(), 3);
        assert_eq!(p.level(0).unwrap().len(), 5);
        assert_eq!(p.level(1).unwrap().len(), 20);
        assert_eq!(p.level(2).unwrap().len(), 64);
        assert!(p.level(9).is_err());
    }

    #[test]
    fn lookup_by_name() {
        let p = pyramid();
        assert!(p.by_name("boroughs").is_ok());
        assert!(p.by_name("atlantis").is_err());
        assert_eq!(p.names()[0], "boroughs");
    }

    #[test]
    fn auto_select_prefers_coarse() {
        let p = pyramid();
        assert_eq!(p.auto_select(1).len(), 5);
        assert_eq!(p.auto_select(10).len(), 20);
        assert_eq!(p.auto_select(50).len(), 64);
        // More than any level offers → finest.
        assert_eq!(p.auto_select(10_000).len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_pyramid_panics() {
        ResolutionPyramid::new(vec![]);
    }
}
