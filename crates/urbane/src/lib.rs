//! # urbane — the visual-analytics framework (headless reproduction)
//!
//! Urbane is the 3D visual-analytics system the demo integrates Raster Join
//! into. This crate reproduces its *data products* without a GUI toolkit:
//! every interaction a demo visitor performs maps to a query against this
//! API, and the latency of those queries is exactly what the demo showcases.
//!
//! * [`catalog`] — the data-set registry (taxi / 311 / crime / custom).
//! * [`resolution`] — the resolution pyramid (boroughs → neighborhoods →
//!   tracts) behind Urbane's resolution switcher.
//! * [`colormap`] — sequential / diverging color scales for choropleths.
//! * [`view::map`] — the map view: spatial aggregation at the active
//!   resolution, rendered to a choropleth image (Figure 1 of the paper).
//! * [`view::explore`] — the data-exploration view: per-region time series,
//!   cross-data-set comparison, neighborhood ranking and similarity (the
//!   architect workflow from the paper's introduction).
//! * [`session`] — the interactive session: current filters, time range,
//!   resolution and viewport, with a result cache; drives Raster Join for
//!   every view update.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batch;
pub mod blockcache;
pub mod brush;
pub mod cache;
pub mod catalog;
pub mod colormap;
pub mod export;
pub mod guard;
pub mod planner;
pub mod resolution;
pub mod service;
pub mod session;
pub mod view;

pub use batch::{BatchStats, BATCH_SIZE_BUCKETS};
pub use blockcache::{BlockCache, BlockCacheStats, BlockEntry, BlockPlan, BLOCK_REGIONS};
pub use brush::Brush;
pub use cache::{CacheKey, Flight, QueryCache, SingleFlight};
pub use catalog::DataCatalog;
pub use guard::{GuardPath, GuardReport, GuardedResult};
pub use planner::{PlanChoice, PlannerConfig, QueryPlanner};
pub use resolution::ResolutionPyramid;
pub use service::{
    DatasetInfo, GuardOutcomes, QueryAnswer, QueryRequest, ServiceConfig, UrbaneService,
};
pub use session::{CacheStats, SessionConfig, UrbaneSession};

/// Errors from the framework layer.
#[derive(Debug, Clone, PartialEq)]
pub enum UrbaneError {
    /// Referenced an unregistered data set.
    UnknownDataset(String),
    /// Referenced an unknown resolution level.
    UnknownResolution(String),
    /// Underlying raster-join failure.
    Join(String),
    /// Underlying data-layer failure.
    Data(String),
    /// I/O failure when exporting images.
    Io(String),
    /// `.ubs` store failure (open, header decode, chunk read).
    Store(String),
    /// Invalid session/framework configuration.
    Config(String),
    /// The query was cancelled by its cancel handle.
    Cancelled,
    /// The query's deadline passed (and, for guarded evaluation, every
    /// fallback rung also failed to beat it).
    DeadlineExceeded,
    /// A worker panicked or an internal invariant broke; the session
    /// survives and stays usable.
    Internal(String),
}

impl std::fmt::Display for UrbaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UrbaneError::UnknownDataset(d) => write!(f, "unknown dataset: {d}"),
            UrbaneError::UnknownResolution(r) => write!(f, "unknown resolution: {r}"),
            UrbaneError::Join(m) => write!(f, "raster join error: {m}"),
            UrbaneError::Data(m) => write!(f, "data error: {m}"),
            UrbaneError::Io(m) => write!(f, "io error: {m}"),
            UrbaneError::Store(m) => write!(f, "store error: {m}"),
            UrbaneError::Config(m) => write!(f, "config error: {m}"),
            UrbaneError::Cancelled => write!(f, "query cancelled"),
            UrbaneError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            UrbaneError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for UrbaneError {}

impl From<raster_join::RasterJoinError> for UrbaneError {
    fn from(e: raster_join::RasterJoinError) -> Self {
        // Guardrail variants keep their type across the layer boundary so
        // the session can distinguish "user cancelled" from "query failed".
        match e {
            raster_join::RasterJoinError::Cancelled => UrbaneError::Cancelled,
            raster_join::RasterJoinError::DeadlineExceeded => UrbaneError::DeadlineExceeded,
            raster_join::RasterJoinError::Internal(m) => UrbaneError::Internal(m),
            other => UrbaneError::Join(other.to_string()),
        }
    }
}

impl From<urban_data::DataError> for UrbaneError {
    fn from(e: urban_data::DataError) -> Self {
        UrbaneError::Data(e.to_string())
    }
}

impl From<std::io::Error> for UrbaneError {
    fn from(e: std::io::Error) -> Self {
        UrbaneError::Io(e.to_string())
    }
}

/// Convenience alias for framework results.
pub type Result<T> = std::result::Result<T, UrbaneError>;
