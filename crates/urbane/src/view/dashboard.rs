//! Dashboard composition — Urbane's screen as one image.
//!
//! The demo's screen shows several coordinated views at once: the map view,
//! a heatmap layer, the exploration view's time series, and a legend. This
//! module composes pre-rendered panels into a single RGB canvas (PPM-able),
//! drawing the series as a bar chart and the legend as a color ramp —
//! everything needed to eyeball a session's state from one file.

use crate::colormap::{ColorMap, Legend};
use gpu_raster::Buffer2D;

/// Layout constants (pixels).
const GUTTER: u32 = 8;
const LEGEND_H: u32 = 14;
const CHART_MIN_H: u32 = 60;

/// Blit `src` into `dst` at `(ox, oy)`, clipping to the destination.
pub fn blit(dst: &mut Buffer2D<[u8; 3]>, src: &Buffer2D<[u8; 3]>, ox: u32, oy: u32) {
    let w = src.width().min(dst.width().saturating_sub(ox));
    let h = src.height().min(dst.height().saturating_sub(oy));
    for y in 0..h {
        for x in 0..w {
            dst.set(ox + x, oy + y, src.get(x, y));
        }
    }
}

/// Fill an axis-aligned rectangle (clipped).
pub fn fill_rect(dst: &mut Buffer2D<[u8; 3]>, x0: u32, y0: u32, w: u32, h: u32, color: [u8; 3]) {
    let x1 = (x0 + w).min(dst.width());
    let y1 = (y0 + h).min(dst.height());
    for y in y0.min(dst.height())..y1 {
        for x in x0.min(dst.width())..x1 {
            dst.set(x, y, color);
        }
    }
}

/// Draw a horizontal color-ramp legend for `legend`'s domain.
pub fn draw_legend_ramp(
    dst: &mut Buffer2D<[u8; 3]>,
    colormap: &ColorMap,
    x0: u32,
    y0: u32,
    w: u32,
    h: u32,
) {
    for i in 0..w {
        let t = i as f64 / (w.max(2) - 1) as f64;
        let c = colormap.sample(t);
        for y in 0..h {
            if x0 + i < dst.width() && y0 + y < dst.height() {
                dst.set(x0 + i, y0 + y, c);
            }
        }
    }
}

/// Draw a bar chart of `values` (None = missing, drawn as a thin stub).
#[allow(clippy::too_many_arguments)] // flat draw params mirror the other draw_* helpers
pub fn draw_bar_chart(
    dst: &mut Buffer2D<[u8; 3]>,
    values: &[Option<f64>],
    x0: u32,
    y0: u32,
    w: u32,
    h: u32,
    bar_color: [u8; 3],
    bg: [u8; 3],
) {
    fill_rect(dst, x0, y0, w, h, bg);
    if values.is_empty() || w == 0 || h == 0 {
        return;
    }
    let max = values.iter().flatten().fold(0.0f64, |m, &v| m.max(v)).max(f64::MIN_POSITIVE);
    let slot = (w / values.len() as u32).max(1);
    let bar_w = (slot * 4 / 5).max(1);
    for (i, v) in values.iter().enumerate() {
        let frac = v.map_or(0.0, |v| (v / max).clamp(0.0, 1.0));
        let bar_h = ((h as f64 - 2.0) * frac).round().max(1.0) as u32;
        let bx = x0 + i as u32 * slot + (slot - bar_w) / 2;
        let by = y0 + h - bar_h - 1;
        fill_rect(dst, bx, by, bar_w, bar_h, bar_color);
    }
}

/// The composed dashboard inputs.
pub struct DashboardSpec<'a> {
    /// The choropleth panel (left, dominant).
    pub map: &'a Buffer2D<[u8; 3]>,
    /// The heatmap panel (right column, top).
    pub heatmap: Option<&'a Buffer2D<[u8; 3]>>,
    /// Time-series values for the bar chart (right column, bottom).
    pub series: &'a [Option<f64>],
    /// Colormap + legend domain for the ramp under the map.
    pub colormap: &'a ColorMap,
    /// Value domain the ramp represents.
    pub legend: Legend,
}

/// Compose the dashboard. The output width is `map.width + right column`;
/// the right column is as wide as the heatmap (or map/2 when absent).
pub fn compose(spec: &DashboardSpec<'_>) -> Buffer2D<[u8; 3]> {
    let background = [16, 16, 20];
    let right_w = spec.heatmap.map_or(spec.map.width() / 2, |h| h.width());
    let width = spec.map.width() + right_w + 3 * GUTTER;
    let left_h = spec.map.height() + LEGEND_H + 3 * GUTTER;
    let right_h = spec.heatmap.map_or(0, |h| h.height() + GUTTER) + CHART_MIN_H + 2 * GUTTER;
    let height = left_h.max(right_h);

    let mut canvas = Buffer2D::new(width, height, background);

    // Left: map + legend ramp.
    blit(&mut canvas, spec.map, GUTTER, GUTTER);
    draw_legend_ramp(
        &mut canvas,
        spec.colormap,
        GUTTER,
        spec.map.height() + 2 * GUTTER,
        spec.map.width(),
        LEGEND_H,
    );
    let _ = spec.legend; // domain implied by the ramp ends

    // Right column.
    let rx = spec.map.width() + 2 * GUTTER;
    let mut ry = GUTTER;
    if let Some(hm) = spec.heatmap {
        blit(&mut canvas, hm, rx, ry);
        ry += hm.height() + GUTTER;
    }
    let chart_h = height.saturating_sub(ry + GUTTER).max(CHART_MIN_H);
    draw_bar_chart(
        &mut canvas,
        spec.series,
        rx,
        ry,
        right_w,
        chart_h,
        [94, 201, 98],
        [28, 28, 34],
    );
    canvas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(w: u32, h: u32, c: [u8; 3]) -> Buffer2D<[u8; 3]> {
        Buffer2D::new(w, h, c)
    }

    #[test]
    fn blit_and_clip() {
        let mut dst = solid(10, 10, [0; 3]);
        let src = solid(4, 4, [255; 3]);
        blit(&mut dst, &src, 8, 8); // clipped to 2x2
        assert_eq!(dst.get(8, 8), [255; 3]);
        assert_eq!(dst.get(9, 9), [255; 3]);
        assert_eq!(dst.get(7, 7), [0; 3]);
    }

    #[test]
    fn ramp_is_monotone_in_colormap() {
        let mut dst = solid(64, 10, [0; 3]);
        let cm = ColorMap::viridis();
        draw_legend_ramp(&mut dst, &cm, 0, 0, 64, 10);
        assert_eq!(dst.get(0, 5), cm.sample(0.0));
        assert_eq!(dst.get(63, 5), cm.sample(1.0));
    }

    #[test]
    fn bars_scale_with_values() {
        let mut dst = solid(100, 50, [0; 3]);
        let values = vec![Some(1.0), Some(10.0), None, Some(5.0)];
        draw_bar_chart(&mut dst, &values, 0, 0, 100, 50, [0, 255, 0], [10, 10, 10]);
        // Count green pixels per quarter-column: the 10.0 bar is tallest.
        let green_in = |x0: u32, x1: u32| {
            let mut n = 0;
            for y in 0..50 {
                for x in x0..x1 {
                    if dst.get(x, y) == [0, 255, 0] {
                        n += 1;
                    }
                }
            }
            n
        };
        let b0 = green_in(0, 25);
        let b1 = green_in(25, 50);
        let b2 = green_in(50, 75);
        let b3 = green_in(75, 100);
        assert!(b1 > b3 && b3 > b0, "{b0} {b1} {b2} {b3}");
        assert!(b2 >= 1, "missing value drawn as stub");
        assert!(b1 > 8 * b0, "10x value towers over 1x");
    }

    #[test]
    fn compose_layout() {
        let map = solid(120, 100, [1, 2, 3]);
        let hm = solid(60, 50, [9, 9, 9]);
        let series = vec![Some(1.0), Some(2.0)];
        let cm = ColorMap::viridis();
        let out = compose(&DashboardSpec {
            map: &map,
            heatmap: Some(&hm),
            series: &series,
            colormap: &cm,
            legend: Legend { lo: 0.0, hi: 2.0 },
        });
        assert_eq!(out.width(), 120 + 60 + 3 * GUTTER);
        assert!(out.height() >= 100 + LEGEND_H + 3 * GUTTER);
        // Map pixel present at its offset; heatmap at the right column.
        assert_eq!(out.get(GUTTER + 1, GUTTER + 1), [1, 2, 3]);
        assert_eq!(out.get(120 + 2 * GUTTER + 1, GUTTER + 1), [9, 9, 9]);
    }

    #[test]
    fn compose_without_heatmap() {
        let map = solid(80, 60, [5, 5, 5]);
        let cm = ColorMap::ylorrd();
        let out = compose(&DashboardSpec {
            map: &map,
            heatmap: None,
            series: &[Some(3.0)],
            colormap: &cm,
            legend: Legend { lo: 0.0, hi: 3.0 },
        });
        assert_eq!(out.width(), 80 + 40 + 3 * GUTTER);
    }
}
