//! Urbane's views as headless data products.

pub mod dashboard;
pub mod explore;
pub mod heatmap;
pub mod map;

pub use dashboard::{compose, DashboardSpec};
pub use explore::{DatasetSeries, ExplorationView, RegionProfile};
pub use heatmap::{render_heatmap, Heatmap, HeatmapConfig};
pub use map::{ChoroplethImage, MapView};
