//! The heatmap view — Urbane's point-density layer.
//!
//! Alongside region choropleths, Urbane renders raw point density as a
//! smooth heat layer. This is the point pass of Raster Join used directly
//! as a visualization: points are splatted into an accumulation buffer,
//! optionally box-blurred (the cheap separable stand-in for the Gaussian
//! kernel a shader would apply), normalized, and colored.

use crate::colormap::ColorMap;
use crate::Result;
use gpu_raster::blend::BlendOp;
use gpu_raster::{Buffer2D, Pipeline};
use urban_data::filter::FilterSet;
use urban_data::PointTable;
use urbane_geom::projection::Viewport;

/// Heatmap rendering configuration.
#[derive(Debug, Clone)]
pub struct HeatmapConfig {
    /// Splat size in pixels (1 = single fragment per point).
    pub point_size: u32,
    /// Box-blur radius in pixels (0 = no smoothing).
    pub blur_radius: u32,
    /// Gamma applied to normalized density before coloring (< 1 lifts dim
    /// areas — urban densities are heavily skewed).
    pub gamma: f64,
    /// Color scale.
    pub colormap: ColorMap,
}

impl Default for HeatmapConfig {
    fn default() -> Self {
        HeatmapConfig {
            point_size: 1,
            blur_radius: 2,
            gamma: 0.35,
            colormap: ColorMap::ylorrd(),
        }
    }
}

/// A rendered heatmap: the density field plus its RGB visualization.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Raw (blurred) per-pixel density.
    pub density: Buffer2D<f32>,
    /// Colored image.
    pub image: Buffer2D<[u8; 3]>,
    /// Density value mapped to the top of the color scale.
    pub max_density: f32,
    /// Points rendered (after filtering/culling).
    pub points_drawn: u64,
}

/// Render a heatmap of `points` (after `filters`) through `viewport`.
pub fn render_heatmap(
    points: &PointTable,
    filters: &FilterSet,
    viewport: &Viewport,
    config: &HeatmapConfig,
) -> Result<Heatmap> {
    let (w, h) = (viewport.width, viewport.height);
    let mut pipe = Pipeline::new(*viewport);
    let mut density = Buffer2D::new(w, h, 0.0f32);

    let compiled = filters.compile(points)?;
    let idxs = (0..points.len()).filter(|&i| compiled.matches(i));
    if config.point_size <= 1 {
        pipe.draw_points(&mut density, idxs.map(|i| points.loc(i)), |_| 1.0, BlendOp::Add);
    } else {
        pipe.draw_points_splat(
            &mut density,
            idxs.map(|i| points.loc(i)),
            |_| 1.0,
            config.point_size,
            BlendOp::Add,
        );
    }
    let points_drawn = pipe.stats().points_in - pipe.stats().points_culled;

    if config.blur_radius > 0 {
        density = box_blur(&density, config.blur_radius);
    }

    let max_density = density.max_value().max(f32::MIN_POSITIVE);
    let image = density.map(|v| {
        let t = (v / max_density) as f64;
        config.colormap.sample(t.powf(config.gamma))
    });

    Ok(Heatmap { density, image, max_density, points_drawn })
}

/// Separable box blur with edge clamping; preserves total mass up to the
/// clamped borders.
fn box_blur(src: &Buffer2D<f32>, radius: u32) -> Buffer2D<f32> {
    let (w, h) = (src.width(), src.height());
    let r = radius as i64;
    let norm = 1.0 / (2 * r + 1) as f32;

    // Horizontal pass (sliding window per row).
    let mut horiz = Buffer2D::new(w, h, 0.0f32);
    for y in 0..h {
        let row = src.row(y);
        let mut acc: f32 = 0.0;
        for x in -r..=r {
            acc += row[x.clamp(0, w as i64 - 1) as usize];
        }
        for x in 0..w as i64 {
            horiz.set(x as u32, y, acc * norm);
            let leaving = (x - r).clamp(0, w as i64 - 1) as usize;
            let entering = (x + r + 1).clamp(0, w as i64 - 1) as usize;
            acc += row[entering] - row[leaving];
        }
    }
    // Vertical pass.
    let mut out = Buffer2D::new(w, h, 0.0f32);
    for x in 0..w {
        let mut acc: f32 = 0.0;
        for y in -r..=r {
            acc += horiz.get(x, y.clamp(0, h as i64 - 1) as u32);
        }
        for y in 0..h as i64 {
            out.set(x, y as u32, acc * norm);
            let leaving = (y - r).clamp(0, h as i64 - 1) as u32;
            let entering = (y + r + 1).clamp(0, h as i64 - 1) as u32;
            acc += horiz.get(x, entering) - horiz.get(x, leaving);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use urban_data::filter::Filter;
    use urban_data::schema::Schema;
    use urban_data::time::TimeRange;
    use urbane_geom::{BoundingBox, Point};

    fn cluster_table() -> PointTable {
        let mut t = PointTable::new(Schema::empty());
        for i in 0..100 {
            // Tight cluster near (10, 10).
            t.push(Point::new(10.0 + (i % 3) as f64 * 0.1, 10.0 + (i % 5) as f64 * 0.1), i, &[])
                .unwrap();
        }
        t.push(Point::new(50.0, 50.0), 0, &[]).unwrap(); // lone point
        t
    }

    fn vp() -> Viewport {
        Viewport::new(BoundingBox::from_coords(0.0, 0.0, 64.0, 64.0), 64, 64)
    }

    #[test]
    fn density_peaks_at_cluster() {
        let t = cluster_table();
        let hm = render_heatmap(
            &t,
            &FilterSet::none(),
            &vp(),
            &HeatmapConfig { blur_radius: 0, ..Default::default() },
        )
        .unwrap();
        assert_eq!(hm.points_drawn, 101);
        // Peak at the cluster pixel (world 10,10 → pixel (10, 53)).
        assert!(hm.max_density >= 20.0);
        let (px, py) = vp().world_to_pixel(Point::new(10.0, 10.0)).unwrap();
        assert!(hm.density.get(px, py) > 0.0);
        assert_eq!(hm.density.sum() as u64, 101, "no blur → mass = points");
    }

    #[test]
    fn blur_spreads_but_preserves_interior_mass() {
        let t = cluster_table();
        let sharp = render_heatmap(
            &t,
            &FilterSet::none(),
            &vp(),
            &HeatmapConfig { blur_radius: 0, ..Default::default() },
        )
        .unwrap();
        let smooth = render_heatmap(
            &t,
            &FilterSet::none(),
            &vp(),
            &HeatmapConfig { blur_radius: 3, ..Default::default() },
        )
        .unwrap();
        assert!(smooth.max_density < sharp.max_density);
        // Away from the borders the blur conserves mass approximately.
        assert!((smooth.density.sum() - sharp.density.sum()).abs() / sharp.density.sum() < 0.05);
        // More pixels are non-zero after blurring.
        let nz = |b: &Buffer2D<f32>| b.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!(nz(&smooth.density) > nz(&sharp.density));
    }

    #[test]
    fn filters_reduce_drawn_points() {
        let t = cluster_table();
        let f = FilterSet::none().and(Filter::Time(TimeRange::new(0, 10)));
        let hm = render_heatmap(&t, &f, &vp(), &HeatmapConfig::default()).unwrap();
        assert!(hm.points_drawn < 101);
    }

    #[test]
    fn hot_pixels_are_hot_colored() {
        let t = cluster_table();
        let cfg = HeatmapConfig { blur_radius: 0, gamma: 1.0, ..Default::default() };
        let hm = render_heatmap(&t, &FilterSet::none(), &vp(), &cfg).unwrap();
        // The peak pixel gets the top color of the scale.
        let mut peak = (0u32, 0u32);
        let mut best = -1.0f32;
        for (x, y, v) in hm.density.iter_texels() {
            if v > best {
                best = v;
                peak = (x, y);
            }
        }
        assert_eq!(hm.image.get(peak.0, peak.1), cfg.colormap.sample(1.0));
        // A zero-density pixel gets the bottom color.
        assert_eq!(hm.image.get(0, 0), cfg.colormap.sample(0.0));
    }

    #[test]
    fn splats_increase_coverage() {
        let t = cluster_table();
        let cfg1 = HeatmapConfig { point_size: 1, blur_radius: 0, ..Default::default() };
        let cfg3 = HeatmapConfig { point_size: 3, blur_radius: 0, ..Default::default() };
        let a = render_heatmap(&t, &FilterSet::none(), &vp(), &cfg1).unwrap();
        let b = render_heatmap(&t, &FilterSet::none(), &vp(), &cfg3).unwrap();
        let nz = |h: &Heatmap| h.density.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!(nz(&b) > nz(&a));
    }
}
