//! The data-exploration view.
//!
//! The paper's Section 3.1 view: "Urbane also enables the visual comparison
//! of several data sets through the data exploration view." Headlessly,
//! that is:
//!
//! * per-region **time series** of an aggregate, bucketed by calendar unit
//!   (each bucket is one spatial-aggregation query with a time filter);
//! * side-by-side **data-set comparison** over the same regions;
//! * **ranking** of regions by a metric, and
//! * **similarity profiles** — the architect workflow from the paper's
//!   introduction: describe each neighborhood by a feature vector of
//!   normalized metrics across data sets and find the most similar
//!   neighborhoods to a reference (to "establish performance thresholds
//!   from other well-known and well performing neighborhoods").

use crate::Result;
use raster_join::{PreparedRasterJoin, RasterJoin, RasterJoinConfig};
use urban_data::filter::Filter;
use urban_data::query::SpatialAggQuery;
use urban_data::time::{TimeBucket, TimeRange};
use urban_data::{PointTable, RegionId, RegionSet};

/// A per-region time series for one data set.
#[derive(Debug, Clone)]
pub struct DatasetSeries {
    /// Data-set label.
    pub dataset: String,
    /// Bucket boundaries (one per series sample).
    pub buckets: Vec<TimeRange>,
    /// `series[region][bucket]` — aggregate value, `None` = no data.
    pub series: Vec<Vec<Option<f64>>>,
}

impl DatasetSeries {
    /// The series of one region.
    pub fn region(&self, id: RegionId) -> &[Option<f64>] {
        &self.series[id as usize]
    }

    /// Sum over buckets for one region (treating `None` as 0).
    pub fn region_total(&self, id: RegionId) -> f64 {
        self.series[id as usize].iter().flatten().sum()
    }
}

/// A region's feature vector across data sets (normalized to `[0, 1]`).
#[derive(Debug, Clone)]
pub struct RegionProfile {
    /// Region id.
    pub region: RegionId,
    /// One normalized feature per (dataset, metric) pair, in input order.
    pub features: Vec<f64>,
}

impl RegionProfile {
    /// Euclidean distance between two profiles (lower = more similar).
    pub fn distance(&self, other: &RegionProfile) -> f64 {
        self.features
            .iter()
            .zip(&other.features)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// The exploration-view engine.
#[derive(Debug, Clone)]
pub struct ExplorationView {
    join: RasterJoin,
}

impl ExplorationView {
    /// Engine with the given join configuration.
    pub fn new(config: RasterJoinConfig) -> Self {
        ExplorationView { join: RasterJoin::new(config) }
    }

    /// Defaults (bounded 1024-px joins).
    pub fn with_defaults() -> Self {
        Self::new(RasterJoinConfig::default())
    }

    /// Compute a bucketed time series: one spatial aggregation per bucket of
    /// `range`, each with the bucket's time filter appended to `query`.
    ///
    /// The polygon side is rasterized **once** (a [`PreparedRasterJoin`])
    /// and replayed for every bucket — the regions and canvas do not change
    /// between buckets, only the time filter does.
    pub fn time_series(
        &self,
        dataset_name: &str,
        points: &PointTable,
        regions: &RegionSet,
        query: &SpatialAggQuery,
        range: TimeRange,
        bucket: TimeBucket,
    ) -> Result<DatasetSeries> {
        let mut buckets = Vec::new();
        let mut t = bucket.truncate(range.start);
        while t < range.end {
            let b = bucket.range_of(t);
            buckets.push(b.intersection(&range).unwrap_or(b));
            t = b.end;
        }

        let cfg = self.join.config();
        let prepared =
            PreparedRasterJoin::prepare(regions, cfg.spec, cfg.max_tile, cfg.mode)?;
        let mut series = vec![Vec::with_capacity(buckets.len()); regions.len()];
        for b in &buckets {
            let q = query.clone().filter(Filter::Time(*b));
            let res = prepared.execute(points, &q)?;
            for (r, v) in res.table.values().into_iter().enumerate() {
                series[r].push(v);
            }
        }
        Ok(DatasetSeries { dataset: dataset_name.to_string(), buckets, series })
    }

    /// Rank regions by one query's value, descending; `None` values sort
    /// last. Returns `(region, value)` pairs.
    pub fn rank_regions(
        &self,
        points: &PointTable,
        regions: &RegionSet,
        query: &SpatialAggQuery,
    ) -> Result<Vec<(RegionId, Option<f64>)>> {
        let res = self.join.execute(points, regions, query)?;
        let mut ranked: Vec<(RegionId, Option<f64>)> = res
            .table
            .values()
            .into_iter()
            .enumerate()
            .map(|(r, v)| (r as RegionId, v))
            .collect();
        ranked.sort_by(|a, b| match (a.1, b.1) {
            (Some(x), Some(y)) => y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
        Ok(ranked)
    }

    /// Build normalized feature profiles from several `(dataset, points,
    /// query)` metrics over the same regions. Each metric is min-max
    /// normalized across regions; missing values become 0.
    pub fn profiles(
        &self,
        metrics: &[(&str, &PointTable, SpatialAggQuery)],
        regions: &RegionSet,
    ) -> Result<Vec<RegionProfile>> {
        let mut features: Vec<Vec<f64>> = vec![Vec::with_capacity(metrics.len()); regions.len()];
        for (_, points, query) in metrics {
            let res = self.join.execute(points, regions, query)?;
            let values = res.table.values();
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for v in values.iter().flatten() {
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
            let span = (hi - lo).max(f64::MIN_POSITIVE);
            for (r, v) in values.into_iter().enumerate() {
                features[r].push(v.map_or(0.0, |v| if hi > lo { (v - lo) / span } else { 0.5 }));
            }
        }
        Ok(features
            .into_iter()
            .enumerate()
            .map(|(r, f)| RegionProfile { region: r as RegionId, features: f })
            .collect())
    }

    /// The `k` regions most similar to `reference` (excluding itself),
    /// closest first.
    pub fn most_similar(
        profiles: &[RegionProfile],
        reference: RegionId,
        k: usize,
    ) -> Vec<(RegionId, f64)> {
        let re = &profiles[reference as usize];
        let mut dists: Vec<(RegionId, f64)> = profiles
            .iter()
            .filter(|p| p.region != reference)
            .map(|p| (p.region, re.distance(p)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        dists.truncate(k);
        dists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urban_data::gen::regions::grid_regions;
    use urban_data::schema::Schema;
    use urban_data::time::DAY;
    use urbane_geom::{BoundingBox, Point};

    /// Two cells; region 0 gets points on days 0 and 1, region 1 only day 0.
    fn setup() -> (PointTable, RegionSet) {
        let mut t = PointTable::new(Schema::empty());
        for i in 0..10 {
            t.push(Point::new(5.0, 5.0 + i as f64 * 0.1), 3600, &[]).unwrap(); // r0 day0
        }
        for i in 0..4 {
            t.push(Point::new(5.0, 5.0 + i as f64 * 0.1), DAY + 3600, &[]).unwrap(); // r0 day1
        }
        for i in 0..6 {
            t.push(Point::new(15.0, 5.0 + i as f64 * 0.1), 3600, &[]).unwrap(); // r1 day0
        }
        let rs = grid_regions(&BoundingBox::from_coords(0.0, 0.0, 20.0, 10.0), 2, 1);
        (t, rs)
    }

    #[test]
    fn time_series_buckets_correctly() {
        let (t, rs) = setup();
        let view = ExplorationView::with_defaults();
        let s = view
            .time_series("test", &t, &rs, &SpatialAggQuery::count(), TimeRange::new(0, 2 * DAY), TimeBucket::Day)
            .unwrap();
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.region(0), &[Some(10.0), Some(4.0)]);
        assert_eq!(s.region(1), &[Some(6.0), None]);
        assert_eq!(s.region_total(0), 14.0);
        assert_eq!(s.region_total(1), 6.0);
    }

    #[test]
    fn ranking_descends_with_nulls_last() {
        let (t, rs) = setup();
        let view = ExplorationView::with_defaults();
        let ranked = view.rank_regions(&t, &rs, &SpatialAggQuery::count()).unwrap();
        assert_eq!(ranked[0].0, 0);
        assert_eq!(ranked[0].1, Some(14.0));
        assert_eq!(ranked[1].1, Some(6.0));
    }

    #[test]
    fn profiles_normalized_and_similarity() {
        let (t, rs) = setup();
        let view = ExplorationView::with_defaults();
        let metrics = [("taxi", &t, SpatialAggQuery::count())];
        let profiles = view.profiles(&metrics.iter().map(|(n, p, q)| (*n, *p, q.clone())).collect::<Vec<_>>(), &rs).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].features, vec![1.0]); // max count
        assert_eq!(profiles[1].features, vec![0.0]); // min count
        let sim = ExplorationView::most_similar(&profiles, 0, 5);
        assert_eq!(sim.len(), 1);
        assert_eq!(sim[0].0, 1);
        assert!((sim[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profile_distance_symmetry() {
        let a = RegionProfile { region: 0, features: vec![0.0, 1.0] };
        let b = RegionProfile { region: 1, features: vec![1.0, 0.0] };
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!((a.distance(&b) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }
}
