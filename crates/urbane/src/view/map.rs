//! The map view — the paper's Figure 1.
//!
//! A spatial-aggregation query is evaluated over the active resolution's
//! regions (through Raster Join), the per-region values are normalized
//! through a colormap, and the regions are rasterized into an RGB
//! choropleth with darkened boundaries. The whole path — query to pixels —
//! is what one pan/zoom/slider interaction triggers.

use crate::colormap::{ColorMap, Legend};
use crate::Result;
use gpu_raster::line::traverse_segment;
use gpu_raster::polygon_scan::rasterize_rings;
use gpu_raster::{Buffer2D, RenderStats};
use raster_join::{RasterJoin, RasterJoinConfig};
use urban_data::query::SpatialAggQuery;
use urban_data::{PointTable, RegionSet};
use urbane_geom::clip::clip_polygon_to_box;
use urbane_geom::projection::Viewport;
use urbane_geom::Point;

/// A rendered choropleth plus everything needed for its legend.
#[derive(Debug, Clone)]
pub struct ChoroplethImage {
    /// The RGB raster.
    pub image: Buffer2D<[u8; 3]>,
    /// Per-region values (None = no data).
    pub values: Vec<Option<f64>>,
    /// Legend domain.
    pub legend: Legend,
    /// Join execution stats (for the interaction-latency experiment).
    pub join_stats: RenderStats,
    /// The ε bound the join ran at.
    pub epsilon: f64,
}

/// Map-view renderer: query config + colors.
#[derive(Debug, Clone)]
pub struct MapView {
    join: RasterJoin,
    colormap: ColorMap,
    /// Background color for pixels outside every region.
    pub background: [u8; 3],
    /// Boundary line color.
    pub boundary: [u8; 3],
    /// Missing-data region color.
    pub no_data: [u8; 3],
}

impl MapView {
    /// Map view with the given join configuration and colormap.
    pub fn new(config: RasterJoinConfig, colormap: ColorMap) -> Self {
        MapView {
            join: RasterJoin::new(config),
            colormap,
            background: [24, 24, 32],
            boundary: [10, 10, 10],
            no_data: [90, 90, 90],
        }
    }

    /// Defaults: bounded join at 1024 px, viridis.
    pub fn with_defaults() -> Self {
        Self::new(RasterJoinConfig::default(), ColorMap::viridis())
    }

    /// Run the query and render the choropleth at `width × height`.
    pub fn render(
        &self,
        points: &PointTable,
        regions: &RegionSet,
        query: &SpatialAggQuery,
        width: u32,
        height: u32,
    ) -> Result<ChoroplethImage> {
        let res = self.join.execute(points, regions, query)?;
        let values = res.table.values();
        let legend = Legend::from_values(&values);
        let image = self.render_values(regions, &values, &legend, width, height);
        Ok(ChoroplethImage {
            image,
            values,
            legend,
            join_stats: res.stats,
            epsilon: res.epsilon,
        })
    }

    /// Rasterize pre-computed region values (no query) — used when only the
    /// colors change (e.g. switching colormap) and by tests.
    pub fn render_values(
        &self,
        regions: &RegionSet,
        values: &[Option<f64>],
        legend: &Legend,
        width: u32,
        height: u32,
    ) -> Buffer2D<[u8; 3]> {
        let vp = Viewport::fitted(regions.bbox().inflate(regions.bbox().width() * 0.05), width, height);
        self.render_values_viewport(regions, values, legend, &vp)
    }

    /// Rasterize pre-computed region values through an explicit viewport —
    /// the pan/zoom path. Region geometry is clipped to the visible window
    /// first, so a zoomed-in frame costs only the visible fragments.
    pub fn render_values_viewport(
        &self,
        regions: &RegionSet,
        values: &[Option<f64>],
        legend: &Legend,
        vp: &Viewport,
    ) -> Buffer2D<[u8; 3]> {
        let (width, height) = (vp.width, vp.height);
        let mut img = Buffer2D::new(width, height, self.background);
        // Clip window slightly inflated so boundary strokes at the frame
        // edge still draw.
        let window = vp.world.inflate(vp.units_per_pixel_x() * 2.0);

        // Region fills (visible parts only).
        for (id, _, geom) in regions.iter() {
            let color = match values.get(id as usize).copied().flatten() {
                Some(v) => self.colormap.map_value(v, legend.lo, legend.hi),
                None => self.no_data,
            };
            for poly in geom.polygons() {
                let clipped = match clip_polygon_to_box(poly, &window) {
                    Ok(Some(c)) => c,
                    _ => continue,
                };
                let rings: Vec<Vec<Point>> = clipped
                    .rings()
                    .map(|r| r.vertices().iter().map(|&p| vp.world_to_screen(p)).collect())
                    .collect();
                let refs: Vec<&[Point]> = rings.iter().map(|v| v.as_slice()).collect();
                rasterize_rings(&refs, width, height, |x, y| {
                    img.set(x, y, color);
                });
            }
        }
        // Boundaries on top (original edges, viewport-culled per edge — the
        // clipped outline would draw artificial window-border strokes).
        for (_, _, geom) in regions.iter() {
            if !geom.bbox().intersects(&window) {
                continue;
            }
            for poly in geom.polygons() {
                for e in poly.edges() {
                    if !e.bbox().intersects(&window) {
                        continue;
                    }
                    let a = vp.world_to_screen(e.a);
                    let b = vp.world_to_screen(e.b);
                    traverse_segment(a, b, width, height, |x, y| {
                        img.set(x, y, self.boundary);
                    });
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urban_data::gen::regions::grid_regions;
    use urban_data::schema::Schema;
    use urbane_geom::BoundingBox;

    fn setup() -> (PointTable, RegionSet) {
        let mut t = PointTable::new(Schema::empty());
        // Heavy cluster in the lower-left cell, one point upper-right.
        for i in 0..50 {
            t.push(Point::new(5.0 + (i % 7) as f64 * 0.3, 5.0 + (i % 5) as f64 * 0.3), 0, &[])
                .unwrap();
        }
        t.push(Point::new(35.0, 35.0), 0, &[]).unwrap();
        let rs = grid_regions(&BoundingBox::from_coords(0.0, 0.0, 40.0, 40.0), 2, 2);
        (t, rs)
    }

    #[test]
    fn render_produces_legend_and_values() {
        let (t, rs) = setup();
        let view = MapView::with_defaults();
        let img = view
            .render(&t, &rs, &SpatialAggQuery::count(), 64, 64)
            .unwrap();
        assert_eq!(img.values.len(), 4);
        assert_eq!(img.values[0], Some(50.0)); // lower-left cell
        assert_eq!(img.values[3], Some(1.0)); // upper-right cell
        assert_eq!(img.legend.lo, 1.0);
        assert_eq!(img.legend.hi, 50.0);
        assert_eq!(img.image.width(), 64);
        assert!(img.epsilon > 0.0);
    }

    #[test]
    fn zoomed_viewport_shows_only_visible_region() {
        let (_, rs) = setup();
        let view = MapView::with_defaults();
        let values = vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)];
        let legend = Legend::from_values(&values);
        // Zoom deep into the lower-left cell's interior.
        let vp = Viewport::new(BoundingBox::from_coords(5.0, 5.0, 15.0, 15.0), 64, 64);
        let img = view.render_values_viewport(&rs, &values, &legend, &vp);
        let expected = view.colormap.map_value(1.0, 1.0, 4.0);
        // Every pixel is the lower-left cell's fill (no boundary in view).
        assert!(img.iter_texels().all(|(_, _, c)| c == expected));
    }

    #[test]
    fn panned_viewport_shows_boundary_between_cells() {
        let (_, rs) = setup();
        let view = MapView::with_defaults();
        let values = vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)];
        let legend = Legend::from_values(&values);
        // Window straddling the vertical boundary at x = 20.
        let vp = Viewport::new(BoundingBox::from_coords(15.0, 5.0, 25.0, 15.0), 64, 64);
        let img = view.render_values_viewport(&rs, &values, &legend, &vp);
        let left = view.colormap.map_value(1.0, 1.0, 4.0);
        let right = view.colormap.map_value(2.0, 1.0, 4.0);
        let colors: std::collections::HashSet<[u8; 3]> =
            img.iter_texels().map(|(_, _, c)| c).collect();
        assert!(colors.contains(&left));
        assert!(colors.contains(&right));
        assert!(colors.contains(&view.boundary), "the shared edge must be stroked");
        assert!(!colors.contains(&view.background), "window is fully inside the city");
    }

    #[test]
    fn hot_region_gets_hot_color() {
        let (t, rs) = setup();
        let view = MapView::with_defaults();
        let out = view.render(&t, &rs, &SpatialAggQuery::count(), 64, 64).unwrap();
        // Sample a pixel inside the hot lower-left cell and the cool
        // upper-right cell: their colors must equal the legend extremes.
        let hot_expected = view.colormap.map_value(50.0, 1.0, 50.0);
        let cool_expected = view.colormap.map_value(1.0, 1.0, 50.0);
        // Lower-left world (10,10) and upper-right world (30,30): find their
        // pixels through the same fitted viewport the renderer used.
        let vp = Viewport::fitted(rs.bbox().inflate(rs.bbox().width() * 0.05), 64, 64);
        let (hx, hy) = vp.world_to_pixel(Point::new(10.0, 10.0)).unwrap();
        let (cx, cy) = vp.world_to_pixel(Point::new(30.0, 30.0)).unwrap();
        assert_eq!(out.image.get(hx, hy), hot_expected);
        assert_eq!(out.image.get(cx, cy), cool_expected);
    }

    #[test]
    fn boundaries_are_drawn() {
        let (t, rs) = setup();
        let view = MapView::with_defaults();
        let out = view.render(&t, &rs, &SpatialAggQuery::count(), 64, 64).unwrap();
        let boundary_pixels = out
            .image
            .iter_texels()
            .filter(|&(_, _, c)| c == view.boundary)
            .count();
        assert!(boundary_pixels > 50, "boundary pixels {boundary_pixels}");
    }

    #[test]
    fn no_data_regions_gray() {
        let (_, rs) = setup();
        let view = MapView::with_defaults();
        let values = vec![Some(1.0), None, None, Some(2.0)];
        let legend = Legend::from_values(&values);
        let img = view.render_values(&rs, &values, &legend, 64, 64);
        let grays = img.iter_texels().filter(|&(_, _, c)| c == view.no_data).count();
        assert!(grays > 100, "no-data pixels {grays}");
    }

    #[test]
    fn background_outside_regions() {
        let (t, rs) = setup();
        let view = MapView::with_defaults();
        let out = view.render(&t, &rs, &SpatialAggQuery::count(), 64, 64).unwrap();
        // The fitted viewport letterboxes: corners lie outside the regions.
        assert_eq!(out.image.get(0, 0), view.background);
    }
}
