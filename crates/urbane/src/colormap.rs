//! Color scales for choropleth rendering.
//!
//! A small set of perceptually-ordered scales (piecewise-linear
//! interpolation over hand-picked stops): a viridis-like sequential scale, a
//! yellow-orange-red sequential scale, and a blue-white-red diverging scale.

/// A color scale: maps a normalized value in `[0, 1]` to RGB.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorMap {
    stops: Vec<[u8; 3]>,
}

impl ColorMap {
    /// Viridis-like sequential scale (dark purple → teal → yellow).
    pub fn viridis() -> Self {
        ColorMap {
            stops: vec![
                [68, 1, 84],
                [59, 82, 139],
                [33, 145, 140],
                [94, 201, 98],
                [253, 231, 37],
            ],
        }
    }

    /// Yellow → orange → red sequential scale (classic heat choropleth).
    pub fn ylorrd() -> Self {
        ColorMap {
            stops: vec![
                [255, 255, 204],
                [254, 217, 118],
                [253, 141, 60],
                [227, 26, 28],
                [128, 0, 38],
            ],
        }
    }

    /// Blue → white → red diverging scale (for signed comparisons).
    pub fn diverging() -> Self {
        ColorMap {
            stops: vec![[33, 102, 172], [146, 197, 222], [247, 247, 247], [244, 165, 130], [178, 24, 43]],
        }
    }

    /// Sample the scale at `t ∈ [0, 1]` (clamped).
    pub fn sample(&self, t: f64) -> [u8; 3] {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let n = self.stops.len();
        if let [only] = self.stops.as_slice() {
            return *only;
        }
        let x = t * (n - 1) as f64;
        let i = (x.floor() as usize).min(n - 2);
        let f = x - i as f64;
        let a = self.stops[i];
        let b = self.stops[i + 1];
        std::array::from_fn(|c| (a[c] as f64 + (b[c] as f64 - a[c] as f64) * f).round() as u8)
    }

    /// Map a raw value into the scale given a `[lo, hi]` domain.
    /// Degenerate domains map to the scale midpoint.
    pub fn map_value(&self, v: f64, lo: f64, hi: f64) -> [u8; 3] {
        if hi <= lo || hi.is_nan() || lo.is_nan() {
            return self.sample(0.5);
        }
        self.sample((v - lo) / (hi - lo))
    }
}

/// A normalization of region values to `[lo, hi]` plus missing-value color —
/// what the map view feeds the colormap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Legend {
    /// Domain minimum.
    pub lo: f64,
    /// Domain maximum.
    pub hi: f64,
}

impl Legend {
    /// Legend from the finite values present (ignores `None`s).
    /// Returns a degenerate `[0, 0]` legend when no region has data.
    pub fn from_values(values: &[Option<f64>]) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in values.iter().flatten() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        if lo > hi {
            Legend { lo: 0.0, hi: 0.0 }
        } else {
            Legend { lo, hi }
        }
    }

    /// Tick positions for `n` legend labels.
    pub fn ticks(&self, n: usize) -> Vec<f64> {
        if n <= 1 {
            return vec![self.lo];
        }
        (0..n)
            .map(|i| self.lo + (self.hi - self.lo) * i as f64 / (n - 1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_hit_stops() {
        let cm = ColorMap::viridis();
        assert_eq!(cm.sample(0.0), [68, 1, 84]);
        assert_eq!(cm.sample(1.0), [253, 231, 37]);
    }

    #[test]
    fn clamping_and_nan() {
        let cm = ColorMap::ylorrd();
        assert_eq!(cm.sample(-5.0), cm.sample(0.0));
        assert_eq!(cm.sample(7.0), cm.sample(1.0));
        assert_eq!(cm.sample(f64::NAN), cm.sample(0.0));
    }

    #[test]
    fn interpolation_is_monotone_in_red_for_ylorrd_tail() {
        let cm = ColorMap::ylorrd();
        // Green channel decreases monotonically over the scale.
        let g: Vec<u8> = (0..=10).map(|i| cm.sample(i as f64 / 10.0)[1]).collect();
        assert!(g.windows(2).all(|w| w[1] <= w[0]), "{g:?}");
    }

    #[test]
    fn map_value_domains() {
        let cm = ColorMap::viridis();
        assert_eq!(cm.map_value(5.0, 0.0, 10.0), cm.sample(0.5));
        assert_eq!(cm.map_value(3.0, 3.0, 3.0), cm.sample(0.5)); // degenerate
        assert_eq!(cm.map_value(-1.0, 0.0, 1.0), cm.sample(0.0));
    }

    #[test]
    fn legend_from_values() {
        let l = Legend::from_values(&[Some(2.0), None, Some(8.0), Some(5.0)]);
        assert_eq!(l.lo, 2.0);
        assert_eq!(l.hi, 8.0);
        let empty = Legend::from_values(&[None, None]);
        assert_eq!((empty.lo, empty.hi), (0.0, 0.0));
    }

    #[test]
    fn legend_ticks() {
        let l = Legend { lo: 0.0, hi: 10.0 };
        assert_eq!(l.ticks(3), vec![0.0, 5.0, 10.0]);
        assert_eq!(l.ticks(1), vec![0.0]);
    }

    #[test]
    fn diverging_midpoint_is_neutral() {
        let mid = ColorMap::diverging().sample(0.5);
        assert_eq!(mid, [247, 247, 247]);
    }
}
