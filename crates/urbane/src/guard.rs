//! Guarded evaluation: a degradation ladder over the session's query paths.
//!
//! An interactive system must answer *something* before the user's attention
//! lapses. [`UrbaneSession::evaluate_guarded`] runs the current view's query
//! under a wall-clock deadline and, instead of surfacing
//! [`UrbaneError::DeadlineExceeded`] to the UI, walks a ladder of cheaper
//! answers:
//!
//! 1. **Full** — the session's configured join under the deadline, with one
//!    retry if a worker panics (panics are isolated per tile and typed as
//!    [`UrbaneError::Internal`], so a transient fault costs a retry, not the
//!    process).
//! 2. **Degraded bounded** — a coarser bounded canvas
//!    ([`DEGRADED_RESOLUTION`]²), granted a grace window of half the
//!    original deadline. Coarser pixels mean a larger ε error bound, which
//!    the report carries so the UI can badge the view as approximate.
//! 3. **Preview sample** — the session's cached-reservoir preview
//!    ([`UrbaneSession::evaluate_preview`]). Unbudgeted, because it is fast
//!    by construction (a few thousand rows) and the ladder must terminate
//!    with an answer.
//!
//! Explicit cancellation is different from running out of time: a raised
//! [`CancelHandle`] means the user no longer wants *any* answer, so
//! [`UrbaneError::Cancelled`] short-circuits the whole ladder. Errors that
//! degradation cannot fix (unknown dataset, bad config) also propagate
//! unchanged from the first rung.
//!
//! Every guarded call returns a [`GuardReport`] alongside the table: which
//! rung answered, what went wrong on the way down, whether a retry happened,
//! the elapsed wall-clock time, and the error bound of the answer actually
//! delivered.

use crate::session::UrbaneSession;
use crate::{Result, UrbaneError};
use raster_join::{CancelHandle, QueryBudget};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urban_data::query::AggTable;

/// Canvas resolution of the degraded bounded rung. Coarse enough to beat
/// most deadlines (64× fewer pixels than the 1024 default), fine enough
/// that borough/neighborhood aggregates stay recognizable.
pub const DEGRADED_RESOLUTION: u32 = 128;

/// Reservoir-sample size of the preview rung.
pub const PREVIEW_ROWS: usize = 4_096;

/// Which rung of the degradation ladder produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPath {
    /// The full-fidelity query finished within its deadline.
    Full,
    /// Fell back to the coarser bounded canvas.
    DegradedBounded,
    /// Fell back to the cached-sample preview.
    PreviewSample,
}

/// What a guarded evaluation actually did, for the UI and for tests.
#[derive(Debug, Clone)]
pub struct GuardReport {
    /// The rung that produced the answer.
    pub path: GuardPath,
    /// Human-readable trail of what failed on the way down (empty when the
    /// full query succeeded first try).
    pub fallbacks: Vec<String>,
    /// Whether the full query was retried after an internal (panic) error.
    pub retried: bool,
    /// Wall-clock time from call to answer.
    pub elapsed: Duration,
    /// The deadline the caller asked for.
    pub deadline: Duration,
    /// ε positional error bound of the delivered answer, in world units.
    /// `None` when the bound is unknown (cache hit, or the preview rung,
    /// whose error is statistical rather than positional).
    pub error_bound: Option<f64>,
    /// When the answer came out of a coalesced batch, the number of queries
    /// that shared its raster passes (the `batched: K` annotation). `None`
    /// for solo execution, cache hits, and every ladder rung.
    pub batched: Option<usize>,
}

impl GuardPath {
    /// Stable wire name of the rung (used by the serving layer's JSON and
    /// metrics exposition).
    pub fn as_str(&self) -> &'static str {
        match self {
            GuardPath::Full => "full",
            GuardPath::DegradedBounded => "degraded_bounded",
            GuardPath::PreviewSample => "preview_sample",
        }
    }
}

impl GuardReport {
    /// Did the answer come from a fallback rung?
    pub fn degraded(&self) -> bool {
        self.path != GuardPath::Full
    }

    /// Serialize the report as a JSON object — the `guard` field of the
    /// serving layer's `/query` responses. Times are reported in
    /// milliseconds; the error bound is `null` when unknown.
    pub fn to_json(&self) -> urbane_geom::geojson::Json {
        use urbane_geom::geojson::Json;
        let mut m = std::collections::BTreeMap::new();
        m.insert("path".to_string(), Json::String(self.path.as_str().to_string()));
        m.insert("degraded".to_string(), Json::Bool(self.degraded()));
        m.insert("retried".to_string(), Json::Bool(self.retried));
        m.insert(
            "fallbacks".to_string(),
            Json::Array(self.fallbacks.iter().map(|f| Json::String(f.clone())).collect()),
        );
        m.insert("elapsed_ms".to_string(), Json::Number(self.elapsed.as_secs_f64() * 1e3));
        m.insert("deadline_ms".to_string(), Json::Number(self.deadline.as_secs_f64() * 1e3));
        m.insert(
            "error_bound".to_string(),
            match self.error_bound {
                Some(e) => Json::Number(e),
                None => Json::Null,
            },
        );
        m.insert(
            "batched".to_string(),
            match self.batched {
                Some(k) => Json::Number(k as f64),
                None => Json::Null,
            },
        );
        Json::Object(m)
    }
}

/// A guarded answer: the aggregate table plus the report describing how it
/// was obtained.
#[derive(Debug, Clone)]
pub struct GuardedResult {
    /// Per-region aggregates (possibly approximate — see the report).
    pub table: Arc<AggTable>,
    /// How this answer was produced.
    pub report: GuardReport,
}

/// Run the degradation ladder over caller-supplied rungs. This is the one
/// shared implementation behind [`UrbaneSession::evaluate_guarded`] (rungs
/// bound to the session's interaction state) and
/// [`crate::service::UrbaneService::query`] (rungs bound to a wire-level
/// request), so both paths share deadline accounting, retry policy, and
/// report construction exactly.
///
/// * `full` may be called twice (one retry after an internal/panic error),
///   under a budget expiring at the caller's deadline.
/// * `degraded` runs once under a grace budget of half the deadline again.
/// * `preview` is unbudgeted — the ladder must terminate with an answer —
///   but a raised `cancel` handle still short-circuits it.
pub(crate) fn run_ladder<F, D, P>(
    deadline: Duration,
    cancel: Option<&CancelHandle>,
    mut full: F,
    degraded: D,
    preview: P,
) -> Result<GuardedResult>
where
    F: FnMut(&QueryBudget) -> Result<(Arc<AggTable>, Option<f64>)>,
    D: FnOnce(&QueryBudget) -> Result<(AggTable, f64)>,
    P: FnOnce() -> Result<AggTable>,
{
    let start = Instant::now();
    let hard_deadline = start + deadline;
    let mut fallbacks = Vec::new();
    let mut retried = false;

    let budget_until = |until: Instant| {
        let b = QueryBudget::until(until);
        match cancel {
            Some(h) => b.cancellable(h),
            None => b,
        }
    };

    // Rung 1: full fidelity, one retry on internal (panic) failure.
    let mut first = full(&budget_until(hard_deadline));
    if let Err(UrbaneError::Internal(m)) = &first {
        fallbacks.push(format!("retrying full query after internal error: {m}"));
        retried = true;
        first = full(&budget_until(hard_deadline));
    }
    match first {
        Ok((table, error_bound)) => {
            return Ok(GuardedResult {
                table,
                report: GuardReport {
                    path: GuardPath::Full,
                    fallbacks,
                    retried,
                    elapsed: start.elapsed(),
                    deadline,
                    error_bound,
                    batched: None,
                },
            });
        }
        Err(UrbaneError::Cancelled) => return Err(UrbaneError::Cancelled),
        Err(e @ (UrbaneError::DeadlineExceeded | UrbaneError::Internal(_))) => {
            fallbacks.push(format!("full query failed: {e}"));
        }
        Err(e) => return Err(e),
    }

    // Rung 2: coarser bounded canvas, with a grace window — the user
    // already waited the full deadline, so the fallback gets half again.
    let grace_deadline = hard_deadline + deadline / 2;
    match degraded(&budget_until(grace_deadline)) {
        Ok((table, epsilon)) => {
            return Ok(GuardedResult {
                table: Arc::new(table),
                report: GuardReport {
                    path: GuardPath::DegradedBounded,
                    fallbacks,
                    retried,
                    elapsed: start.elapsed(),
                    deadline,
                    error_bound: Some(epsilon),
                    batched: None,
                },
            });
        }
        Err(UrbaneError::Cancelled) => return Err(UrbaneError::Cancelled),
        Err(e @ (UrbaneError::DeadlineExceeded | UrbaneError::Internal(_))) => {
            fallbacks.push(format!("degraded query failed: {e}"));
        }
        Err(e) => return Err(e),
    }

    // Rung 3: sample preview. Unbudgeted — the ladder must terminate
    // with an answer, and a few thousand sampled rows always render
    // quickly — but an explicit cancel still wins.
    if let Some(h) = cancel {
        if h.is_cancelled() {
            return Err(UrbaneError::Cancelled);
        }
    }
    let table = preview()?;
    Ok(GuardedResult {
        table: Arc::new(table),
        report: GuardReport {
            path: GuardPath::PreviewSample,
            fallbacks,
            retried,
            elapsed: start.elapsed(),
            deadline,
            error_bound: None,
            batched: None,
        },
    })
}

impl UrbaneSession {
    /// Evaluate the current view under a deadline, degrading rather than
    /// failing: full query → coarser bounded canvas → sample preview.
    ///
    /// The grace window for the degraded rung extends half the deadline past
    /// it, so the whole ladder answers within ≈1.5× the deadline (plus the
    /// preview's small fixed cost). A raised `cancel` handle aborts the
    /// ladder promptly with [`UrbaneError::Cancelled`]; errors degradation
    /// cannot fix (unknown dataset, invalid config) propagate unchanged.
    pub fn evaluate_guarded(
        &self,
        deadline: Duration,
        cancel: Option<&CancelHandle>,
    ) -> Result<GuardedResult> {
        run_ladder(
            deadline,
            cancel,
            |budget| self.evaluate_budgeted(budget),
            |budget| self.evaluate_degraded(DEGRADED_RESOLUTION, budget),
            || self.evaluate_preview(PREVIEW_ROWS),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::DataCatalog;
    use crate::resolution::ResolutionPyramid;
    use crate::session::SessionConfig;
    use raster_join::RasterJoinConfig;
    use urban_data::gen::city::CityModel;
    use urban_data::gen::taxi::{generate_taxi, TaxiConfig};

    fn session_with_join(join: RasterJoinConfig) -> UrbaneSession {
        let city = CityModel::nyc_like();
        let taxi = generate_taxi(&city, &TaxiConfig { rows: 5_000, seed: 7, start: 0, days: 5 });
        let mut catalog = DataCatalog::new();
        catalog.register("taxi", taxi);
        let pyramid = ResolutionPyramid::standard(&city.bbox(), 16, 8, 5);
        UrbaneSession::new(
            SessionConfig { join, ..Default::default() },
            catalog,
            pyramid,
        )
        .unwrap()
    }

    #[test]
    fn generous_deadline_takes_the_full_path() {
        let s = session_with_join(RasterJoinConfig::with_resolution(256));
        let got = s.evaluate_guarded(Duration::from_secs(60), None).unwrap();
        assert_eq!(got.report.path, GuardPath::Full);
        assert!(!got.report.degraded());
        assert!(got.report.fallbacks.is_empty());
        assert!(!got.report.retried);
        assert!(got.report.error_bound.is_some());
        assert!(got.table.total_count() > 0);
    }

    #[test]
    fn zero_deadline_still_answers_via_a_fallback() {
        let s = session_with_join(RasterJoinConfig::with_resolution(512));
        let got = s.evaluate_guarded(Duration::ZERO, None).unwrap();
        assert!(got.report.degraded(), "zero budget cannot take the full path");
        assert!(!got.report.fallbacks.is_empty());
        assert!(got.table.total_count() > 0, "fallback answer must be non-trivial");
    }

    #[test]
    fn raised_cancel_short_circuits_the_ladder() {
        let s = session_with_join(RasterJoinConfig::with_resolution(256));
        let h = CancelHandle::new();
        h.cancel();
        let err = s.evaluate_guarded(Duration::from_secs(60), Some(&h)).unwrap_err();
        assert_eq!(err, UrbaneError::Cancelled, "cancel must not degrade into an answer");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_panic_costs_one_retry_not_the_answer() {
        let mut join = RasterJoinConfig::with_resolution(256);
        join.faults = Some(raster_join::FaultPlan::new().panic_on_tile(0));
        let s = session_with_join(join);
        let got = s.evaluate_guarded(Duration::from_secs(60), None).unwrap();
        // The fault disarms after firing once, so the retry succeeds at
        // full fidelity.
        assert_eq!(got.report.path, GuardPath::Full);
        assert!(got.report.retried);
        assert_eq!(got.report.fallbacks.len(), 1);
        assert!(got.report.fallbacks[0].contains("internal error"), "{:?}", got.report.fallbacks);
    }
}
