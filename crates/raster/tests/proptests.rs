//! Property-based tests for the rasterization invariants Raster Join's
//! correctness rests on.

use proptest::prelude::*;
use std::collections::HashSet;
use urbane_geom::triangulate::triangulate;
use urbane_geom::{Point, Polygon, Ring};

const SIZE: u32 = 48;

fn pt() -> impl Strategy<Value = Point> {
    // Keep coordinates off exact pixel centers: boundary ties are
    // convention-dependent and measure-zero in practice.
    (0..4800i32, 0..4800i32).prop_map(|(x, y)| {
        Point::new(x as f64 / 100.0 + 0.001, y as f64 / 100.0 + 0.003)
    })
}

/// Random simple star-shaped polygon within the canvas.
fn simple_polygon() -> impl Strategy<Value = Polygon> {
    (
        proptest::collection::vec((0.0..std::f64::consts::TAU, 2.0..20.0f64), 3..24),
        (22.0..26.0f64, 22.0..26.0f64),
    )
        .prop_filter_map("simple star", |(mut rays, (cx, cy))| {
            rays.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            rays.dedup_by(|a, b| (a.0 - b.0).abs() < 5e-2);
            if rays.len() < 3 {
                return None;
            }
            let max_gap = rays
                .windows(2)
                .map(|w| w[1].0 - w[0].0)
                .chain(std::iter::once(
                    rays[0].0 + std::f64::consts::TAU - rays.last().unwrap().0,
                ))
                .fold(0.0f64, f64::max);
            if max_gap >= std::f64::consts::PI - 1e-2 {
                return None;
            }
            let pts: Vec<Point> = rays
                .iter()
                .map(|&(t, r)| Point::new(cx + t.cos() * r, cy + t.sin() * r))
                .collect();
            let ring = Ring::new(pts).ok()?;
            ring.is_simple().then(|| Polygon::new(ring))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triangulated rasterization partitions the polygon's pixels: no pixel
    /// covered twice, and the union equals the scanline fill.
    #[test]
    fn triangles_partition_scanline_coverage(poly in simple_polygon()) {
        let mut scan = HashSet::new();
        gpu_raster::polygon_scan::rasterize_polygon(&poly, SIZE, SIZE, |x, y| {
            scan.insert((x, y));
        });
        let mut tri = HashSet::new();
        let mut double_covered = Vec::new();
        for t in triangulate(&poly).expect("simple polygons triangulate") {
            gpu_raster::triangle::rasterize_triangle(t.a, t.b, t.c, SIZE, SIZE, |x, y| {
                if !tri.insert((x, y)) {
                    double_covered.push((x, y));
                }
            });
        }
        prop_assert!(double_covered.is_empty(), "pixels covered twice: {double_covered:?}");
        prop_assert_eq!(&scan, &tri, "scanline vs triangulated coverage differs");
    }

    /// Every covered pixel's center is inside the polygon, and every pixel
    /// whose center is strictly inside is covered.
    #[test]
    fn scanline_matches_center_sampling(poly in simple_polygon()) {
        let mut covered = HashSet::new();
        gpu_raster::polygon_scan::rasterize_polygon(&poly, SIZE, SIZE, |x, y| {
            covered.insert((x, y));
        });
        for y in 0..SIZE {
            for x in 0..SIZE {
                let c = Point::new(x as f64 + 0.5, y as f64 + 0.5);
                let near_edge = poly.edges().any(|e| e.distance_to_point(c) < 1e-6);
                if near_edge {
                    continue;
                }
                prop_assert_eq!(
                    covered.contains(&(x, y)),
                    poly.contains(c),
                    "disagreement at ({}, {})", x, y
                );
            }
        }
    }

    /// Conservative traversal visits every pixel a segment passes through:
    /// sampling many parameters along the segment never lands outside the
    /// visited set.
    #[test]
    fn traversal_is_conservative(a in pt(), b in pt()) {
        let mut cells = HashSet::new();
        gpu_raster::line::traverse_segment(a, b, SIZE, SIZE, |x, y| {
            cells.insert((x, y));
        });
        for i in 0..=200 {
            let t = i as f64 / 200.0;
            let p = a.lerp(b, t);
            let (x, y) = (p.x.floor() as i64, p.y.floor() as i64);
            if x >= 0 && y >= 0 && (x as u32) < SIZE && (y as u32) < SIZE {
                // Allow the sample to sit exactly on a cell border shared
                // with a visited cell.
                let hit = cells.contains(&(x as u32, y as u32))
                    || (p.x.fract() < 1e-9 && x > 0 && cells.contains(&((x - 1) as u32, y as u32)))
                    || (p.y.fract() < 1e-9 && y > 0 && cells.contains(&(x as u32, (y - 1) as u32)));
                prop_assert!(hit, "sample at t={t} in unvisited cell ({x},{y})");
            }
        }
    }

    /// Additive point blending is exact: the buffer total equals the number
    /// of in-bounds points regardless of order or duplication.
    #[test]
    fn point_accumulation_is_exact(points in proptest::collection::vec(pt(), 0..300)) {
        use gpu_raster::blend::BlendOp;
        use urbane_geom::projection::Viewport;
        use urbane_geom::BoundingBox;
        let vp = Viewport::new(
            BoundingBox::from_coords(0.0, 0.0, SIZE as f64, SIZE as f64),
            SIZE,
            SIZE,
        );
        let mut buf = gpu_raster::Buffer2D::new(SIZE, SIZE, 0.0f32);
        let mut pipe = gpu_raster::Pipeline::new(vp);
        pipe.draw_points(&mut buf, points.iter().copied(), |_| 1.0, BlendOp::Add);
        let expected = points
            .iter()
            .filter(|p| vp.world_to_pixel(**p).is_some())
            .count();
        prop_assert_eq!(buf.sum() as usize, expected);
        prop_assert_eq!(pipe.stats().fragments as usize, expected);
    }

    /// Downsampling preserves scalar mass up to the factor² scaling.
    #[test]
    fn downsample_mass(values in proptest::collection::vec(0.0..10.0f32, 64), factor in 1u32..4) {
        let mut src = gpu_raster::Buffer2D::new(8, 8, 0.0f32);
        for (i, v) in values.iter().enumerate() {
            src.set((i % 8) as u32, (i / 8) as u32, *v);
        }
        if 8 % factor == 0 {
            let out = gpu_raster::msaa::downsample_f32(&src, factor);
            let restored = out.sum() * (factor * factor) as f64;
            prop_assert!((restored - src.sum()).abs() < 1e-3);
        }
    }
}
