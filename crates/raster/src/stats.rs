//! Pipeline statistics — the software stand-in for GPU performance counters.
//!
//! The benchmarks that reproduce the paper's performance figures report both
//! wall-clock time and these counters; the counters make the *cost model*
//! visible (fragments ∝ canvas resolution for polygons, ∝ |P| for points),
//! which is how the paper explains Raster Join's scaling behaviour.

/// Counters accumulated across draw calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Draw calls issued.
    pub draw_calls: u64,
    /// Points submitted to the point stage.
    pub points_in: u64,
    /// Points culled by the viewport test.
    pub points_culled: u64,
    /// Triangles submitted to the triangle stage.
    pub triangles_in: u64,
    /// Fragments emitted by all rasterizers (points, triangles, scanline).
    pub fragments: u64,
    /// Pixels touched by conservative boundary traversal.
    pub boundary_cells: u64,
}

impl RenderStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge counters from another stats block (tile workers).
    pub fn merge(&mut self, other: &RenderStats) {
        self.draw_calls += other.draw_calls;
        self.points_in += other.points_in;
        self.points_culled += other.points_culled;
        self.triangles_in += other.triangles_in;
        self.fragments += other.fragments;
        self.boundary_cells += other.boundary_cells;
    }
}

impl std::fmt::Display for RenderStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "draws={} points={} (culled {}) tris={} frags={} boundary={}",
            self.draw_calls,
            self.points_in,
            self.points_culled,
            self.triangles_in,
            self.fragments,
            self.boundary_cells
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = RenderStats { draw_calls: 1, points_in: 10, ..Default::default() };
        let b = RenderStats { draw_calls: 2, points_in: 5, fragments: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.draw_calls, 3);
        assert_eq!(a.points_in, 15);
        assert_eq!(a.fragments, 7);
    }

    #[test]
    fn display_is_compact() {
        let s = RenderStats::new().to_string();
        assert!(s.contains("draws=0"));
    }
}
