//! Tiled parallel rendering.
//!
//! A GPU rasterizes thousands of fragments in parallel; the software
//! substrate gets its parallelism by splitting the canvas into horizontal
//! strips and rendering them on worker threads. Strips are independent
//! render targets, so no synchronization is needed until the final stitch —
//! the same "embarrassingly parallel over pixels" structure the GPU
//! exploits, which is why the performance *shape* carries over.

use crate::buffer::Buffer2D;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use urbane_geom::projection::Viewport;
use urbane_geom::BoundingBox;

/// Why a tiled render did not produce a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TileError {
    /// The cancel flag was raised before all strips finished.
    Cancelled,
    /// A strip worker panicked; the payload message is preserved.
    Panicked(String),
}

impl std::fmt::Display for TileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileError::Cancelled => write!(f, "tiled render cancelled"),
            TileError::Panicked(msg) => write!(f, "strip worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for TileError {}

/// Extract a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One horizontal strip of a larger canvas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strip {
    /// First pixel row (in full-canvas coordinates).
    pub y_start: u32,
    /// Number of rows in this strip.
    pub rows: u32,
    /// Viewport covering exactly this strip's world region.
    pub viewport: Viewport,
}

/// Split `viewport` into at most `n` horizontal strips of near-equal height.
/// Returns fewer strips when the canvas has fewer rows than `n`.
pub fn split_rows(viewport: &Viewport, n: u32) -> Vec<Strip> {
    let n = n.clamp(1, viewport.height);
    let base = viewport.height / n;
    let extra = viewport.height % n;
    let mut strips = Vec::with_capacity(n as usize);
    let mut y = 0u32;
    let upp_y = viewport.units_per_pixel_y();
    for i in 0..n {
        let rows = base + u32::from(i < extra);
        // World box for rows [y, y+rows): screen row 0 is the world's top.
        let world_max_y = viewport.world.max.y - y as f64 * upp_y;
        let world_min_y = world_max_y - rows as f64 * upp_y;
        let world = BoundingBox::from_coords(
            viewport.world.min.x,
            world_min_y,
            viewport.world.max.x,
            world_max_y,
        );
        strips.push(Strip { y_start: y, rows, viewport: Viewport::new(world, viewport.width, rows) });
        y += rows;
    }
    strips
}

/// Render strips in parallel and stitch them into one buffer.
///
/// `render` receives each strip and a zeroed strip-sized buffer; it must
/// draw through `strip.viewport` (which already offsets world coordinates).
/// Strips run on scoped worker threads, one per strip. A worker panic
/// propagates as a panic here (see [`try_render_tiled`] for the isolating
/// variant).
pub fn render_tiled<T, F>(viewport: &Viewport, n_tiles: u32, fill: T, render: F) -> Buffer2D<T>
where
    T: Copy + Send,
    F: Fn(&Strip, &mut Buffer2D<T>) + Sync,
{
    match try_render_tiled(viewport, n_tiles, fill, None, render) {
        Ok(buf) => buf,
        // lint: allow(panic-freedom) documented contract: render_tiled re-raises worker panics; try_render_tiled is the non-panicking variant
        Err(TileError::Panicked(msg)) => panic!("tile worker panicked: {msg}"),
        // lint: allow(panic-freedom) no cancel flag is supplied on this path, so Cancelled cannot occur
        Err(TileError::Cancelled) => unreachable!("no cancel flag was supplied"),
    }
}

/// Cancellable, panic-isolating variant of [`render_tiled`].
///
/// Before rendering each strip, the worker checks `cancel`; once the flag is
/// raised remaining strips are skipped and the call returns
/// [`TileError::Cancelled`]. A panicking strip is caught (`catch_unwind`) and
/// surfaces as [`TileError::Panicked`] after every other worker has been
/// joined, so the caller's process and the thread pool stay intact.
pub fn try_render_tiled<T, F>(
    viewport: &Viewport,
    n_tiles: u32,
    fill: T,
    cancel: Option<&AtomicBool>,
    render: F,
) -> Result<Buffer2D<T>, TileError>
where
    T: Copy + Send,
    F: Fn(&Strip, &mut Buffer2D<T>) + Sync,
{
    let strips = split_rows(viewport, n_tiles);
    let mut parts: Vec<Result<Option<Buffer2D<T>>, TileError>> =
        (0..strips.len()).map(|_| Ok(None)).collect();

    std::thread::scope(|scope| {
        for (slot, strip) in parts.iter_mut().zip(&strips) {
            let render = &render;
            scope.spawn(move || {
                // Acquire side of the canceller's Release store (see
                // raster_join::budget::CancelHandle::cancel).
                if cancel.is_some_and(|c| c.load(Ordering::Acquire)) {
                    *slot = Err(TileError::Cancelled);
                    return;
                }
                *slot = match catch_unwind(AssertUnwindSafe(|| {
                    let mut buf = Buffer2D::new(strip.viewport.width, strip.rows, fill);
                    render(strip, &mut buf);
                    buf
                })) {
                    Ok(buf) => Ok(Some(buf)),
                    Err(payload) => Err(TileError::Panicked(panic_message(payload.as_ref()))),
                };
            });
        }
    });

    // Surface panics ahead of cancellation: a cancelled strip is expected
    // when another one failed, and the panic is the interesting diagnosis.
    if let Some(msg) = parts.iter().find_map(|p| match p {
        Err(TileError::Panicked(m)) => Some(m.clone()),
        _ => None,
    }) {
        return Err(TileError::Panicked(msg));
    }
    if parts.iter().any(|p| matches!(p, Err(TileError::Cancelled))) {
        return Err(TileError::Cancelled);
    }

    // Stitch row-major strips top to bottom.
    let mut out = Buffer2D::new(viewport.width, viewport.height, fill);
    let width = viewport.width as usize;
    for (part, strip) in parts.into_iter().zip(&strips) {
        let part = match part {
            Ok(Some(buf)) => buf,
            // lint: allow(panic-freedom) Err and cancelled (Ok(None)) strips were turned into early returns above
            _ => unreachable!("failures were filtered above"),
        };
        let dst_start = strip.y_start as usize * width;
        let len = strip.rows as usize * width;
        out.as_mut_slice()[dst_start..dst_start + len].copy_from_slice(part.as_slice());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blend::BlendOp;
    use crate::pipeline::Pipeline;
    use urbane_geom::Point;

    fn vp(w: u32, h: u32) -> Viewport {
        Viewport::new(BoundingBox::from_coords(0.0, 0.0, w as f64, h as f64), w, h)
    }

    #[test]
    fn strips_tile_exactly() {
        let v = vp(16, 10);
        let strips = split_rows(&v, 3);
        assert_eq!(strips.len(), 3);
        assert_eq!(strips.iter().map(|s| s.rows).sum::<u32>(), 10);
        assert_eq!(strips[0].y_start, 0);
        assert_eq!(strips[1].y_start, strips[0].rows);
        // World boxes partition the viewport's world box vertically.
        assert_eq!(strips[0].viewport.world.max.y, v.world.max.y);
        assert_eq!(strips.last().unwrap().viewport.world.min.y, v.world.min.y);
        for w in strips.windows(2) {
            assert!((w[0].viewport.world.min.y - w[1].viewport.world.max.y).abs() < 1e-9);
        }
    }

    #[test]
    fn more_tiles_than_rows_is_clamped() {
        let v = vp(4, 3);
        assert_eq!(split_rows(&v, 100).len(), 3);
        assert_eq!(split_rows(&v, 0).len(), 1);
    }

    #[test]
    fn tiled_point_render_matches_serial() {
        let v = vp(32, 32);
        // Deterministic scatter of 1000 points.
        let pts: Vec<Point> = (0..1000u64)
            .map(|i| {
                let x = (i.wrapping_mul(2654435761) % 3199 + 1) as f64 / 100.0;
                let y = (i.wrapping_mul(40503) % 3199 + 1) as f64 / 100.0;
                Point::new(x, y)
            })
            .collect();

        let mut serial = Buffer2D::new(32, 32, 0.0f32);
        let mut pipe = Pipeline::new(v);
        pipe.draw_points(&mut serial, pts.iter().copied(), |_| 1.0, BlendOp::Add);

        let tiled = render_tiled(&v, 4, 0.0f32, |strip, buf| {
            let mut p = Pipeline::new(strip.viewport);
            p.draw_points(buf, pts.iter().copied(), |_| 1.0, BlendOp::Add);
        });

        assert_eq!(serial, tiled);
        assert_eq!(tiled.sum() as u64, 1000);
    }

    #[test]
    fn single_tile_is_identity() {
        let v = vp(8, 8);
        let tiled = render_tiled(&v, 1, 7u32, |_, _| {});
        assert_eq!(tiled.count_eq(7), 64);
    }

    #[test]
    fn panicking_strip_surfaces_as_error() {
        let v = vp(8, 8);
        let r = try_render_tiled(&v, 4, 0u32, None, |strip, _| {
            if strip.y_start == 2 {
                panic!("boom on strip");
            }
        });
        assert_eq!(r, Err(TileError::Panicked("boom on strip".into())));
    }

    #[test]
    fn raised_cancel_flag_aborts_render() {
        let v = vp(8, 8);
        let cancel = AtomicBool::new(true);
        let r = try_render_tiled(&v, 4, 0u32, Some(&cancel), |_, _| {});
        assert_eq!(r, Err(TileError::Cancelled));
    }
}
