//! Direct scanline polygon rasterization (even–odd rule).
//!
//! The GPU must triangulate polygons; a CPU rasterizer can fill them
//! directly with a scanline sweep. Both paths are implemented so the
//! triangulation ablation (DESIGN.md §6.2) can verify they produce identical
//! coverage, and because the scanline path is faster for the software
//! pipeline (no triangulation preprocessing).
//!
//! Sampling matches `triangle.rs`: a pixel is covered iff its center is
//! inside the polygon under the even–odd rule, with half-open `[y_min,
//! y_max)` edge crossing so shared vertices are counted once.

use urbane_geom::{Point, Polygon};

/// Rasterize a screen-space polygon (exterior + holes, even–odd rule),
/// invoking `emit(x, y)` for every covered pixel. Returns fragments emitted.
pub fn rasterize_polygon<F: FnMut(u32, u32)>(
    poly: &Polygon,
    width: u32,
    height: u32,
    emit: F,
) -> u64 {
    let rings: Vec<&[Point]> = poly.rings().map(|r| r.vertices()).collect();
    rasterize_rings(&rings, width, height, emit)
}

/// Rasterize raw screen-space rings under the even–odd rule.
pub fn rasterize_rings<F: FnMut(u32, u32)>(
    rings: &[&[Point]],
    width: u32,
    height: u32,
    mut emit: F,
) -> u64 {
    // Vertical pixel range that can possibly be covered.
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for ring in rings {
        for p in *ring {
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
    }
    if !min_y.is_finite() {
        return 0;
    }
    let y_start = (min_y - 0.5).ceil().max(0.0) as i64;
    let y_end = ((max_y - 0.5).floor() as i64).min(height as i64 - 1);

    let mut fragments = 0u64;
    let mut xs: Vec<f64> = Vec::with_capacity(16);
    for y in y_start..=y_end {
        let sample_y = y as f64 + 0.5;
        xs.clear();
        for ring in rings {
            let n = ring.len();
            for i in 0..n {
                let a = ring[i];
                let b = ring[(i + 1) % n];
                // Half-open rule: edge spans [min(y), max(y)).
                if (a.y <= sample_y) != (b.y <= sample_y) {
                    let t = (sample_y - a.y) / (b.y - a.y);
                    xs.push(a.x + t * (b.x - a.x));
                }
            }
        }
        if xs.is_empty() {
            continue;
        }
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
        // Fill between crossing pairs: pixel centers x + 0.5 ∈ [x0, x1).
        // lint: allow(cancel-poll-reachability) spans the crossing pairs of one scanline, bounded by ring complexity; region rasterization happens once per canvas plan
        for pair in xs.chunks_exact(2) {
            let &[x0, x1] = pair else { continue };
            let px_start = (x0 - 0.5).ceil().max(0.0) as i64;
            let px_end = (((x1 - 0.5).ceil() as i64) - 1).min(width as i64 - 1);
            for x in px_start..=px_end {
                emit(x as u32, y as u32);
                fragments += 1;
            }
        }
    }
    fragments
}

/// Covered pixels as a vector (test/debug helper).
pub fn polygon_pixels(poly: &Polygon, width: u32, height: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    rasterize_polygon(poly, width, height, |x, y| out.push((x, y)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use urbane_geom::{Polygon, Ring};

    #[test]
    fn unit_square_covers_expected_pixels() {
        // Square [1, 5) x [1, 5): pixel centers 1.5..4.5 → pixels 1..=4.
        let p = Polygon::from_coords(&[(1.0, 1.0), (5.0, 1.0), (5.0, 5.0), (1.0, 5.0)]).unwrap();
        let pix: HashSet<(u32, u32)> = polygon_pixels(&p, 8, 8).into_iter().collect();
        assert_eq!(pix.len(), 16);
        for x in 1..=4u32 {
            for y in 1..=4u32 {
                assert!(pix.contains(&(x, y)));
            }
        }
    }

    #[test]
    fn adjacent_squares_partition_pixels() {
        // Two squares sharing the edge x = 4: no pixel claimed twice.
        let left = Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 8.0), (0.0, 8.0)]).unwrap();
        let right =
            Polygon::from_coords(&[(4.0, 0.0), (8.0, 0.0), (8.0, 8.0), (4.0, 8.0)]).unwrap();
        let l: HashSet<(u32, u32)> = polygon_pixels(&left, 8, 8).into_iter().collect();
        let r: HashSet<(u32, u32)> = polygon_pixels(&right, 8, 8).into_iter().collect();
        assert!(l.is_disjoint(&r));
        assert_eq!(l.len() + r.len(), 64);
    }

    #[test]
    fn hole_is_not_filled() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(8.0, 8.0),
            Point::new(0.0, 8.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(2.0, 2.0),
            Point::new(6.0, 2.0),
            Point::new(6.0, 6.0),
            Point::new(2.0, 6.0),
        ])
        .unwrap();
        let p = Polygon::with_holes(outer, vec![hole]).unwrap();
        let pix: HashSet<(u32, u32)> = polygon_pixels(&p, 8, 8).into_iter().collect();
        assert_eq!(pix.len(), 64 - 16);
        assert!(!pix.contains(&(3, 3)));
        assert!(pix.contains(&(1, 1)));
        assert!(pix.contains(&(7, 7)));
    }

    #[test]
    fn concave_polygon() {
        // U-shape: two prongs connected at the bottom.
        let p = Polygon::from_coords(&[
            (0.0, 0.0),
            (8.0, 0.0),
            (8.0, 8.0),
            (6.0, 8.0),
            (6.0, 2.0),
            (2.0, 2.0),
            (2.0, 8.0),
            (0.0, 8.0),
        ])
        .unwrap();
        let pix: HashSet<(u32, u32)> = polygon_pixels(&p, 8, 8).into_iter().collect();
        assert!(pix.contains(&(0, 5))); // left prong
        assert!(pix.contains(&(7, 5))); // right prong
        assert!(!pix.contains(&(4, 5))); // the gap
        assert!(pix.contains(&(4, 1))); // the bridge
    }

    #[test]
    fn matches_point_in_polygon_sampling() {
        // Irregular polygon: scanline coverage == PIP test at pixel centers.
        let p = Polygon::from_coords(&[
            (1.3, 2.7),
            (13.8, 1.1),
            (14.9, 9.2),
            (8.4, 6.1),
            (9.0, 13.4),
            (2.2, 12.5),
        ])
        .unwrap();
        let scan: HashSet<(u32, u32)> = polygon_pixels(&p, 16, 16).into_iter().collect();
        for y in 0..16u32 {
            for x in 0..16u32 {
                let c = Point::new(x as f64 + 0.5, y as f64 + 0.5);
                let inside = p.contains(c);
                let on_edge = p.edges().any(|e| e.distance_to_point(c) < 1e-9);
                if on_edge {
                    continue; // tie-break convention may differ
                }
                assert_eq!(
                    scan.contains(&(x, y)),
                    inside,
                    "disagreement at pixel ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn degenerate_offscreen() {
        let p = Polygon::from_coords(&[(-10.0, -10.0), (-5.0, -10.0), (-7.0, -5.0)]).unwrap();
        assert_eq!(rasterize_polygon(&p, 8, 8, |_, _| {}), 0);
    }

    #[test]
    fn subpixel_polygon_misses_all_centers() {
        let p = Polygon::from_coords(&[(3.1, 3.1), (3.4, 3.1), (3.4, 3.4), (3.1, 3.4)]).unwrap();
        assert_eq!(rasterize_polygon(&p, 8, 8, |_, _| {}), 0);
    }

    #[test]
    fn agrees_with_triangulated_rasterization() {
        // The E9 ablation invariant: scanline fill == triangulate + triangle
        // raster, pixel for pixel (general-position input).
        use crate::triangle::rasterize_triangle;
        use urbane_geom::triangulate::triangulate;
        let p = Polygon::from_coords(&[
            (1.17, 2.71),
            (13.83, 1.13),
            (14.91, 9.24),
            (8.41, 6.17),
            (9.03, 13.39),
            (2.24, 12.51),
        ])
        .unwrap();
        let scan: HashSet<(u32, u32)> = polygon_pixels(&p, 16, 16).into_iter().collect();
        let mut tri_set = HashSet::new();
        for t in triangulate(&p).unwrap() {
            rasterize_triangle(t.a, t.b, t.c, 16, 16, |x, y| {
                assert!(tri_set.insert((x, y)), "triangle overlap at ({x},{y})");
            });
        }
        assert_eq!(scan, tri_set);
    }
}
