//! Triangle rasterization with edge functions and the top-left fill rule.
//!
//! This is the GPU's polygon path: Raster Join triangulates every region
//! polygon and draws the triangles. The **top-left rule** matters for
//! correctness, not just aesthetics: two triangles sharing an edge must
//! never both claim a pixel on that edge, otherwise the region aggregate
//! would double-count every point falling on internal triangulation edges.
//!
//! Screen space follows framebuffer conventions: `x` right, `y` down, pixel
//! `(x, y)` sampled at its center `(x + 0.5, y + 0.5)`.

use urbane_geom::Point;

/// Signed "edge function": `cross(b - a, p - a)` in y-down screen space.
/// Positive when `p` lies on the interior side for a triangle wound so its
/// area (as computed by this function) is positive.
#[inline]
pub fn edge_function(a: Point, b: Point, p: Point) -> f64 {
    (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
}

/// Is `a → b` a *top* or *left* edge of a positively-wound screen triangle?
///
/// Derivation (y-down, interior on the positive side of each edge):
/// a horizontal edge pointing right (`e.y == 0, e.x > 0`) has the interior
/// below it → top edge; an edge pointing up (`e.y < 0`) has the interior to
/// its right → left edge.
#[inline]
fn is_top_left(a: Point, b: Point) -> bool {
    let ey = b.y - a.y;
    let ex = b.x - a.x;
    ey < 0.0 || (ey == 0.0 && ex > 0.0)
}

/// Rasterize a screen-space triangle, invoking `emit(x, y)` for every pixel
/// whose center is covered under the top-left rule. The triangle may use
/// either winding; degenerate (zero-area) triangles emit nothing. Pixels are
/// clipped to `width × height`.
///
/// Returns the number of fragments emitted.
pub fn rasterize_triangle<F: FnMut(u32, u32)>(
    mut a: Point,
    mut b: Point,
    c: Point,
    width: u32,
    height: u32,
    mut emit: F,
) -> u64 {
    // Normalize to positive area in y-down space.
    let area = edge_function(a, b, c);
    if area == 0.0 {
        return 0;
    }
    if area < 0.0 {
        std::mem::swap(&mut a, &mut b);
    }

    // Clipped integer bounding box of candidate pixels.
    let min_x = a.x.min(b.x).min(c.x).floor().max(0.0) as i64;
    let max_x = (a.x.max(b.x).max(c.x).ceil() as i64).min(width as i64 - 1);
    let min_y = a.y.min(b.y).min(c.y).floor().max(0.0) as i64;
    let max_y = (a.y.max(b.y).max(c.y).ceil() as i64).min(height as i64 - 1);
    if min_x > max_x || min_y > max_y {
        return 0;
    }

    // Edge setup: w_i at the first pixel center, plus per-step deltas.
    let p0 = Point::new(min_x as f64 + 0.5, min_y as f64 + 0.5);
    let edges = [(b, c), (c, a), (a, b)];
    let mut w_row = [0.0f64; 3];
    let mut dx = [0.0f64; 3];
    let mut dy = [0.0f64; 3];
    let mut top_left = [false; 3];
    for (i, &(ea, eb)) in edges.iter().enumerate() {
        w_row[i] = edge_function(ea, eb, p0);
        dx[i] = -(eb.y - ea.y); // d(edge)/d(px)
        dy[i] = eb.x - ea.x; // d(edge)/d(py)
        top_left[i] = is_top_left(ea, eb);
    }

    let mut fragments = 0u64;
    for y in min_y..=max_y {
        let mut w = w_row;
        for x in min_x..=max_x {
            let inside = (0..3).all(|i| w[i] > 0.0 || (w[i] == 0.0 && top_left[i]));
            if inside {
                emit(x as u32, y as u32);
                fragments += 1;
            }
            for i in 0..3 {
                w[i] += dx[i];
            }
        }
        for i in 0..3 {
            w_row[i] += dy[i];
        }
    }
    fragments
}

/// Collect covered pixels into a vector (test/debug helper).
pub fn triangle_pixels(a: Point, b: Point, c: Point, width: u32, height: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    rasterize_triangle(a, b, c, width, height, |x, y| out.push((x, y)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn axis_aligned_right_triangle() {
        // Covers the lower-left half of a 4x4 square [0,4)x[0,4).
        let pix = triangle_pixels(
            Point::new(0.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(4.0, 4.0),
            8,
            8,
        );
        // Pixel centers (x+0.5, y+0.5) strictly below the diagonal y = x.
        let expect: HashSet<(u32, u32)> =
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)].into_iter().collect();
        // Diagonal pixels (0,0),(1,1)… have centers exactly on the hypotenuse?
        // Centers are at (.5,.5) etc., which satisfy y == x → on the diagonal
        // edge; top-left rule decides. Check interior subset is present:
        let got: HashSet<(u32, u32)> = pix.iter().copied().collect();
        for e in &expect {
            assert!(got.contains(e), "missing interior pixel {e:?}");
        }
        // And nothing above the diagonal.
        for &(x, y) in &got {
            assert!(y as f64 + 0.5 >= x as f64 + 0.5 - 1e-9, "pixel above hypotenuse: {x},{y}");
        }
    }

    #[test]
    fn winding_does_not_matter() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(6.5, 2.0);
        let c = Point::new(3.0, 7.0);
        let ccw = triangle_pixels(a, b, c, 10, 10);
        let cw = triangle_pixels(a, c, b, 10, 10);
        assert_eq!(
            ccw.iter().collect::<HashSet<_>>(),
            cw.iter().collect::<HashSet<_>>()
        );
        assert!(!ccw.is_empty());
    }

    #[test]
    fn degenerate_triangle_emits_nothing() {
        let pix = triangle_pixels(
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(10.0, 10.0),
            16,
            16,
        );
        assert!(pix.is_empty());
    }

    #[test]
    fn shared_edge_no_overlap_no_gap() {
        // A quad split into two triangles along a diagonal: every covered
        // pixel of the quad must be claimed by exactly one triangle.
        let q = [
            Point::new(1.2, 1.7),
            Point::new(9.8, 2.3),
            Point::new(8.9, 8.6),
            Point::new(2.1, 9.4),
        ];
        let t1 = triangle_pixels(q[0], q[1], q[2], 16, 16);
        let t2 = triangle_pixels(q[0], q[2], q[3], 16, 16);
        let s1: HashSet<(u32, u32)> = t1.iter().copied().collect();
        let s2: HashSet<(u32, u32)> = t2.iter().copied().collect();
        assert!(
            s1.is_disjoint(&s2),
            "shared-edge pixels claimed twice: {:?}",
            s1.intersection(&s2).collect::<Vec<_>>()
        );
        // Union must equal the quad's own coverage computed by even-odd
        // point-in-polygon sampling at pixel centers.
        let poly = urbane_geom::Polygon::from_coords(&[
            (q[0].x, q[0].y),
            (q[1].x, q[1].y),
            (q[2].x, q[2].y),
            (q[3].x, q[3].y),
        ])
        .unwrap();
        let mut expect = HashSet::new();
        for y in 0..16u32 {
            for x in 0..16u32 {
                let center = Point::new(x as f64 + 0.5, y as f64 + 0.5);
                // Strict interior only (boundary ties are rule-dependent).
                if poly.contains(center)
                    && !poly.edges().any(|e| e.distance_to_point(center) < 1e-9)
                {
                    expect.insert((x, y));
                }
            }
        }
        let union: HashSet<(u32, u32)> = s1.union(&s2).copied().collect();
        for e in &expect {
            assert!(union.contains(e), "gap at {e:?}");
        }
    }

    #[test]
    fn clipping_to_buffer() {
        // Triangle extending far outside the 4x4 buffer.
        let pix = triangle_pixels(
            Point::new(-100.0, -100.0),
            Point::new(100.0, -100.0),
            Point::new(0.0, 100.0),
            4,
            4,
        );
        assert_eq!(pix.len(), 16, "triangle covering the whole buffer fills it");
        let n = rasterize_triangle(
            Point::new(-10.0, -10.0),
            Point::new(-5.0, -10.0),
            Point::new(-7.0, -5.0),
            4,
            4,
            |_, _| {},
        );
        assert_eq!(n, 0, "fully off-screen triangle emits nothing");
    }

    #[test]
    fn fragment_count_matches_emitted() {
        let mut count = 0u64;
        let n = rasterize_triangle(
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(0.0, 8.0),
            8,
            8,
            |_, _| count += 1,
        );
        assert_eq!(n, count);
        assert!(n > 0);
    }

    #[test]
    fn tiny_subpixel_triangle() {
        // A triangle smaller than a pixel that does not cover any center.
        let pix = triangle_pixels(
            Point::new(3.1, 3.1),
            Point::new(3.3, 3.1),
            Point::new(3.2, 3.3),
            8,
            8,
        );
        assert!(pix.is_empty());
        // One that straddles a pixel center (3.5, 3.5).
        let pix = triangle_pixels(
            Point::new(3.4, 3.4),
            Point::new(3.7, 3.4),
            Point::new(3.5, 3.7),
            8,
            8,
        );
        assert_eq!(pix, vec![(3, 3)]);
    }

    #[test]
    fn fan_triangulation_covers_convex_polygon_once() {
        // Regular hexagon fan-triangulated from vertex 0: pixels covered
        // exactly once across the fan.
        let center = Point::new(8.0, 8.0);
        let verts: Vec<Point> = (0..6)
            .map(|i| {
                let t = i as f64 / 6.0 * std::f64::consts::TAU + 0.3;
                center + Point::new(t.cos(), t.sin()) * 6.3
            })
            .collect();
        let mut counts = std::collections::HashMap::new();
        for i in 1..5 {
            rasterize_triangle(verts[0], verts[i], verts[i + 1], 16, 16, |x, y| {
                *counts.entry((x, y)).or_insert(0u32) += 1;
            });
        }
        for (px, c) in &counts {
            assert_eq!(*c, 1, "pixel {px:?} covered {c} times");
        }
        assert!(counts.len() > 50, "hexagon should cover many pixels");
    }
}
