//! # gpu-raster — a software GPU rasterization pipeline
//!
//! Raster Join's central move is to evaluate spatial aggregation *with the
//! rendering pipeline*: polygons are triangulated and rasterized, points are
//! drawn as single fragments, and the blending unit accumulates aggregates.
//! The paper runs this on OpenGL; this crate is the substrate substitution —
//! a from-scratch software implementation of exactly the pipeline stages the
//! algorithm relies on:
//!
//! * typed 2-D framebuffers ([`Buffer2D`]),
//! * blend operations (add / min / max / replace — [`blend`]),
//! * triangle rasterization with the **top-left fill rule** so adjacent
//!   triangles never double-shade a pixel ([`triangle`]),
//! * direct scanline polygon fill with even–odd semantics ([`polygon_scan`]),
//! * conservative segment traversal for boundary-pixel detection ([`line`]),
//! * point rendering ([`point`]),
//! * a tiled executor that renders independent tiles on worker threads
//!   ([`tile`]), standing in for GPU parallelism, and
//! * pipeline statistics ([`stats`]) used by the cost-model benchmarks.
//!
//! The semantics (pixel grid, sample-at-center, fill rules, blend equations)
//! match the GL conventions the paper depends on, so Raster Join's error
//! bound and its accuracy/performance trade-offs carry over unchanged.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod blend;
pub mod buffer;
pub mod line;
pub mod msaa;
pub mod multi;
pub mod pipeline;
pub mod point;
pub mod polygon_scan;
pub mod ppm;
pub mod stats;
pub mod tile;
pub mod triangle;

pub use blend::BlendOp;
pub use buffer::Buffer2D;
pub use multi::MultiBuffer2D;
pub use pipeline::Pipeline;
pub use stats::RenderStats;

/// Region-id framebuffer convention: `NO_REGION` marks an uncovered pixel;
/// covered pixels store `region_id + 1`.
pub const NO_REGION: u32 = 0;
