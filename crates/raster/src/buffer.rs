//! Typed 2-D framebuffers.
//!
//! A [`Buffer2D<T>`] is the software analogue of a GL texture / render
//! target: a dense row-major grid of texels with O(1) access. Raster Join
//! uses several formats: `f32` (point-count accumulation), `[f32; 2]`
//! (sum + count for AVG), `u32` (region ids), and `u8` (boundary masks).

/// A dense row-major 2-D buffer of texels.
#[derive(Debug, Clone, PartialEq)]
pub struct Buffer2D<T> {
    width: u32,
    height: u32,
    data: Vec<T>,
}

impl<T: Copy> Buffer2D<T> {
    /// Allocate a buffer filled with `fill`.
    ///
    /// # Panics
    /// Panics on a zero-sized buffer — always a caller bug.
    pub fn new(width: u32, height: u32, fill: T) -> Self {
        assert!(width > 0 && height > 0, "buffer must have texels");
        let len = width as usize * height as usize;
        Buffer2D { width, height, data: vec![fill; len] }
    }

    /// Buffer width in texels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in texels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total texel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Buffers are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major index of `(x, y)`.
    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "texel ({x},{y}) out of bounds");
        y as usize * self.width as usize + x as usize
    }

    /// Read texel `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> T {
        self.data[self.idx(x, y)]
    }

    /// Write texel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: T) {
        let i = self.idx(x, y);
        self.data[i] = v;
    }

    /// Mutable access to texel `(x, y)`.
    #[inline]
    pub fn get_mut(&mut self, x: u32, y: u32) -> &mut T {
        let i = self.idx(x, y);
        &mut self.data[i]
    }

    /// Bounds-checked read; `None` outside the buffer.
    #[inline]
    pub fn try_get(&self, x: i64, y: i64) -> Option<T> {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            None
        } else {
            Some(self.get(x as u32, y as u32))
        }
    }

    /// Reset every texel (the GL `glClear`).
    pub fn clear(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Borrow the raw texel slice (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the raw texel slice (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, y: u32) -> &[T] {
        let start = y as usize * self.width as usize;
        &self.data[start..start + self.width as usize]
    }

    /// Iterate `(x, y, value)` over all texels, row-major.
    pub fn iter_texels(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| ((i as u32) % w, (i as u32) / w, v))
    }

    /// Map every texel into a new buffer (format conversion).
    pub fn map<U: Copy, F: FnMut(T) -> U>(&self, mut f: F) -> Buffer2D<U> {
        Buffer2D {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combine with another same-sized buffer texel-by-texel, in place.
    ///
    /// # Panics
    /// Panics when dimensions differ.
    pub fn zip_apply<U: Copy, F: FnMut(&mut T, U)>(&mut self, other: &Buffer2D<U>, mut f: F) {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "buffer dimensions must match"
        );
        for (d, &s) in self.data.iter_mut().zip(&other.data) {
            f(d, s);
        }
    }
}

impl Buffer2D<f32> {
    /// Sum of all texels (used by gather-style reductions and tests).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Maximum texel value.
    pub fn max_value(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }
}

impl Buffer2D<u32> {
    /// Count texels equal to `v`.
    pub fn count_eq(&self, v: u32) -> usize {
        self.data.iter().filter(|&&x| x == v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_get_set() {
        let mut b = Buffer2D::new(4, 3, 0u32);
        b.set(2, 1, 42);
        assert_eq!(b.get(2, 1), 42);
        assert_eq!(b.get(0, 0), 0);
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn try_get_bounds() {
        let b = Buffer2D::new(2, 2, 7i32);
        assert_eq!(b.try_get(1, 1), Some(7));
        assert_eq!(b.try_get(-1, 0), None);
        assert_eq!(b.try_get(0, 2), None);
        assert_eq!(b.try_get(2, 0), None);
    }

    #[test]
    fn clear_resets_all() {
        let mut b = Buffer2D::new(3, 3, 1.0f32);
        b.set(1, 1, 5.0);
        b.clear(0.0);
        assert_eq!(b.sum(), 0.0);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut b = Buffer2D::new(3, 2, 0u32);
        b.set(0, 1, 10);
        b.set(2, 1, 12);
        assert_eq!(b.row(1), &[10, 0, 12]);
        assert_eq!(b.row(0), &[0, 0, 0]);
    }

    #[test]
    fn texel_iteration_order() {
        let mut b = Buffer2D::new(2, 2, 0u32);
        b.set(1, 0, 1);
        b.set(0, 1, 2);
        let v: Vec<(u32, u32, u32)> = b.iter_texels().collect();
        assert_eq!(v, vec![(0, 0, 0), (1, 0, 1), (0, 1, 2), (1, 1, 0)]);
    }

    #[test]
    fn map_and_zip() {
        let a = Buffer2D::new(2, 2, 2.0f32);
        let mut b = a.map(|v| (v * 2.0) as u32);
        assert_eq!(b.get(0, 0), 4);
        let c = Buffer2D::new(2, 2, 3u32);
        b.zip_apply(&c, |d, s| *d += s);
        assert_eq!(b.get(1, 1), 7);
    }

    #[test]
    fn reductions() {
        let mut b = Buffer2D::new(2, 2, 1.0f32);
        b.set(0, 0, 5.0);
        assert_eq!(b.sum(), 8.0);
        assert_eq!(b.max_value(), 5.0);
        let u = Buffer2D::new(4, 1, 9u32);
        assert_eq!(u.count_eq(9), 4);
        assert_eq!(u.count_eq(0), 0);
    }

    #[test]
    #[should_panic(expected = "texels")]
    fn zero_size_panics() {
        Buffer2D::new(0, 5, 0u8);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zip_dim_mismatch_panics() {
        let mut a = Buffer2D::new(2, 2, 0u32);
        let b = Buffer2D::new(3, 2, 0u32);
        a.zip_apply(&b, |d, s| *d += s);
    }
}
