//! Supersampled anti-aliasing for presentation rendering.
//!
//! The *analytical* rasterizers in this crate must stay point-sampled —
//! Raster Join's correctness argument depends on each point landing in
//! exactly one pixel. Presentation output (choropleths, heatmaps) has no
//! such constraint: rendering at `k×` resolution and box-downsampling gives
//! smooth region boundaries. This module provides the downsampling half;
//! callers simply render into a `k·w × k·h` buffer first.

use crate::buffer::Buffer2D;

/// Average `factor × factor` blocks of an RGB supersample into the output.
///
/// # Panics
/// Panics when the source dimensions are not exact multiples of `factor`.
pub fn downsample_rgb(src: &Buffer2D<[u8; 3]>, factor: u32) -> Buffer2D<[u8; 3]> {
    assert!(factor >= 1, "factor must be at least 1");
    assert_eq!(src.width() % factor, 0, "width must be a multiple of the factor");
    assert_eq!(src.height() % factor, 0, "height must be a multiple of the factor");
    if factor == 1 {
        return src.clone();
    }
    let (w, h) = (src.width() / factor, src.height() / factor);
    let samples = factor * factor;
    let mut out = Buffer2D::new(w, h, [0u8; 3]);
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0u32; 3];
            for sy in 0..factor {
                for sx in 0..factor {
                    let px = src.get(x * factor + sx, y * factor + sy);
                    for c in 0..3 {
                        acc[c] += px[c] as u32;
                    }
                }
            }
            out.set(x, y, acc.map(|v| ((v + samples / 2) / samples) as u8));
        }
    }
    out
}

/// Average-downsample a scalar field (e.g. a density buffer); the output
/// texel is the mean of its source block, so total mass scales by
/// `1 / factor²` — callers compensating for mass should multiply back.
pub fn downsample_f32(src: &Buffer2D<f32>, factor: u32) -> Buffer2D<f32> {
    assert!(factor >= 1, "factor must be at least 1");
    assert_eq!(src.width() % factor, 0, "width must be a multiple of the factor");
    assert_eq!(src.height() % factor, 0, "height must be a multiple of the factor");
    if factor == 1 {
        return src.clone();
    }
    let (w, h) = (src.width() / factor, src.height() / factor);
    let inv = 1.0 / (factor * factor) as f32;
    let mut out = Buffer2D::new(w, h, 0.0f32);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for sy in 0..factor {
                for sx in 0..factor {
                    acc += src.get(x * factor + sx, y * factor + sy);
                }
            }
            out.set(x, y, acc * inv);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_factor_one() {
        let mut src = Buffer2D::new(4, 4, [1u8, 2, 3]);
        src.set(2, 2, [9, 9, 9]);
        assert_eq!(downsample_rgb(&src, 1), src);
    }

    #[test]
    fn uniform_blocks_average_exactly() {
        let mut src = Buffer2D::new(4, 2, [0u8; 3]);
        // Left 2x2 block all white, right all black.
        for y in 0..2 {
            for x in 0..2 {
                src.set(x, y, [255, 255, 255]);
            }
        }
        let out = downsample_rgb(&src, 2);
        assert_eq!(out.width(), 2);
        assert_eq!(out.get(0, 0), [255, 255, 255]);
        assert_eq!(out.get(1, 0), [0, 0, 0]);
    }

    #[test]
    fn mixed_block_blends() {
        let mut src = Buffer2D::new(2, 2, [0u8; 3]);
        src.set(0, 0, [255, 0, 0]);
        src.set(1, 0, [255, 0, 0]);
        // Two red + two black → half red, rounded.
        let out = downsample_rgb(&src, 2);
        assert_eq!(out.get(0, 0), [128, 0, 0]);
    }

    #[test]
    fn scalar_mass_scaling() {
        let mut src = Buffer2D::new(4, 4, 0.0f32);
        src.set(1, 1, 16.0);
        let out = downsample_f32(&src, 4);
        assert_eq!(out.len(), 1);
        assert_eq!(out.get(0, 0), 1.0); // mean of 16 texels, one holding 16
        // Mass × factor² restores the original total.
        assert_eq!(out.sum() * 16.0, src.sum());
    }

    #[test]
    fn supersampled_edge_is_smoother() {
        // Render a half-plane boundary at 1x and at 4x-downsampled; the AA
        // version must contain intermediate gray levels along the diagonal.
        let render = |size: u32| {
            let mut img = Buffer2D::new(size, size, [0u8; 3]);
            crate::triangle::rasterize_triangle(
                urbane_geom::Point::new(0.0, 0.0),
                urbane_geom::Point::new(size as f64, 0.0),
                urbane_geom::Point::new(0.0, size as f64),
                size,
                size,
                |x, y| img.set(x, y, [255, 255, 255]),
            );
            img
        };
        let hard = render(16);
        let aa = downsample_rgb(&render(64), 4);
        let grays = |img: &Buffer2D<[u8; 3]>| {
            img.as_slice()
                .iter()
                .filter(|c| c[0] > 10 && c[0] < 245)
                .count()
        };
        assert_eq!(grays(&hard), 0, "point sampling has no intermediate values");
        assert!(grays(&aa) > 8, "AA edge must produce gray fringe");
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_multiple_panics() {
        let src = Buffer2D::new(5, 4, [0u8; 3]);
        downsample_rgb(&src, 2);
    }
}
