//! The rendering pipeline façade: a viewport plus stateful draw calls with
//! statistics, mirroring how Raster Join's OpenGL implementation structures
//! its passes (point pass, polygon pass, boundary pass).

use crate::blend::{Blendable, BlendOp};
use crate::buffer::Buffer2D;
use crate::line::traverse_segment;
use crate::point::{draw_point, draw_point_splat};
use crate::polygon_scan::rasterize_rings;
use crate::stats::RenderStats;
use crate::triangle::rasterize_triangle;
use urbane_geom::projection::Viewport;
use urbane_geom::triangulate::Triangle;
use urbane_geom::{Point, Polygon};

/// A viewport-bound rendering pipeline. Draw calls transform world-space
/// geometry through the viewport and rasterize into caller-provided buffers,
/// accumulating [`RenderStats`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    viewport: Viewport,
    stats: RenderStats,
}

impl Pipeline {
    /// Pipeline rendering through `viewport`.
    pub fn new(viewport: Viewport) -> Self {
        Pipeline { viewport, stats: RenderStats::new() }
    }

    /// The bound viewport.
    #[inline]
    pub fn viewport(&self) -> &Viewport {
        &self.viewport
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &RenderStats {
        &self.stats
    }

    /// Mutable statistics — for callers that run a specialized kernel
    /// outside the pipeline's draw methods but still account its work here.
    #[inline]
    pub fn stats_mut(&mut self) -> &mut RenderStats {
        &mut self.stats
    }

    /// Reset statistics (per-frame).
    pub fn reset_stats(&mut self) {
        self.stats = RenderStats::new();
    }

    /// Point pass: blend `value_fn(i)` for every world point into `target`.
    /// This is the per-query hot path — one fragment per point.
    pub fn draw_points<T, I, V>(
        &mut self,
        target: &mut Buffer2D<T>,
        points: I,
        mut value_fn: V,
        op: BlendOp,
    ) where
        T: Blendable,
        I: IntoIterator<Item = Point>,
        V: FnMut(usize) -> T,
    {
        self.stats.draw_calls += 1;
        // lint: allow(cancel-poll-reachability) emulates one GPU draw call; the core executors poll the budget between POINT_CHUNK-sized draws, matching real command-buffer granularity
        for (i, p) in points.into_iter().enumerate() {
            self.stats.points_in += 1;
            let frags = draw_point(target, &self.viewport, p, value_fn(i), op);
            if frags == 0 {
                self.stats.points_culled += 1;
            }
            self.stats.fragments += frags;
        }
    }

    /// Batched point pass: one projection per point, blended into every
    /// render target of `target` that `gate(i, t)` admits (`glDrawBuffers`
    /// analogue). Targets are visited in ascending order, so each target
    /// sees exactly the blend subsequence a solo [`Pipeline::draw_points`]
    /// over its gated points would have produced — bit-identical f32 sums.
    pub fn draw_points_multi<T, I, G, V>(
        &mut self,
        target: &mut crate::multi::MultiBuffer2D<T>,
        points: I,
        mut gate: G,
        mut value_fn: V,
        op: BlendOp,
    ) where
        T: Blendable,
        I: IntoIterator<Item = Point>,
        G: FnMut(usize, usize) -> bool,
        V: FnMut(usize, usize) -> T,
    {
        self.stats.draw_calls += 1;
        for (i, p) in points.into_iter().enumerate() {
            self.stats.points_in += 1;
            let frags = crate::multi::draw_point_multi(
                target,
                &self.viewport,
                p,
                |t| gate(i, t),
                |t| value_fn(i, t),
                op,
            );
            if frags == 0 {
                self.stats.points_culled += 1;
            }
            self.stats.fragments += frags;
        }
    }

    /// Point pass with `size × size` splats (`glPointSize` analogue).
    pub fn draw_points_splat<T, I, V>(
        &mut self,
        target: &mut Buffer2D<T>,
        points: I,
        mut value_fn: V,
        size: u32,
        op: BlendOp,
    ) where
        T: Blendable,
        I: IntoIterator<Item = Point>,
        V: FnMut(usize) -> T,
    {
        self.stats.draw_calls += 1;
        for (i, p) in points.into_iter().enumerate() {
            self.stats.points_in += 1;
            let frags = draw_point_splat(target, &self.viewport, p, value_fn(i), size, op);
            if frags == 0 {
                self.stats.points_culled += 1;
            }
            self.stats.fragments += frags;
        }
    }

    /// Polygon pass via pre-triangulated geometry (the GPU path): rasterize
    /// each triangle, blending `value` per fragment.
    pub fn draw_triangles<T: Blendable>(
        &mut self,
        target: &mut Buffer2D<T>,
        triangles: &[Triangle],
        value: T,
        op: BlendOp,
    ) {
        self.stats.draw_calls += 1;
        let (w, h) = (target.width(), target.height());
        for t in triangles {
            self.stats.triangles_in += 1;
            let a = self.viewport.world_to_screen(t.a);
            let b = self.viewport.world_to_screen(t.b);
            let c = self.viewport.world_to_screen(t.c);
            self.stats.fragments += rasterize_triangle(a, b, c, w, h, |x, y| {
                T::blend(target.get_mut(x, y), value, op);
            });
        }
    }

    /// Polygon pass via direct scanline fill (the software fast path):
    /// even–odd fill of the polygon with holes, blending `value`.
    pub fn draw_polygon_scan<T: Blendable>(
        &mut self,
        target: &mut Buffer2D<T>,
        poly: &Polygon,
        value: T,
        op: BlendOp,
    ) {
        self.stats.draw_calls += 1;
        let (w, h) = (target.width(), target.height());
        let screen_rings: Vec<Vec<Point>> = poly
            .rings()
            .map(|r| r.vertices().iter().map(|&p| self.viewport.world_to_screen(p)).collect())
            .collect();
        let ring_refs: Vec<&[Point]> = screen_rings.iter().map(|v| v.as_slice()).collect();
        self.stats.fragments += rasterize_rings(&ring_refs, w, h, |x, y| {
            T::blend(target.get_mut(x, y), value, op);
        });
    }

    /// Boundary pass: mark every pixel any edge of `poly` passes through.
    /// Conservative — used by accurate Raster Join to pick fix-up pixels.
    pub fn draw_boundary_mask(&mut self, mask: &mut Buffer2D<u8>, poly: &Polygon) {
        self.stats.draw_calls += 1;
        let (w, h) = (mask.width(), mask.height());
        for e in poly.edges() {
            let a = self.viewport.world_to_screen(e.a);
            let b = self.viewport.world_to_screen(e.b);
            self.stats.boundary_cells += traverse_segment(a, b, w, h, |x, y| {
                mask.set(x, y, 1);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urbane_geom::triangulate::triangulate;
    use urbane_geom::BoundingBox;

    fn vp(n: u32) -> Viewport {
        Viewport::new(BoundingBox::from_coords(0.0, 0.0, n as f64, n as f64), n, n)
    }

    #[test]
    fn point_pass_counts_and_culls() {
        let mut pipe = Pipeline::new(vp(8));
        let mut buf = Buffer2D::new(8, 8, 0.0f32);
        let pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0), Point::new(99.0, 0.0)];
        pipe.draw_points(&mut buf, pts, |_| 1.0, BlendOp::Add);
        assert_eq!(pipe.stats().points_in, 3);
        assert_eq!(pipe.stats().points_culled, 1);
        assert_eq!(pipe.stats().fragments, 2);
        assert_eq!(buf.sum(), 2.0);
    }

    #[test]
    fn triangle_pass_fills_square() {
        let mut pipe = Pipeline::new(vp(8));
        let mut buf = Buffer2D::new(8, 8, 0u32);
        let poly =
            Polygon::from_coords(&[(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)]).unwrap();
        let tris = triangulate(&poly).unwrap();
        pipe.draw_triangles(&mut buf, &tris, 1, BlendOp::Add);
        assert_eq!(pipe.stats().triangles_in, 2);
        assert_eq!(pipe.stats().fragments, 64);
        // Every pixel exactly once — the top-left rule at work.
        assert_eq!(buf.count_eq(1), 64);
    }

    #[test]
    fn scan_pass_matches_triangle_pass() {
        let poly = Polygon::from_coords(&[
            (0.7, 1.3),
            (7.1, 0.9),
            (6.4, 6.8),
            (3.3, 4.2),
            (1.1, 7.2),
        ])
        .unwrap();
        let tris = triangulate(&poly).unwrap();

        let mut pipe1 = Pipeline::new(vp(8));
        let mut tri_buf = Buffer2D::new(8, 8, 0u32);
        pipe1.draw_triangles(&mut tri_buf, &tris, 1, BlendOp::Add);

        let mut pipe2 = Pipeline::new(vp(8));
        let mut scan_buf = Buffer2D::new(8, 8, 0u32);
        pipe2.draw_polygon_scan(&mut scan_buf, &poly, 1, BlendOp::Add);

        assert_eq!(tri_buf, scan_buf, "triangulated and scanline coverage must agree");
        assert_eq!(pipe1.stats().fragments, pipe2.stats().fragments);
    }

    #[test]
    fn boundary_mask_surrounds_fill() {
        let mut pipe = Pipeline::new(vp(16));
        let poly =
            Polygon::from_coords(&[(3.0, 3.0), (12.0, 3.0), (12.0, 12.0), (3.0, 12.0)]).unwrap();
        let mut mask = Buffer2D::new(16, 16, 0u8);
        pipe.draw_boundary_mask(&mut mask, &poly);
        assert!(pipe.stats().boundary_cells > 0);
        // The world y=3..12 square maps to screen rows 4..13 (y flip).
        assert_eq!(mask.get(3, 4), 1); // on the boundary
        assert_eq!(mask.get(7, 7), 0); // interior not marked
        assert_eq!(mask.get(0, 0), 0); // exterior not marked
    }

    #[test]
    fn stats_reset() {
        let mut pipe = Pipeline::new(vp(4));
        let mut buf = Buffer2D::new(4, 4, 0.0f32);
        pipe.draw_points(&mut buf, vec![Point::new(1.0, 1.0)], |_| 1.0, BlendOp::Add);
        assert_ne!(pipe.stats().points_in, 0);
        pipe.reset_stats();
        assert_eq!(*pipe.stats(), RenderStats::new());
    }
}
