//! Conservative segment traversal (Amanatides–Woo grid walking).
//!
//! The accurate Raster Join variant needs to know which pixels a polygon
//! *boundary* passes through: those pixels get exact point-in-polygon
//! fix-ups instead of trusting the rasterized region id. Unlike Bresenham,
//! this traversal is conservative — it visits **every** cell the segment
//! touches, so no boundary pixel is missed.

use urbane_geom::Point;

/// Visit every grid cell the closed segment `a—b` passes through, clipped to
/// `width × height`. Cells are unit squares: cell `(x, y)` spans
/// `[x, x+1) × [y, y+1)`. Returns the number of cells visited.
pub fn traverse_segment<F: FnMut(u32, u32)>(
    a: Point,
    b: Point,
    width: u32,
    height: u32,
    mut visit: F,
) -> u64 {
    // Clip to the buffer with a tiny inflation so cells whose edge the
    // segment grazes are still visited (conservative both ways).
    let bbox = urbane_geom::BoundingBox::from_coords(
        0.0,
        0.0,
        width as f64 - 1e-9,
        height as f64 - 1e-9,
    );
    let seg = match urbane_geom::Segment::new(a, b).clip_to_box(&bbox) {
        Some(s) => s,
        None => return 0,
    };
    let (a, b) = (seg.a, seg.b);

    let mut x = a.x.floor() as i64;
    let mut y = a.y.floor() as i64;
    let end_x = b.x.floor() as i64;
    let end_y = b.y.floor() as i64;

    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let step_x: i64 = if dx > 0.0 { 1 } else { -1 };
    let step_y: i64 = if dy > 0.0 { 1 } else { -1 };

    // Parametric distance to the first vertical / horizontal cell border,
    // and per-cell increments.
    let t_delta_x = if dx != 0.0 { (1.0 / dx).abs() } else { f64::INFINITY };
    let t_delta_y = if dy != 0.0 { (1.0 / dy).abs() } else { f64::INFINITY };
    let mut t_max_x = if dx != 0.0 {
        let next = if step_x > 0 { x as f64 + 1.0 } else { x as f64 };
        ((next - a.x) / dx).abs()
    } else {
        f64::INFINITY
    };
    let mut t_max_y = if dy != 0.0 {
        let next = if step_y > 0 { y as f64 + 1.0 } else { y as f64 };
        ((next - a.y) / dy).abs()
    } else {
        f64::INFINITY
    };

    let in_bounds =
        |x: i64, y: i64| x >= 0 && y >= 0 && x < width as i64 && y < height as i64;
    let mut visited = 0u64;
    let max_cells = (width as u64 + height as u64 + 2) * 2; // safety bound
    loop {
        if in_bounds(x, y) {
            visit(x as u32, y as u32);
            visited += 1;
        }
        if x == end_x && y == end_y {
            break;
        }
        if visited > max_cells {
            debug_assert!(false, "grid traversal overran its cell budget");
            break;
        }
        if t_max_x < t_max_y {
            t_max_x += t_delta_x;
            x += step_x;
        } else {
            t_max_y += t_delta_y;
            y += step_y;
        }
    }
    visited
}

/// Cells as a vector (test/debug helper).
pub fn segment_cells(a: Point, b: Point, width: u32, height: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    traverse_segment(a, b, width, height, |x, y| out.push((x, y)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_segment() {
        let cells = segment_cells(Point::new(0.5, 2.5), Point::new(5.5, 2.5), 8, 8);
        assert_eq!(cells, vec![(0, 2), (1, 2), (2, 2), (3, 2), (4, 2), (5, 2)]);
    }

    #[test]
    fn vertical_segment() {
        let cells = segment_cells(Point::new(3.5, 1.2), Point::new(3.5, 4.8), 8, 8);
        assert_eq!(cells, vec![(3, 1), (3, 2), (3, 3), (3, 4)]);
    }

    #[test]
    fn diagonal_visits_contiguous_cells() {
        let cells = segment_cells(Point::new(0.2, 0.3), Point::new(6.7, 4.9), 8, 8);
        // 4-connected: consecutive cells differ by exactly one step in x or y.
        for w in cells.windows(2) {
            let dx = (w[1].0 as i64 - w[0].0 as i64).abs();
            let dy = (w[1].1 as i64 - w[0].1 as i64).abs();
            assert_eq!(dx + dy, 1, "traversal jumped from {:?} to {:?}", w[0], w[1]);
        }
        assert_eq!(cells.first(), Some(&(0, 0)));
        assert_eq!(cells.last(), Some(&(6, 4)));
    }

    #[test]
    fn single_cell_segment() {
        let cells = segment_cells(Point::new(2.2, 2.2), Point::new(2.8, 2.6), 8, 8);
        assert_eq!(cells, vec![(2, 2)]);
    }

    #[test]
    fn every_cell_the_segment_crosses_is_visited() {
        // Verify conservativeness against a brute-force check: every cell
        // whose box the segment intersects (with positive overlap) appears.
        let a = Point::new(0.7, 5.3);
        let b = Point::new(7.1, 1.9);
        let cells: std::collections::HashSet<(u32, u32)> =
            segment_cells(a, b, 8, 8).into_iter().collect();
        let seg = urbane_geom::Segment::new(a, b);
        for y in 0..8u32 {
            for x in 0..8u32 {
                let cell = urbane_geom::BoundingBox::from_coords(
                    x as f64,
                    y as f64,
                    (x + 1) as f64,
                    (y + 1) as f64,
                );
                // Shrink slightly to avoid counting pure corner grazes.
                let core = cell.inflate(-1e-9);
                if seg.clip_to_box(&core).is_some_and(|c| c.length() > 1e-9) {
                    assert!(cells.contains(&(x, y)), "missed cell ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn offscreen_segment_visits_nothing() {
        assert_eq!(traverse_segment(Point::new(-5.0, -5.0), Point::new(-1.0, -2.0), 8, 8, |_, _| {}), 0);
    }

    #[test]
    fn segment_crossing_the_buffer_is_clipped() {
        let cells = segment_cells(Point::new(-10.0, 4.5), Point::new(20.0, 4.5), 8, 8);
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().all(|&(_, y)| y == 4));
    }

    #[test]
    fn reverse_direction_same_cells() {
        let a = Point::new(1.3, 6.2);
        let b = Point::new(6.8, 0.4);
        let fwd: std::collections::HashSet<_> = segment_cells(a, b, 8, 8).into_iter().collect();
        let rev: std::collections::HashSet<_> = segment_cells(b, a, 8, 8).into_iter().collect();
        assert_eq!(fwd, rev);
    }
}
