//! Blend operations — the GPU stage Raster Join leans on hardest.
//!
//! The paper's insight: with blending set to `GL_FUNC_ADD`, rendering one
//! fragment per data point turns the framebuffer into a per-pixel aggregate
//! table *without any synchronization*. `GL_MIN` / `GL_MAX` extend this to
//! MIN/MAX aggregates. We reproduce exactly those blend equations.

/// A blend equation applied per fragment: `dst = op(dst, src)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlendOp {
    /// `dst = src` (GL: blending disabled).
    Replace,
    /// `dst = dst + src` (GL: `GL_FUNC_ADD`, factors 1/1).
    Add,
    /// `dst = min(dst, src)` (GL: `GL_MIN`).
    Min,
    /// `dst = max(dst, src)` (GL: `GL_MAX`).
    Max,
}

/// Texel types that support the blend equations.
pub trait Blendable: Copy {
    /// Apply `op` in place: `*dst = op(*dst, src)`.
    fn blend(dst: &mut Self, src: Self, op: BlendOp);
}

impl Blendable for f32 {
    #[inline]
    fn blend(dst: &mut Self, src: Self, op: BlendOp) {
        match op {
            BlendOp::Replace => *dst = src,
            BlendOp::Add => *dst += src,
            BlendOp::Min => *dst = dst.min(src),
            BlendOp::Max => *dst = dst.max(src),
        }
    }
}

impl Blendable for f64 {
    #[inline]
    fn blend(dst: &mut Self, src: Self, op: BlendOp) {
        match op {
            BlendOp::Replace => *dst = src,
            BlendOp::Add => *dst += src,
            BlendOp::Min => *dst = dst.min(src),
            BlendOp::Max => *dst = dst.max(src),
        }
    }
}

impl Blendable for u32 {
    #[inline]
    fn blend(dst: &mut Self, src: Self, op: BlendOp) {
        match op {
            BlendOp::Replace => *dst = src,
            BlendOp::Add => *dst = dst.wrapping_add(src),
            BlendOp::Min => *dst = (*dst).min(src),
            BlendOp::Max => *dst = (*dst).max(src),
        }
    }
}

impl<const N: usize> Blendable for [f32; N] {
    #[inline]
    fn blend(dst: &mut Self, src: Self, op: BlendOp) {
        for (d, s) in dst.iter_mut().zip(src) {
            f32::blend(d, s, op);
        }
    }
}

impl<const N: usize> Blendable for [f64; N] {
    #[inline]
    fn blend(dst: &mut Self, src: Self, op: BlendOp) {
        for (d, s) in dst.iter_mut().zip(src) {
            f64::blend(d, s, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_f32() {
        let mut d = 1.0f32;
        f32::blend(&mut d, 2.0, BlendOp::Add);
        assert_eq!(d, 3.0);
        f32::blend(&mut d, 1.5, BlendOp::Min);
        assert_eq!(d, 1.5);
        f32::blend(&mut d, 9.0, BlendOp::Max);
        assert_eq!(d, 9.0);
        f32::blend(&mut d, -1.0, BlendOp::Replace);
        assert_eq!(d, -1.0);
    }

    #[test]
    fn scalar_u32_wraps_like_gl_integer_targets() {
        let mut d = u32::MAX;
        u32::blend(&mut d, 2, BlendOp::Add);
        assert_eq!(d, 1); // wrapping, as GL integer blending would
        u32::blend(&mut d, 0, BlendOp::Min);
        assert_eq!(d, 0);
    }

    #[test]
    fn vector_channels_independent() {
        let mut d = [1.0f32, 10.0];
        <[f32; 2]>::blend(&mut d, [2.0, -5.0], BlendOp::Add);
        assert_eq!(d, [3.0, 5.0]);
        <[f32; 2]>::blend(&mut d, [0.0, 100.0], BlendOp::Max);
        assert_eq!(d, [3.0, 100.0]);
    }

    #[test]
    fn add_is_order_independent() {
        // The property that makes blending-based aggregation correct:
        // addition commutes, so fragment order doesn't matter.
        let vals = [1.5f32, -2.0, 3.25, 10.0, 0.125];
        let mut fwd = 0.0f32;
        let mut rev = 0.0f32;
        for &v in &vals {
            f32::blend(&mut fwd, v, BlendOp::Add);
        }
        for &v in vals.iter().rev() {
            f32::blend(&mut rev, v, BlendOp::Add);
        }
        assert_eq!(fwd, rev);
    }
}
