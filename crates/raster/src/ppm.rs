//! PPM image output — the minimal dependency-free way to get framebuffers
//! onto disk so the Urbane map view can be inspected visually.

use crate::buffer::Buffer2D;
use std::io::{self, Write};
use std::path::Path;

/// Write an RGB buffer as a binary PPM (P6) file.
pub fn write_ppm<P: AsRef<Path>>(path: P, rgb: &Buffer2D<[u8; 3]>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write_ppm_to(&mut w, rgb)
}

/// Write an RGB buffer as binary PPM to any writer.
pub fn write_ppm_to<W: Write>(w: &mut W, rgb: &Buffer2D<[u8; 3]>) -> io::Result<()> {
    write!(w, "P6\n{} {}\n255\n", rgb.width(), rgb.height())?;
    for px in rgb.as_slice() {
        w.write_all(px)?;
    }
    Ok(())
}

/// Parse a binary PPM (P6) back into a buffer — used by round-trip tests and
/// by tools that post-process rendered maps.
pub fn read_ppm(bytes: &[u8]) -> io::Result<Buffer2D<[u8; 3]>> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut pos = 0usize;
    let mut token = || -> io::Result<String> {
        // Skip whitespace and comments.
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated PPM"));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };

    if token()? != "P6" {
        return Err(err("not a P6 PPM"));
    }
    let width: u32 = token()?.parse().map_err(|_| err("bad width"))?;
    let height: u32 = token()?.parse().map_err(|_| err("bad height"))?;
    let maxval: u32 = token()?.parse().map_err(|_| err("bad maxval"))?;
    if maxval != 255 {
        return Err(err("only maxval 255 supported"));
    }
    pos += 1; // single whitespace after maxval
    let need = width as usize * height as usize * 3;
    if bytes.len() < pos + need {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated pixel data"));
    }
    let mut buf = Buffer2D::new(width, height, [0u8; 3]);
    for (i, px) in buf.as_mut_slice().iter_mut().enumerate() {
        let o = pos + i * 3;
        *px = [bytes[o], bytes[o + 1], bytes[o + 2]];
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut img = Buffer2D::new(3, 2, [0u8; 3]);
        img.set(0, 0, [255, 0, 0]);
        img.set(2, 1, [0, 128, 255]);
        let mut bytes = Vec::new();
        write_ppm_to(&mut bytes, &img).unwrap();
        let back = read_ppm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_format() {
        let img = Buffer2D::new(2, 2, [9u8; 3]);
        let mut bytes = Vec::new();
        write_ppm_to(&mut bytes, &img).unwrap();
        assert!(bytes.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(bytes.len(), b"P6\n2 2\n255\n".len() + 12);
    }

    #[test]
    fn reject_bad_input() {
        assert!(read_ppm(b"P3\n1 1\n255\n000").is_err());
        assert!(read_ppm(b"P6\n2 2\n255\nxx").is_err()); // truncated
        assert!(read_ppm(b"P6\n2 2\n65535\n").is_err());
    }

    #[test]
    fn comments_skipped() {
        let data = b"P6\n# a comment\n1 1\n255\n\xff\x00\x7f";
        let img = read_ppm(data).unwrap();
        assert_eq!(img.get(0, 0), [255, 0, 127]);
    }
}
