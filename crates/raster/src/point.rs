//! Point rendering — the data side of Raster Join.
//!
//! Each data point becomes one fragment (or an `size × size` splat when a
//! point size is set, mirroring `glPointSize`). The fragment's value is
//! blended into the target buffer; with additive blending this computes
//! per-pixel COUNT/SUM without synchronization.

use crate::blend::{Blendable, BlendOp};
use crate::buffer::Buffer2D;
use urbane_geom::projection::Viewport;
use urbane_geom::Point;

/// Render one world-space point into `target` through `viewport`, blending
/// `value`. Returns the number of fragments written (0 when culled).
#[inline]
pub fn draw_point<T: Blendable>(
    target: &mut Buffer2D<T>,
    viewport: &Viewport,
    p: Point,
    value: T,
    op: BlendOp,
) -> u64 {
    match viewport.world_to_pixel(p) {
        Some((x, y)) => {
            T::blend(target.get_mut(x, y), value, op);
            1
        }
        None => 0,
    }
}

/// Render a point as a `size × size` pixel splat centered on its pixel
/// (odd sizes center exactly; even sizes bias toward the top-left, matching
/// GL's point sprite convention). Fragments outside the buffer are clipped.
pub fn draw_point_splat<T: Blendable>(
    target: &mut Buffer2D<T>,
    viewport: &Viewport,
    p: Point,
    value: T,
    size: u32,
    op: BlendOp,
) -> u64 {
    debug_assert!(size >= 1);
    let (cx, cy) = match viewport.world_to_pixel(p) {
        Some(c) => c,
        None => return 0,
    };
    if size == 1 {
        T::blend(target.get_mut(cx, cy), value, op);
        return 1;
    }
    let half = (size / 2) as i64;
    let lo = if size.is_multiple_of(2) { 1 - half } else { -half };
    let mut frags = 0u64;
    for dy in lo..=half {
        for dx in lo..=half {
            let x = cx as i64 + dx;
            let y = cy as i64 + dy;
            if x >= 0 && y >= 0 && x < target.width() as i64 && y < target.height() as i64 {
                T::blend(target.get_mut(x as u32, y as u32), value, op);
                frags += 1;
            }
        }
    }
    frags
}

#[cfg(test)]
mod tests {
    use super::*;
    use urbane_geom::BoundingBox;

    fn vp() -> Viewport {
        Viewport::new(BoundingBox::from_coords(0.0, 0.0, 8.0, 8.0), 8, 8)
    }

    #[test]
    fn point_accumulates_with_add() {
        let mut buf = Buffer2D::new(8, 8, 0.0f32);
        let v = vp();
        for _ in 0..5 {
            draw_point(&mut buf, &v, Point::new(3.5, 4.5), 1.0, BlendOp::Add);
        }
        // World (3.5, 4.5) → pixel (3, 3) with y flipped (8 - 4.5 = 3.5).
        assert_eq!(buf.get(3, 3), 5.0);
        assert_eq!(buf.sum(), 5.0);
    }

    #[test]
    fn out_of_view_point_culled() {
        let mut buf = Buffer2D::new(8, 8, 0.0f32);
        assert_eq!(draw_point(&mut buf, &vp(), Point::new(100.0, 0.0), 1.0, BlendOp::Add), 0);
        assert_eq!(buf.sum(), 0.0);
    }

    #[test]
    fn min_max_blending() {
        let mut buf = Buffer2D::new(8, 8, f32::INFINITY);
        let v = vp();
        let p = Point::new(1.0, 1.0);
        draw_point(&mut buf, &v, p, 7.0, BlendOp::Min);
        draw_point(&mut buf, &v, p, 3.0, BlendOp::Min);
        draw_point(&mut buf, &v, p, 5.0, BlendOp::Min);
        assert_eq!(buf.get(1, 7), 3.0);
    }

    #[test]
    fn splat_size_three() {
        let mut buf = Buffer2D::new(8, 8, 0.0f32);
        let n = draw_point_splat(&mut buf, &vp(), Point::new(4.5, 4.5), 1.0, 3, BlendOp::Add);
        assert_eq!(n, 9);
        // 3x3 neighborhood around pixel (4, 3).
        assert_eq!(buf.get(4, 3), 1.0);
        assert_eq!(buf.get(3, 2), 1.0);
        assert_eq!(buf.get(5, 4), 1.0);
        assert_eq!(buf.get(6, 3), 0.0);
    }

    #[test]
    fn splat_clipped_at_border() {
        let mut buf = Buffer2D::new(8, 8, 0.0f32);
        let n = draw_point_splat(&mut buf, &vp(), Point::new(0.1, 7.9), 1.0, 3, BlendOp::Add);
        assert_eq!(n, 4, "corner splat loses the off-buffer fragments");
    }

    #[test]
    fn two_channel_sum_count() {
        // The AVG trick: blend [attribute, 1] with Add → per-pixel (sum, count).
        let mut buf = Buffer2D::new(8, 8, [0.0f32; 2]);
        let v = vp();
        let p = Point::new(2.0, 2.0);
        for fare in [10.0f32, 20.0, 30.0] {
            draw_point(&mut buf, &v, p, [fare, 1.0], BlendOp::Add);
        }
        let [sum, count] = buf.get(2, 6);
        assert_eq!(sum, 60.0);
        assert_eq!(count, 3.0);
    }
}
