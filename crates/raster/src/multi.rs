//! Multi-target framebuffers — one raster pass feeding K render targets.
//!
//! The GPU Raster Join amortizes work by attaching several accumulation
//! textures to one framebuffer object and letting a single draw call blend
//! into all of them (`glDrawBuffers`). [`MultiBuffer2D`] is the software
//! analogue: K same-sized targets stored **pixel-major** — the K texels of
//! one pixel are contiguous — so a point that projects to `(x, y)` touches
//! one cache line while blending into every target it is gated into.
//!
//! Per-target blend order is what makes batched execution bit-identical to
//! serial execution: [`draw_point_multi`] projects the point once and then
//! blends targets in ascending index order, so for any fixed target `t` the
//! sequence of blends it receives is exactly the subsequence of the input
//! stream that `gate(t)` accepts — the same sequence a solo query over
//! target `t`'s filter would have produced.

use crate::blend::{Blendable, BlendOp};
use urbane_geom::projection::Viewport;
use urbane_geom::Point;

/// A dense 2-D buffer of `K` same-sized render targets, pixel-major:
/// `data[(y·w + x)·K + t]` is target `t`'s texel at `(x, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBuffer2D<T> {
    width: u32,
    height: u32,
    targets: usize,
    data: Vec<T>,
}

impl<T: Copy> MultiBuffer2D<T> {
    /// Allocate `targets` same-sized buffers filled with `fill`.
    ///
    /// # Panics
    /// Panics on a zero-sized buffer or zero targets — always a caller bug.
    pub fn new(width: u32, height: u32, targets: usize, fill: T) -> Self {
        assert!(width > 0 && height > 0, "buffer must have texels");
        assert!(targets > 0, "buffer must have at least one target");
        let len = width as usize * height as usize * targets;
        MultiBuffer2D { width, height, targets, data: vec![fill; len] }
    }

    /// Buffer width in texels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Buffer height in texels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of render targets.
    #[inline]
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// Base index of pixel `(x, y)`'s target group.
    #[inline]
    fn base(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "texel ({x},{y}) out of bounds");
        (y as usize * self.width as usize + x as usize) * self.targets
    }

    /// Read target `t`'s texel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32, t: usize) -> T {
        self.data[self.base(x, y) + t]
    }

    /// All K texels of pixel `(x, y)`, in target order (contiguous).
    #[inline]
    pub fn texels(&self, x: u32, y: u32) -> &[T] {
        let base = self.base(x, y);
        &self.data[base..base + self.targets]
    }

    /// Mutable access to all K texels of pixel `(x, y)`.
    #[inline]
    pub fn texels_mut(&mut self, x: u32, y: u32) -> &mut [T] {
        let base = self.base(x, y);
        &mut self.data[base..base + self.targets]
    }

    /// Mutable access to all K texels of the pixel with linear index
    /// `pixel` (`y·width + x`) — for callers that pre-project coordinates.
    #[inline]
    pub fn texels_at_mut(&mut self, pixel: usize) -> &mut [T] {
        debug_assert!(
            pixel < self.width as usize * self.height as usize,
            "pixel {pixel} out of bounds"
        );
        let base = pixel * self.targets;
        &mut self.data[base..base + self.targets]
    }
}

/// Render one world-space point into `target` through `viewport`, blending
/// `value(t)` into every target `t` (ascending) for which `gate(t)` is true.
/// The projection runs once regardless of how many targets accept the point.
/// Returns the number of fragments written (0 when culled or fully gated
/// out).
#[inline]
pub fn draw_point_multi<T, G, V>(
    target: &mut MultiBuffer2D<T>,
    viewport: &Viewport,
    p: Point,
    mut gate: G,
    mut value: V,
    op: BlendOp,
) -> u64
where
    T: Blendable,
    G: FnMut(usize) -> bool,
    V: FnMut(usize) -> T,
{
    let Some((x, y)) = viewport.world_to_pixel(p) else {
        return 0;
    };
    let mut frags = 0u64;
    for (t, texel) in target.texels_mut(x, y).iter_mut().enumerate() {
        if gate(t) {
            T::blend(texel, value(t), op);
            frags += 1;
        }
    }
    frags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer2D;
    use crate::point::draw_point;
    use urbane_geom::BoundingBox;

    fn vp() -> Viewport {
        Viewport::new(BoundingBox::from_coords(0.0, 0.0, 8.0, 8.0), 8, 8)
    }

    #[test]
    fn layout_is_pixel_major() {
        let mut b = MultiBuffer2D::new(4, 4, 3, 0u32);
        b.texels_mut(2, 1)[1] = 7;
        assert_eq!(b.get(2, 1, 1), 7);
        assert_eq!(b.get(2, 1, 0), 0);
        assert_eq!(b.texels(2, 1), &[0, 7, 0]);
        assert_eq!(b.targets(), 3);
    }

    #[test]
    fn gated_blend_touches_only_accepted_targets() {
        let mut b = MultiBuffer2D::new(8, 8, 4, 0.0f32);
        let n = draw_point_multi(
            &mut b,
            &vp(),
            Point::new(1.5, 1.5),
            |t| t % 2 == 0,
            |t| (t + 1) as f32,
            BlendOp::Add,
        );
        assert_eq!(n, 2);
        // World (1.5, 1.5) → pixel (1, 6) with y flipped.
        assert_eq!(b.texels(1, 6), &[1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn culled_point_writes_nothing() {
        let mut b = MultiBuffer2D::new(8, 8, 2, 0.0f32);
        let n = draw_point_multi(
            &mut b,
            &vp(),
            Point::new(100.0, 0.0),
            |_| true,
            |_| 1.0,
            BlendOp::Add,
        );
        assert_eq!(n, 0);
    }

    /// The bit-identity contract: target t of a multi draw accumulates
    /// exactly what a solo Buffer2D fed t's subsequence accumulates.
    #[test]
    fn per_target_blend_matches_solo_buffer() {
        let v = vp();
        let pts: Vec<Point> = (0..64)
            .map(|i| Point::new(0.37 + (i % 8) as f64, 0.91 + (i / 8) as f64))
            .collect();
        let vals: Vec<f32> = (0..64).map(|i| 0.1 + (i as f32) * 0.3).collect();
        let keep = |t: usize, i: usize| (i + t).is_multiple_of(t + 2);

        let mut multi = MultiBuffer2D::new(8, 8, 3, 0.0f32);
        for (i, &p) in pts.iter().enumerate() {
            draw_point_multi(&mut multi, &v, p, |t| keep(t, i), |_| vals[i], BlendOp::Add);
        }
        for t in 0..3 {
            let mut solo = Buffer2D::new(8, 8, 0.0f32);
            for (i, &p) in pts.iter().enumerate() {
                if keep(t, i) {
                    draw_point(&mut solo, &v, p, vals[i], BlendOp::Add);
                }
            }
            for y in 0..8 {
                for x in 0..8 {
                    assert!(
                        multi.get(x, y, t).to_bits() == solo.get(x, y).to_bits(),
                        "target {t} pixel ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "target")]
    fn zero_targets_panics() {
        MultiBuffer2D::new(4, 4, 0, 0u8);
    }
}
