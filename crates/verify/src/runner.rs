//! The differential runner: every workload through every execution path,
//! every thread count, every binning mode — each result diffed against the
//! exact oracle and (for the approximate paths) asserted under the analytic
//! ε budget.
//!
//! Per scenario the matrix is
//!
//! | path       | threads | binning     | expectation vs. oracle            |
//! |------------|---------|-------------|-----------------------------------|
//! | bounded    | 1, 4    | Off, Grid   | within [`BOUNDED_BAND`]·ε budget  |
//! | weighted   | 1, 4    | Off, Grid   | within [`WEIGHTED_BAND`]·ε budget |
//! | accurate   | 1, 4    | Off, Grid   | exact (counts bit-equal; value    |
//! |            |         |             | channels to f32-accumulator tol)  |
//! | id-buffer  | 1, 4    | Off, Grid   | bounded budget **and** the same   |
//! |            |         |             | point assignment as bounded       |
//! |            |         |             | points-first — counts bit-equal,  |
//! |            |         |             | values to f32-order tolerance     |
//! |            |         |             | (partition layouts only)          |
//! | prepared   | —       | Off, Grid   | as its mode (bounded + accurate)  |
//! | index_join | 1, 4    | —           | bit-for-bit equal to the oracle   |
//! |            |         |             | through a `.ubs` store round-trip |
//! |            |         |             | (ε = 0 by construction)           |
//!
//! On top of the oracle diff, all (threads × binning) combinations of one
//! path must agree *bit-for-bit* — the work-stealing merge replays tiles in
//! order, so any drift is a determinism bug, not roundoff.
//!
//! MIN/MAX under the approximate paths are *not* certifiable (dropping a
//! single boundary point can move an extremum arbitrarily far), so those
//! runs record the observed error without asserting a budget; the accurate
//! path still certifies them exactly.

use raster_join::{
    BinningMode, CanvasPlan, CanvasSpec, ExecutionMode, PointStrategy, PolygonPath,
    PreparedRasterJoin, RasterJoin, RasterJoinConfig,
};
use urban_data::binned::BinnedPointTable;
use urban_data::query::{AggKind, AggTable};
use raster_join::PointStore;

use crate::budget::{error_budget, ErrorBudget, BOUNDED_BAND, WEIGHTED_BAND};
use crate::corpus::Scenario;
use crate::oracle::oracle_join;
use crate::Result;

/// Tile size limit used by every verification run: small enough that the
/// 96/128-px scenarios exercise multi-tile plans (and therefore the
/// work-stealing scheduler) on every corpus.
pub const MAX_TILE: u32 = 64;

/// Binning grid side for the `Grid` axis.
pub const GRID_SIDE: u32 = 16;

/// Outcome of one (scenario, path, threads, binning) execution.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Scenario label (from [`Scenario::name`]).
    pub scenario: String,
    /// Execution path: `bounded`, `weighted`, `accurate`, `id_buffer`,
    /// `prepared`, `prepared_accurate`.
    pub mode: &'static str,
    /// Worker threads (1 for prepared, which is serial by design).
    pub threads: usize,
    /// Binning axis: `off` or `grid`.
    pub binning: &'static str,
    /// The run's ε (world units).
    pub epsilon: f64,
    /// Max over regions of `|approx − exact|` (empty groups read as 0).
    pub max_abs_err: f64,
    /// Max over regions of error / certified budget (0 when every budget
    /// with a nonzero error was met with room; only meaningful for
    /// budget-certified runs).
    pub max_budget_util: f64,
    /// True when this run asserted a bound (budget or exactness) rather
    /// than only recording the observed error.
    pub certified: bool,
    /// Violations found (empty = pass).
    pub failures: Vec<String>,
}

impl RunRecord {
    /// Did the run meet every assertion?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// f32-accumulator tolerance for value channels (point passes accumulate
/// into f32 pixel buffers before the f64 gather).
fn value_tol(exact: f64) -> f64 {
    1e-3 + 1e-5 * exact.abs()
}

fn rec(
    s: &Scenario,
    mode: &'static str,
    threads: usize,
    binning: &'static str,
    epsilon: f64,
) -> RunRecord {
    RunRecord {
        scenario: s.name.clone(),
        mode,
        threads,
        binning,
        epsilon,
        max_abs_err: 0.0,
        max_budget_util: 0.0,
        certified: true,
        failures: Vec::new(),
    }
}

/// Diff an approximate table against the oracle under a per-region budget.
fn check_budgeted(rec: &mut RunRecord, approx: &AggTable, exact: &AggTable, budget: &ErrorBudget) {
    let agg = exact.agg.clone();
    for (r, (sa, se)) in approx.states.iter().zip(&exact.states).enumerate() {
        let va = sa.finish(&agg);
        let ve = se.finish(&agg);
        let diff = (va.unwrap_or(0.0) - ve.unwrap_or(0.0)).abs();
        rec.max_abs_err = rec.max_abs_err.max(diff);
        let b = budget.regions.get(r).copied().unwrap_or_default();
        let (bound, tol) = match agg {
            AggKind::Count => (b.count_budget(), 1e-6),
            AggKind::Sum(_) => (b.sum_budget(), value_tol(ve.unwrap_or(0.0))),
            AggKind::Avg(_) => {
                // |Δavg| ≤ (sumB + |avg_e|·cntB) / weight_a  (see budget.rs).
                let wa = sa.weight;
                if va.is_none() {
                    // The approximate side saw nothing: legal only when the
                    // exact population fits inside the band.
                    if se.count as f64 > b.count_budget() {
                        rec.failures.push(format!(
                            "{}/{} region {r}: empty approx group but {} exact points > budget {}",
                            rec.mode, rec.scenario, se.count, b.count_budget()
                        ));
                    }
                    continue;
                }
                let avg_e = ve.unwrap_or(0.0);
                ((b.sum_budget() + avg_e.abs() * b.count_budget()) / wa.max(f64::MIN_POSITIVE),
                 value_tol(avg_e))
            }
            AggKind::Min(_) | AggKind::Max(_) => {
                // Observed only — a budget cannot bound an extremum.
                rec.certified = false;
                continue;
            }
        };
        if bound > 0.0 {
            rec.max_budget_util = rec.max_budget_util.max(diff / (bound + tol));
        }
        if diff > bound + tol {
            rec.failures.push(format!(
                "{}/{} region {r}: |approx − exact| = {diff:.6} exceeds ε budget {bound:.6} (+{tol:.1e} tol), ε={:.4}",
                rec.mode, rec.scenario, rec.epsilon
            ));
        }
    }
}

/// Diff an accurate-path table against the oracle: counts and group
/// emptiness bit-exact, value channels to f32-accumulator tolerance.
fn check_accurate(rec: &mut RunRecord, approx: &AggTable, exact: &AggTable) {
    let agg = exact.agg.clone();
    for (r, (sa, se)) in approx.states.iter().zip(&exact.states).enumerate() {
        if sa.count != se.count {
            rec.failures.push(format!(
                "{}/{} region {r}: accurate count {} != exact {}",
                rec.mode, rec.scenario, sa.count, se.count
            ));
        }
        let va = sa.finish(&agg);
        let ve = se.finish(&agg);
        match (va, ve) {
            (None, None) => {}
            (Some(a), Some(e)) => {
                let diff = (a - e).abs();
                rec.max_abs_err = rec.max_abs_err.max(diff);
                let tol = match agg {
                    AggKind::Count => 0.0,
                    AggKind::Min(_) | AggKind::Max(_) => 1e-9,
                    AggKind::Sum(_) | AggKind::Avg(_) => value_tol(e),
                };
                if diff > tol {
                    rec.failures.push(format!(
                        "{}/{} region {r}: accurate {a} vs exact {e} (tol {tol:.1e})",
                        rec.mode, rec.scenario
                    ));
                }
            }
            (a, e) => rec.failures.push(format!(
                "{}/{} region {r}: group emptiness mismatch {a:?} vs {e:?}",
                rec.mode, rec.scenario
            )),
        }
    }
}

/// Do two tables reflect the same point→region assignment? Counts and
/// weights must be bit-equal; value channels may differ by f32 accumulation
/// order (points-first sums per-pixel rasters, id-buffer sums in point
/// order), so those compare under [`value_tol`]. Returns the first
/// discrepancy, or `None` when the assignments agree.
fn same_point_assignment(a: &AggTable, b: &AggTable) -> Option<String> {
    let (cmp_min, cmp_max) =
        (matches!(a.agg, AggKind::Min(_)), matches!(a.agg, AggKind::Max(_)));
    for (r, (sa, sb)) in a.states.iter().zip(&b.states).enumerate() {
        if sa.count != sb.count {
            return Some(format!("region {r}: count {} vs {}", sa.count, sb.count));
        }
        if sa.weight != sb.weight {
            return Some(format!("region {r}: weight {} vs {}", sa.weight, sb.weight));
        }
        if (sa.sum - sb.sum).abs() > value_tol(sa.sum) {
            return Some(format!("region {r}: sum {} vs {}", sa.sum, sb.sum));
        }
        // Extrema are single f32 samples, not accumulations — bit-equal.
        // Only the channel the query aggregates is meaningful: the
        // points-first path leaves untracked channels at their ±inf
        // defaults while the per-point id-buffer fold fills both.
        if (cmp_min && sa.min.to_bits() != sb.min.to_bits())
            || (cmp_max && sa.max.to_bits() != sb.max.to_bits())
        {
            return Some(format!(
                "region {r}: extrema ({}, {}) vs ({}, {})",
                sa.min, sa.max, sb.min, sb.max
            ));
        }
    }
    None
}

/// Run the full matrix for one scenario. Returns one [`RunRecord`] per
/// execution; a record with non-empty `failures` marks a violation (the
/// function itself only errs when an executor fails outright).
pub fn verify_scenario(s: &Scenario) -> Result<Vec<RunRecord>> {
    let exact = oracle_join(&s.points, &s.regions, &s.query)?;
    let spec = CanvasSpec::Resolution(s.resolution);
    let epsilon = CanvasPlan::plan(&s.regions.bbox(), spec, MAX_TILE)?.epsilon;
    let bounded_budget = error_budget(&s.points, &s.regions, &s.query, epsilon, BOUNDED_BAND)?;
    let weighted_budget = error_budget(&s.points, &s.regions, &s.query, epsilon, WEIGHTED_BAND)?;

    let threads_axis = [1usize, 4];
    let binning_axis = [(BinningMode::Off, "off"), (BinningMode::Grid(GRID_SIDE), "grid")];
    let mut records = Vec::new();

    let mut paths: Vec<(&'static str, ExecutionMode, PointStrategy)> = vec![
        ("bounded", ExecutionMode::Bounded, PointStrategy::PointsFirst),
        ("weighted", ExecutionMode::Weighted, PointStrategy::PointsFirst),
        ("accurate", ExecutionMode::Accurate, PointStrategy::PointsFirst),
    ];
    if s.partition {
        paths.push(("id_buffer", ExecutionMode::Bounded, PointStrategy::IdBuffer));
    }

    // Bounded points-first tables keyed by (threads, binning) so the
    // id-buffer runs can assert bit-identity against them.
    let mut bounded_tables: Vec<(usize, &'static str, AggTable)> = Vec::new();

    for (mode_name, mode, strategy) in paths {
        // All (threads × binning) answers of one path must be bit-identical.
        let mut reference: Option<AggTable> = None;
        for threads in threads_axis {
            for (binning, bin_name) in binning_axis {
                let config = RasterJoinConfig {
                    spec,
                    max_tile: MAX_TILE,
                    mode,
                    path: PolygonPath::Scanline,
                    strategy,
                    threads,
                    binning,
                    ..RasterJoinConfig::default()
                };
                let result = RasterJoin::new(config).execute(&s.points, &s.regions, &s.query)?;
                let mut r = rec(s, mode_name, threads, bin_name, result.epsilon);
                if (result.epsilon - epsilon).abs() > 1e-12 {
                    r.failures.push(format!(
                        "{mode_name}/{}: plan ε {} != expected {epsilon}",
                        s.name, result.epsilon
                    ));
                }
                match mode_name {
                    "accurate" => check_accurate(&mut r, &result.table, &exact),
                    "weighted" => check_budgeted(&mut r, &result.table, &exact, &weighted_budget),
                    _ => check_budgeted(&mut r, &result.table, &exact, &bounded_budget),
                }
                match &reference {
                    None => reference = Some(result.table.clone()),
                    Some(first) => {
                        if *first != result.table {
                            r.failures.push(format!(
                                "{mode_name}/{}: threads={threads} binning={bin_name} answer \
                                 differs bit-wise from the threads=1/off answer",
                                s.name
                            ));
                        }
                    }
                }
                if mode_name == "id_buffer" {
                    if let Some((_, _, b)) = bounded_tables
                        .iter()
                        .find(|(t, bn, _)| *t == threads && *bn == bin_name)
                    {
                        if let Some(why) = same_point_assignment(b, &result.table) {
                            r.failures.push(format!(
                                "id_buffer/{}: threads={threads} binning={bin_name} assigns \
                                 different points than bounded points-first on a partition \
                                 layout: {why}",
                                s.name
                            ));
                        }
                    }
                } else if mode_name == "bounded" {
                    bounded_tables.push((threads, bin_name, result.table.clone()));
                }
                records.push(r);
            }
        }
    }

    // Index join over a `.ubs` serialization of the scenario: Hilbert
    // reordering, chunk-streamed reads and footer pruning must all be
    // answer-invisible, so the result is held to the strictest bar in the
    // matrix — *bit-for-bit* equality with the exact oracle (ε = 0), at
    // every thread count.
    let store_bytes = urbane_store::StoreBuilder::new()
        .chunk_rows(1024)
        .encode(&s.points)
        .map_err(|e| crate::VerifyError::Data(e.to_string()))?;
    let region_index = spatial_index::PackedRegionIndex::build(&s.regions);
    for threads in threads_axis {
        let open = || urbane_store::ChunkedPointSource::from_bytes(store_bytes.clone());
        let (table, _stats) = spatial_index::index_join_stored_parallel(
            open,
            &s.regions,
            &region_index,
            &s.query,
            &raster_join::QueryBudget::unlimited(),
            threads,
        )?;
        let mut r = rec(s, "index_join", threads, "off", 0.0);
        if table != exact {
            // Pin down the first divergent region for the report.
            let why = table
                .states
                .iter()
                .zip(&exact.states)
                .enumerate()
                .find(|(_, (a, e))| a != e)
                .map(|(i, (a, e))| format!("region {i}: {a:?} vs exact {e:?}"))
                .unwrap_or_else(|| "table-level mismatch".to_string());
            r.failures.push(format!(
                "index_join/{}: threads={threads} not bit-identical to the exact oracle: {why}",
                s.name
            ));
        }
        records.push(r);
    }

    // Prepared plans: polygon side rasterized once, replayed per store.
    let bins = BinnedPointTable::with_grid(&s.points, GRID_SIDE, GRID_SIDE);
    for (mode_name, mode) in [
        ("prepared", ExecutionMode::Bounded),
        ("prepared_accurate", ExecutionMode::Accurate),
    ] {
        let prepared = PreparedRasterJoin::prepare(&s.regions, spec, MAX_TILE, mode)?;
        let mut reference: Option<AggTable> = None;
        for (store, bin_name) in [
            (PointStore::plain(&s.points), "off"),
            (PointStore::with_bins(&s.points, &bins), "grid"),
        ] {
            let result =
                prepared.execute_store(store, &s.query, &raster_join::QueryBudget::unlimited())?;
            let mut r = rec(s, mode_name, 1, bin_name, result.epsilon);
            if mode == ExecutionMode::Accurate {
                check_accurate(&mut r, &result.table, &exact);
            } else {
                check_budgeted(&mut r, &result.table, &exact, &bounded_budget);
            }
            match &reference {
                None => reference = Some(result.table.clone()),
                Some(first) => {
                    if *first != result.table {
                        r.failures.push(format!(
                            "{mode_name}/{}: binned prepared answer differs bit-wise from unbinned",
                            s.name
                        ));
                    }
                }
            }
            records.push(r);
        }
    }

    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;

    /// A miniature end-to-end certification: every run of a small corpus
    /// passes, and the matrix axes all appear.
    #[test]
    fn small_corpus_certifies() {
        let mut partition_seen = false;
        for s in corpus(4, 7_000) {
            partition_seen |= s.partition;
            let records = verify_scenario(&s).expect("executors must not fail");
            assert!(records.len() >= 14, "{}: matrix too small ({})", s.name, records.len());
            for r in &records {
                assert!(r.passed(), "{} {}/{}/{}: {:?}", r.scenario, r.mode, r.threads, r.binning, r.failures);
            }
            assert!(records.iter().any(|r| r.mode == "accurate" && r.binning == "grid"));
            assert!(records.iter().any(|r| r.mode == "prepared"));
            assert!(records.iter().any(|r| r.mode == "index_join" && r.threads == 4));
        }
        assert!(partition_seen || corpus(4, 7_000).iter().all(|s| !s.partition));
    }

    /// The budget must be *live*: at coarse resolutions some bounded run in
    /// a small corpus should actually use part of its budget (nonzero error)
    /// — otherwise the harness is vacuous.
    #[test]
    fn bounded_error_is_observed_not_assumed() {
        let mut max_err = 0.0f64;
        for s in corpus(6, 7_100) {
            for r in verify_scenario(&s).expect("executors must not fail") {
                if r.mode == "bounded" {
                    max_err = max_err.max(r.max_abs_err);
                }
            }
        }
        assert!(
            max_err > 0.0,
            "six coarse-canvas scenarios with no bounded-mode error at all — oracle diff is dead"
        );
    }
}
