//! Metamorphic laws — correctness properties that need **no oracle**.
//!
//! Differential testing against an exact reference is only as trustworthy
//! as the reference; metamorphic relations close that loop. Each law
//! transforms a workload in a way whose effect on the answer is known *a
//! priori*, runs the production executors on both sides, and compares:
//!
//! 1. **Translation invariance** — shifting points and regions by the same
//!    vector changes nothing (the canvas follows the region bbox).
//! 2. **Scale invariance** — uniformly scaling the world changes nothing
//!    (ε scales with the world; the answer does not).
//! 3. **Point-permutation invariance** — the join is a set operation; row
//!    order must not matter. Counts must survive *bit-exactly* even in
//!    bounded mode (the f32 count channel adds 1.0s, exact below 2²⁴).
//! 4. **Region-split additivity** — slicing every region along a vertical
//!    line and joining against the halves must reproduce the whole's
//!    COUNT/SUM in accurate mode.
//! 5. **Filter-partition additivity** — half-open time ranges `[0,m)` and
//!    `[m,∞)` partition the rows, so per-region counts add exactly, in
//!    bounded *and* accurate mode (misassignment is per-point
//!    deterministic, hence identical on both sides of the partition).
//! 6. **Block-composition** — evaluating disjoint blocks of the region set
//!    through the production executor (with the set bbox preserved, so the
//!    canvas plan is identical) and composing the per-region states must
//!    reproduce the whole pass bit-for-bit, the composed certified bound
//!    (Σ per-block ε) must dominate the whole-pass ε, and each member
//!    region's certified error budget is identical whether computed on its
//!    block or on the whole set. This is the law the `urbane::blockcache`
//!    sub-result cache relies on.

use raster_join::{
    BinningMode, CanvasSpec, ExecutionMode, PointStrategy, PolygonPath, RasterJoin,
    RasterJoinConfig,
};
use urban_data::filter::Filter;
use urban_data::query::{AggKind, AggTable, SpatialAggQuery};
use urban_data::time::TimeRange;
use urban_data::{PointTable, RegionSet};
use urbane_geom::clip::clip_polygon_to_box;
use urbane_geom::{BoundingBox, MultiPolygon, Point, Polygon, Ring};

use crate::corpus::Scenario;
use crate::{Result, VerifyError};

/// Outcome of one law on one scenario.
#[derive(Debug, Clone)]
pub struct LawResult {
    /// Law identifier (`translation`, `scale`, `permutation`,
    /// `region_split`, `filter_partition`, `composition`).
    pub law: &'static str,
    /// Scenario label.
    pub scenario: String,
    /// `None` = pass; `Some(reason)` = violation.
    pub violation: Option<String>,
}

fn config(mode: ExecutionMode, resolution: u32) -> RasterJoinConfig {
    RasterJoinConfig {
        spec: CanvasSpec::Resolution(resolution),
        max_tile: crate::runner::MAX_TILE,
        mode,
        path: PolygonPath::Scanline,
        strategy: PointStrategy::PointsFirst,
        threads: 1,
        binning: BinningMode::Off,
        ..RasterJoinConfig::default()
    }
}

fn run(
    mode: ExecutionMode,
    resolution: u32,
    points: &PointTable,
    regions: &RegionSet,
    query: &SpatialAggQuery,
) -> Result<AggTable> {
    Ok(RasterJoin::new(config(mode, resolution)).execute(points, regions, query)?.table)
}

/// Rebuild a table with every location mapped through `f` (schema, times
/// and attributes preserved row-for-row).
pub fn map_points(t: &PointTable, f: impl Fn(Point) -> Point) -> Result<PointTable> {
    let mut out = PointTable::new(t.schema().clone());
    let cols = t.schema().len();
    let mut attrs = vec![0.0f32; cols];
    for i in 0..t.len() {
        for (c, a) in attrs.iter_mut().enumerate() {
            *a = t.attr(i, c);
        }
        out.push(f(t.loc(i)), t.time(i), &attrs)
            .map_err(|e| VerifyError::Data(e.to_string()))?;
    }
    Ok(out)
}

/// Rebuild a region set with every vertex mapped through `f`. The map must
/// be orientation-preserving (translations, positive uniform scales).
pub fn map_regions(rs: &RegionSet, f: impl Fn(Point) -> Point) -> Result<RegionSet> {
    let mut regions = Vec::with_capacity(rs.len());
    for (_, name, geom) in rs.iter() {
        let mut polys = Vec::with_capacity(geom.polygons().len());
        for poly in geom.polygons() {
            let ext = Ring::new(poly.exterior().vertices().iter().map(|&p| f(p)).collect())?;
            let holes = poly
                .holes()
                .iter()
                .map(|h| Ring::new(h.vertices().iter().map(|&p| f(p)).collect()))
                .collect::<std::result::Result<Vec<_>, _>>()?;
            polys.push(Polygon::with_holes(ext, holes)?);
        }
        regions.push((name.to_string(), MultiPolygon::new(polys)));
    }
    Ok(RegionSet::new(rs.name(), regions))
}

/// Compare two answer tables as a law would: counts bit-exact, value
/// channels within the f32-accumulator tolerance.
fn tables_agree(a: &AggTable, b: &AggTable, what: &str) -> Option<String> {
    for (r, (sa, sb)) in a.states.iter().zip(&b.states).enumerate() {
        if sa.count != sb.count {
            return Some(format!(
                "{what}: region {r} count {} != {}",
                sa.count, sb.count
            ));
        }
        let (va, vb) = (sa.finish(&a.agg), sb.finish(&b.agg));
        match (va, vb) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                let tol = match a.agg {
                    AggKind::Count => 0.0,
                    _ => 1e-3 + 1e-5 * y.abs(),
                };
                if (x - y).abs() > tol {
                    return Some(format!("{what}: region {r} value {x} vs {y} (tol {tol:.1e})"));
                }
            }
            (x, y) => return Some(format!("{what}: region {r} emptiness {x:?} vs {y:?}")),
        }
    }
    None
}

/// Law 1: translation invariance (accurate mode is exact on both sides).
pub fn law_translation(s: &Scenario) -> Result<Option<String>> {
    let d = Point::new(137.25, -41.5);
    let moved_points = map_points(&s.points, |p| p + d)?;
    let moved_regions = map_regions(&s.regions, |p| p + d)?;
    let base = run(ExecutionMode::Accurate, s.resolution, &s.points, &s.regions, &s.query)?;
    let moved =
        run(ExecutionMode::Accurate, s.resolution, &moved_points, &moved_regions, &s.query)?;
    Ok(tables_agree(&moved, &base, "translation"))
}

/// Law 2: uniform scale invariance about the origin.
pub fn law_scale(s: &Scenario) -> Result<Option<String>> {
    let k = 3.5;
    let scaled_points = map_points(&s.points, |p| Point::new(p.x * k, p.y * k))?;
    let scaled_regions = map_regions(&s.regions, |p| Point::new(p.x * k, p.y * k))?;
    let base = run(ExecutionMode::Accurate, s.resolution, &s.points, &s.regions, &s.query)?;
    let scaled =
        run(ExecutionMode::Accurate, s.resolution, &scaled_points, &scaled_regions, &s.query)?;
    Ok(tables_agree(&scaled, &base, "scale"))
}

/// Law 3: point-permutation invariance — reversing row order must not
/// change the answer, in bounded *or* accurate mode.
pub fn law_permutation(s: &Scenario) -> Result<Option<String>> {
    let mut reversed = PointTable::new(s.points.schema().clone());
    let cols = s.points.schema().len();
    let mut attrs = vec![0.0f32; cols];
    for i in (0..s.points.len()).rev() {
        for (c, a) in attrs.iter_mut().enumerate() {
            *a = s.points.attr(i, c);
        }
        reversed
            .push(s.points.loc(i), s.points.time(i), &attrs)
            .map_err(|e| VerifyError::Data(e.to_string()))?;
    }
    for mode in [ExecutionMode::Bounded, ExecutionMode::Accurate] {
        let base = run(mode, s.resolution, &s.points, &s.regions, &s.query)?;
        let perm = run(mode, s.resolution, &reversed, &s.regions, &s.query)?;
        if let Some(v) = tables_agree(&perm, &base, "permutation") {
            return Ok(Some(format!("{mode:?}: {v}")));
        }
    }
    Ok(None)
}

/// Law 4: region-split additivity — slice every region at its bbox
/// mid-line; COUNT/SUM over the two halves must reproduce the whole
/// (accurate mode; points exactly on the cut are measure-zero for the
/// seeded corpus).
pub fn law_region_split(s: &Scenario) -> Result<Option<String>> {
    let world = s.regions.bbox().inflate(1.0);
    let mut halves = Vec::with_capacity(s.regions.len() * 2);
    for (_, name, geom) in s.regions.iter() {
        let mid = geom.bbox().center().x;
        let left_box = BoundingBox::from_coords(world.min.x, world.min.y, mid, world.max.y);
        let right_box = BoundingBox::from_coords(mid, world.min.y, world.max.x, world.max.y);
        for (suffix, bbox) in [("L", left_box), ("R", right_box)] {
            let mut polys = Vec::new();
            for poly in geom.polygons() {
                if let Some(part) = clip_polygon_to_box(poly, &bbox)? {
                    polys.push(part);
                }
            }
            halves.push((format!("{name}/{suffix}"), MultiPolygon::new(polys)));
        }
    }
    // An empty half (region entirely on one side) still occupies a slot so
    // ids line up: whole region r ↔ halves 2r and 2r+1. Drop empties by
    // replacing them with a far-away sliver? No — MultiPolygon::new(vec![])
    // has an empty bbox and joins nothing, which is exactly additivity.
    let split_set = RegionSet::new("split", halves);

    // SUM exercises the value channel; COUNT the exact one. Run the
    // scenario's own filters so the law composes with ad-hoc predicates.
    for agg in [AggKind::Count, AggKind::Sum("v".into())] {
        let mut q = SpatialAggQuery::new(agg.clone());
        q.filters = s.query.filters.clone();
        let whole = run(ExecutionMode::Accurate, s.resolution, &s.points, &s.regions, &q)?;
        let parts = run(ExecutionMode::Accurate, s.resolution, &s.points, &split_set, &q)?;
        for r in 0..s.regions.len() {
            let w = whole.states.get(r).map(|st| (st.count, st.sum)).unwrap_or((0, 0.0));
            let l = parts.states.get(2 * r).map(|st| (st.count, st.sum)).unwrap_or((0, 0.0));
            let rr =
                parts.states.get(2 * r + 1).map(|st| (st.count, st.sum)).unwrap_or((0, 0.0));
            if l.0 + rr.0 != w.0 {
                return Ok(Some(format!(
                    "region_split({agg:?}): region {r} counts {} + {} != {}",
                    l.0, rr.0, w.0
                )));
            }
            let sum_halves = l.1 + rr.1;
            let tol = 1e-3 + 1e-5 * w.1.abs();
            if (sum_halves - w.1).abs() > tol {
                return Ok(Some(format!(
                    "region_split({agg:?}): region {r} sums {sum_halves} != {} (tol {tol:.1e})",
                    w.1
                )));
            }
        }
    }
    Ok(None)
}

/// Law 5: filter-partition additivity — disjoint half-open time windows
/// partition the rows, so counts add exactly per region, even in bounded
/// mode (each point's pixel assignment is deterministic and identical on
/// both sides of the partition).
pub fn law_filter_partition(s: &Scenario) -> Result<Option<String>> {
    let horizon = s.points.len() as i64 + 1;
    let mid = horizon / 2;
    // Corpus timestamps are row indices, so [0, horizon) covers every row.
    let windows =
        [TimeRange::new(0, mid), TimeRange::new(mid, horizon), TimeRange::new(0, horizon)];
    for mode in [ExecutionMode::Bounded, ExecutionMode::Accurate] {
        let mut results = Vec::with_capacity(3);
        for w in windows {
            let mut q = SpatialAggQuery::new(AggKind::Count);
            q.filters = s.query.filters.clone();
            let q = q.filter(Filter::Time(w));
            results.push(run(mode, s.resolution, &s.points, &s.regions, &q)?);
        }
        if let [early, late, whole] = results.as_slice() {
            for r in 0..s.regions.len() {
                let (a, b, w) = (
                    early.states.get(r).map_or(0, |st| st.count),
                    late.states.get(r).map_or(0, |st| st.count),
                    whole.states.get(r).map_or(0, |st| st.count),
                );
                if a + b != w {
                    return Ok(Some(format!(
                        "filter_partition({mode:?}): region {r} counts {a} + {b} != {w}"
                    )));
                }
            }
        }
    }
    Ok(None)
}

/// Law 6: block-composition — the invariant behind the `urbane::blockcache`
/// additive sub-result cache. Partition the region ids into consecutive
/// blocks, evaluate each block alone (other regions masked to empty
/// geometry, set bbox preserved so the canvas plan is identical), and
/// compose the per-region states. The composition must be *bit-identical*
/// to the whole pass in bounded and accurate mode, the composed certified
/// bound (Σ per-block ε) must dominate the whole-pass ε, and each member
/// region's certified error budget must be identical whether computed on
/// its block or on the whole set (ε-budget additivity: band populations
/// are per-region, so partitioning the set cannot change them).
pub fn law_composition(s: &Scenario) -> Result<Option<String>> {
    // Small blocks so even the corpus's smallest region sets compose from
    // several cached pieces (the block cache itself groups ids by 8).
    const BLOCK: usize = 3;
    let ids: Vec<u32> = (0..s.regions.len() as u32).collect();
    let blocks: Vec<&[u32]> = ids.chunks(BLOCK).collect();
    if blocks.len() < 2 {
        return Ok(None); // one block composes trivially
    }

    let mut bounded_epsilon = 0.0;
    for mode in [ExecutionMode::Bounded, ExecutionMode::Accurate] {
        let join = RasterJoin::new(config(mode, s.resolution));
        let whole = join.execute(&s.points, &s.regions, &s.query)?;
        if mode == ExecutionMode::Bounded {
            bounded_epsilon = whole.epsilon;
        }
        let mut composed_bound = 0.0;
        let mut composed = whole.table.clone();
        for st in &mut composed.states {
            *st = Default::default();
        }
        for members in &blocks {
            let masked = s.regions.masked(members);
            let part = join.execute(&s.points, &masked, &s.query)?;
            if (part.canvas_width, part.canvas_height)
                != (whole.canvas_width, whole.canvas_height)
            {
                return Ok(Some(format!(
                    "composition({mode:?}): masked pass changed the canvas \
                     {}x{} -> {}x{}",
                    whole.canvas_width, whole.canvas_height, part.canvas_width,
                    part.canvas_height
                )));
            }
            composed_bound += part.epsilon;
            for &r in *members {
                composed.states[r as usize] = part.table.states[r as usize];
            }
        }
        for (r, (c, w)) in composed.states.iter().zip(&whole.table.states).enumerate() {
            if c != w {
                return Ok(Some(format!(
                    "composition({mode:?}): region {r} composed state {c:?} != whole {w:?}"
                )));
            }
        }
        if composed_bound < whole.epsilon {
            return Ok(Some(format!(
                "composition({mode:?}): composed bound {composed_bound} below \
                 whole-pass ε {}",
                whole.epsilon
            )));
        }
    }

    // ε-budget additivity at the bounded run's ε.
    let whole_budget =
        crate::budget::error_budget(&s.points, &s.regions, &s.query, bounded_epsilon, crate::budget::BOUNDED_BAND)?;
    for members in &blocks {
        let masked = s.regions.masked(members);
        let part_budget =
            crate::budget::error_budget(&s.points, &masked, &s.query, bounded_epsilon, crate::budget::BOUNDED_BAND)?;
        for &r in *members {
            let (w, p) = (whole_budget.regions[r as usize], part_budget.regions[r as usize]);
            if w != p {
                return Ok(Some(format!(
                    "composition: region {r} budget {p:?} on its block != {w:?} on the whole set"
                )));
            }
        }
    }
    Ok(None)
}

/// A metamorphic law: returns `None` when it holds, a violation otherwise.
type Law = fn(&Scenario) -> Result<Option<String>>;

/// Run every law against one scenario.
pub fn run_laws(s: &Scenario) -> Result<Vec<LawResult>> {
    let laws: [(&'static str, Law); 6] = [
        ("translation", law_translation),
        ("scale", law_scale),
        ("permutation", law_permutation),
        ("region_split", law_region_split),
        ("filter_partition", law_filter_partition),
        ("composition", law_composition),
    ];
    laws.into_iter()
        .map(|(name, law)| {
            Ok(LawResult { law: name, scenario: s.name.clone(), violation: law(s)? })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::corpus;

    #[test]
    fn all_laws_hold_on_a_small_corpus() {
        for s in corpus(4, 9_000) {
            for law in run_laws(&s).expect("laws must execute") {
                assert!(
                    law.violation.is_none(),
                    "{} violated on {}: {}",
                    law.law,
                    law.scenario,
                    law.violation.unwrap_or_default()
                );
            }
        }
    }

    #[test]
    fn composition_law_is_not_vacuous() {
        // The law early-outs when the set fits one block; the corpus must
        // include multi-block scenarios or it certifies nothing.
        let mut multi = 0;
        for s in corpus(4, 9_000) {
            if s.regions.len() > 3 {
                multi += 1;
            }
            assert!(law_composition(&s).expect("law must execute").is_none());
        }
        assert!(multi > 0, "corpus has no scenario spanning ≥2 blocks");
    }

    #[test]
    fn mapping_helpers_roundtrip() {
        let s = crate::corpus::scenario(123);
        let moved = map_points(&s.points, |p| p + Point::new(5.0, 5.0)).unwrap();
        let back = map_points(&moved, |p| p + Point::new(-5.0, -5.0)).unwrap();
        assert_eq!(s.points.len(), back.len());
        for i in 0..s.points.len() {
            // f64 translate-and-back is not bit-exact; ~1e-12 roundoff is.
            assert!(s.points.loc(i).distance(back.loc(i)) < 1e-9);
            assert_eq!(s.points.time(i), back.time(i));
            assert_eq!(s.points.attr(i, 0), back.attr(i, 0));
        }
        let rs = map_regions(&s.regions, |p| p + Point::new(5.0, 5.0)).unwrap();
        assert_eq!(rs.len(), s.regions.len());
        let rs_back = map_regions(&rs, |p| p + Point::new(-5.0, -5.0)).unwrap();
        for (a, b) in s.regions.iter().zip(rs_back.iter()) {
            assert_eq!(a.1, b.1, "names preserved");
            assert!((a.2.area() - b.2.area()).abs() < 1e-9);
        }
    }
}
