//! Seeded randomized verification workloads.
//!
//! A workload ("scenario") is a full query instance: a point table, a
//! region set, and a [`SpatialAggQuery`] — all drawn deterministically from
//! one seed via the shared generators in `urban_data::gen`. The generator
//! mixes the axes that historically hide raster bugs:
//!
//! * region layout — axis-aligned grids (pixel-alignment edge cases),
//!   Voronoi partitions (irregular shared boundaries), and overlapping
//!   non-convex stars (multi-assignment);
//! * point distribution — uniform and hotspot-clustered;
//! * aggregate — COUNT/SUM mostly (the certifiable pair), with AVG/MIN/MAX
//!   sprinkled in;
//! * ad-hoc filters — none, attribute range, time range, or both;
//! * canvas resolution — coarse enough (48–128 px) that boundary bands are
//!   populated and the ε budget is actually exercised.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urban_data::filter::Filter;
use urban_data::gen::corpus::{clustered_points, uniform_points};
use urban_data::gen::regions::{grid_regions, star_regions, voronoi_neighborhoods};
use urban_data::query::{AggKind, SpatialAggQuery};
use urban_data::time::TimeRange;
use urban_data::{PointTable, RegionSet};
use urbane_geom::BoundingBox;

/// One verification workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable label (layout/agg/filter summary).
    pub name: String,
    /// The seed everything was drawn from.
    pub seed: u64,
    /// The point relation `P`.
    pub points: PointTable,
    /// The region relation `R`.
    pub regions: RegionSet,
    /// The query under test.
    pub query: SpatialAggQuery,
    /// True when the regions partition the plane (no overlaps) — the
    /// precondition for the id-buffer strategy.
    pub partition: bool,
    /// Canvas resolution the runner should use.
    pub resolution: u32,
}

/// Build the scenario for `seed`. Same seed ⇒ byte-identical workload.
pub fn scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed));
    let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);

    let (regions, partition, layout): (RegionSet, bool, &str) = match rng.gen_range(0..4u32) {
        0 => {
            let nx = rng.gen_range(2..6u32);
            let ny = rng.gen_range(2..5u32);
            (grid_regions(&extent, nx, ny), true, "grid")
        }
        1 | 2 => {
            let n = rng.gen_range(8..22usize);
            let lloyd = rng.gen_range(0..4u32);
            (voronoi_neighborhoods(&extent, n, seed ^ 0x5151, lloyd), true, "voronoi")
        }
        _ => {
            let n = rng.gen_range(4..9usize);
            // star_regions requires an even vertex count.
            let vertices = 8 + 2 * (seed as usize % 3);
            (star_regions(&extent, n, vertices, seed ^ 0xA7A7), false, "stars")
        }
    };

    let n_points = rng.gen_range(300..900usize);
    let value_max = 50.0f32;
    let (points, dist) = if rng.gen::<f64>() < 0.6 {
        (uniform_points(&extent, n_points, seed ^ 0x0F0F, value_max), "uniform")
    } else {
        let clusters = rng.gen_range(2..6usize);
        (clustered_points(&extent, n_points, clusters, seed ^ 0x0F0F, value_max), "clustered")
    };

    let agg = match rng.gen_range(0..10u32) {
        0..=3 => AggKind::Count,
        4..=6 => AggKind::Sum("v".into()),
        7 => AggKind::Avg("v".into()),
        8 => AggKind::Min("v".into()),
        _ => AggKind::Max("v".into()),
    };
    let agg_name = match &agg {
        AggKind::Count => "count",
        AggKind::Sum(_) => "sum",
        AggKind::Avg(_) => "avg",
        AggKind::Min(_) => "min",
        AggKind::Max(_) => "max",
    };

    let mut query = SpatialAggQuery::new(agg);
    let filter_name = match rng.gen_range(0..4u32) {
        0 => "nofilter",
        1 => {
            let lo = rng.gen::<f32>() * 20.0;
            let hi = lo + 10.0 + rng.gen::<f32>() * (value_max - lo - 10.0).max(1.0);
            query = query.filter(Filter::AttrRange { column: "v".into(), min: lo, max: hi });
            "attr"
        }
        2 => {
            let start = rng.gen_range(0..(n_points as i64 / 2));
            let end = start + rng.gen_range(1..(n_points as i64));
            query = query.filter(Filter::Time(TimeRange::new(start, end)));
            "time"
        }
        _ => {
            query = query
                .filter(Filter::AttrRange { column: "v".into(), min: 5.0, max: 45.0 })
                .filter(Filter::Time(TimeRange::new(0, (n_points as i64 * 3) / 4)));
            "attr+time"
        }
    };

    let resolution = *[48u32, 64, 96, 128]
        .get(rng.gen_range(0..4usize))
        .unwrap_or(&64);

    Scenario {
        name: format!("{layout}/{dist}/{agg_name}/{filter_name}/r{resolution}/seed{seed}"),
        seed,
        points,
        regions,
        query,
        partition,
        resolution,
    }
}

/// The first `count` scenarios starting at `base_seed` (seeds are
/// consecutive, so any prefix of a bigger corpus is the smaller corpus).
pub fn corpus(count: usize, base_seed: u64) -> Vec<Scenario> {
    (0..count as u64).map(|i| scenario(base_seed + i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let a = scenario(42);
        let b = scenario(42);
        assert_eq!(a.name, b.name);
        assert_eq!(a.points.len(), b.points.len());
        for i in 0..a.points.len() {
            assert_eq!(a.points.loc(i), b.points.loc(i));
        }
        assert_eq!(a.regions.len(), b.regions.len());
    }

    #[test]
    fn corpus_covers_every_axis() {
        let scenarios = corpus(40, 1000);
        let has = |needle: &str| scenarios.iter().any(|s| s.name.contains(needle));
        for needle in
            ["grid", "voronoi", "stars", "uniform", "clustered", "count", "sum", "nofilter"]
        {
            assert!(has(needle), "40 scenarios must include {needle:?}");
        }
        assert!(scenarios.iter().any(|s| s.partition));
        assert!(scenarios.iter().any(|s| !s.partition));
        // Prefix stability: a smaller corpus is a prefix of a larger one.
        let small = corpus(5, 1000);
        for (a, b) in small.iter().zip(&scenarios) {
            assert_eq!(a.name, b.name);
        }
    }
}
