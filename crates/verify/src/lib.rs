//! # urbane-verify — exact-oracle differential verification
//!
//! The paper's headline correctness claim is quantitative: the *bounded*
//! Raster Join variant returns aggregates whose per-point positional error
//! is at most ε (half a pixel diagonal), and the *accurate* hybrid variant
//! removes even that by resolving boundary pixels exactly. The rest of the
//! workspace only ever checked raster-vs-raster bit-identity (threads,
//! binning, prepared plans); nothing measured the bound itself. This crate
//! is that missing ground-truth layer:
//!
//! * [`oracle`] — an exact point-in-polygon aggregation built directly on
//!   the robust predicates in `urbane-geom`, sharing no canvas/tile/raster
//!   code with the executors it judges.
//! * [`budget`] — the analytic per-region error budget for the approximate
//!   modes: only points within a pixel-derived band around a region's
//!   boundary can be misassigned, so `|approx − exact|` is bounded by the
//!   band's point count (COUNT) / absolute value mass (SUM).
//! * [`corpus`] — seeded randomized workloads (points × regions × query)
//!   drawn from the shared generators in `urban_data::gen`.
//! * [`runner`] — executes every workload through bounded / weighted /
//!   accurate / id-buffer / prepared × threads {1,4} × binning {Off, Grid}
//!   and diffs each result against the oracle and its budget.
//! * [`metamorphic`] — oracle-free laws (translation/scale invariance,
//!   point-permutation invariance, region-split and filter-partition
//!   additivity) that catch bugs a biased oracle could share.
//! * [`report`] — aggregation into a human table and a machine-readable
//!   `VERIFY_report.json`.
//!
//! The `verify` binary (also reachable via `scripts/verify.sh` and the
//! ci.sh `verify` stage) runs the whole harness; `cargo test` runs a
//! smaller corpus through the same code paths.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod budget;
pub mod corpus;
pub mod metamorphic;
pub mod oracle;
pub mod report;
pub mod runner;

pub use budget::{ErrorBudget, RegionBudget, BOUNDED_BAND, WEIGHTED_BAND};
pub use corpus::{corpus, scenario, Scenario};
pub use oracle::{contains, oracle_join, polygon_side, ring_side, Side};
pub use report::VerifyReport;
pub use runner::{verify_scenario, RunRecord};

/// Errors from the verification harness.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// Data-layer failure (unknown column, schema mismatch…).
    Data(String),
    /// Geometry failure while building a workload.
    Geometry(String),
    /// An executor under test failed outright.
    Execution(String),
    /// Report serialization / IO failure.
    Report(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Data(m) => write!(f, "data error: {m}"),
            VerifyError::Geometry(m) => write!(f, "geometry error: {m}"),
            VerifyError::Execution(m) => write!(f, "execution error: {m}"),
            VerifyError::Report(m) => write!(f, "report error: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<urbane_geom::GeomError> for VerifyError {
    fn from(e: urbane_geom::GeomError) -> Self {
        VerifyError::Geometry(e.to_string())
    }
}

impl From<raster_join::RasterJoinError> for VerifyError {
    fn from(e: raster_join::RasterJoinError) -> Self {
        VerifyError::Execution(e.to_string())
    }
}

/// Convenience alias for harness results.
pub type Result<T> = std::result::Result<T, VerifyError>;
