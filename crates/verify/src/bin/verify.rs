//! `verify` — run the full differential + metamorphic harness and write
//! `VERIFY_report.json`.
//!
//! ```text
//! verify [--workloads N] [--seed S] [--laws N] [--out PATH] [--full] [--quiet]
//! ```
//!
//! Defaults run the fast CI corpus (15 differential workloads ≈ 250+
//! certified runs, laws on 6 workloads) in a few seconds. `--full` — or
//! `VERIFY_FULL=1` in the environment, which is how ci.sh requests the
//! nightly sweep — quadruples the corpus. Exit status is 0 iff every run
//! and every law passed; the report is written either way.

use std::process::ExitCode;

use urbane_verify::metamorphic::run_laws;
use urbane_verify::report::VerifyReport;
use urbane_verify::{corpus, verify_scenario};

/// Seed such that corpora here and in `tests/verify_certification.rs`
/// don't overlap (prefix-stable seeds are consecutive from the base).
const BASE_SEED: u64 = 20_260_805;

struct Args {
    workloads: usize,
    law_workloads: usize,
    seed: u64,
    out: String,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let full_env = std::env::var("VERIFY_FULL").map(|v| v == "1").unwrap_or(false);
    let mut args = Args {
        workloads: 15,
        law_workloads: 6,
        seed: BASE_SEED,
        out: "VERIFY_report.json".to_string(),
        quiet: false,
    };
    let mut full = full_env;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv.get(i).map(String::as_str) {
            Some("--workloads") => {
                args.workloads =
                    take(&mut i, "--workloads")?.parse().map_err(|e| format!("--workloads: {e}"))?;
            }
            Some("--laws") => {
                args.law_workloads =
                    take(&mut i, "--laws")?.parse().map_err(|e| format!("--laws: {e}"))?;
            }
            Some("--seed") => {
                args.seed = take(&mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            Some("--out") => args.out = take(&mut i, "--out")?,
            Some("--full") => full = true,
            Some("--quiet") => args.quiet = true,
            Some(other) => return Err(format!("unknown argument {other:?}")),
            None => break,
        }
        i += 1;
    }
    if full {
        args.workloads *= 4;
        args.law_workloads *= 2;
    }
    Ok(args)
}

fn run(args: &Args) -> Result<VerifyReport, String> {
    let mut report = VerifyReport::new();

    for s in corpus(args.workloads, args.seed) {
        let records =
            verify_scenario(&s).map_err(|e| format!("differential run {}: {e}", s.name))?;
        if !args.quiet {
            let failed = records.iter().filter(|r| !r.passed()).count();
            let tag = if failed == 0 { "ok" } else { "FAIL" };
            eprintln!("verify: {:<44} {:>3} runs {tag}", s.name, records.len());
        }
        report.add_runs(&records);
    }

    for s in corpus(args.law_workloads, args.seed ^ 0x4C41_5753) {
        let laws = run_laws(&s).map_err(|e| format!("laws on {}: {e}", s.name))?;
        report.add_laws(&laws);
    }

    Ok(report)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("verify: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match run(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: {e}");
            return ExitCode::from(2);
        }
    };

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("verify: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }

    print!("{}", report.render());
    println!("report: {}", args.out);
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
