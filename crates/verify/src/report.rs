//! Aggregation of run records and law results into a certification report.
//!
//! Two renderings of the same data:
//!
//! * [`VerifyReport::render`] — a human-readable summary table for the
//!   terminal / CI log;
//! * [`VerifyReport::to_json`] — the machine-readable `VERIFY_report.json`
//!   (built on the workspace's own [`Json`] tree, whose `BTreeMap` object
//!   representation makes key order — and therefore the bytes — fully
//!   deterministic for a given corpus).

use std::collections::BTreeMap;

use urbane_geom::geojson::Json;

use crate::metamorphic::LawResult;
use crate::runner::RunRecord;

/// Per-execution-mode rollup across every scenario in the corpus.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModeSummary {
    /// Total runs of this mode (across scenarios × threads × binning).
    pub runs: usize,
    /// Runs that asserted a bound (budget or exactness) rather than only
    /// observing the error (MIN/MAX under approximate modes observe only).
    pub certified_runs: usize,
    /// Max over runs of the max per-region `|approx − exact|`.
    pub max_abs_err: f64,
    /// Max over runs of error/budget utilisation (certified runs only).
    pub max_budget_util: f64,
    /// Failed runs of this mode.
    pub failures: usize,
}

/// The full harness outcome.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Distinct scenarios executed through the differential runner.
    pub scenarios: usize,
    /// Total differential runs recorded.
    pub runs: usize,
    /// Per-mode rollups, keyed by the run's mode label.
    pub modes: BTreeMap<String, ModeSummary>,
    /// Metamorphic law executions.
    pub law_runs: usize,
    /// Distinct law names exercised (the acceptance floor counts these).
    pub law_names: std::collections::BTreeSet<&'static str>,
    /// Human-readable law violations (empty = all laws held).
    pub law_failures: Vec<String>,
    /// Human-readable differential failures (empty = all runs passed).
    pub failures: Vec<String>,
}

impl VerifyReport {
    /// Empty report, ready to absorb records.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one scenario's run records in.
    pub fn add_runs(&mut self, records: &[RunRecord]) {
        self.scenarios += 1;
        for r in records {
            self.runs += 1;
            let m = self.modes.entry(r.mode.to_string()).or_default();
            m.runs += 1;
            m.max_abs_err = m.max_abs_err.max(r.max_abs_err);
            if r.certified {
                m.certified_runs += 1;
                m.max_budget_util = m.max_budget_util.max(r.max_budget_util);
            }
            if !r.passed() {
                m.failures += 1;
                for f in &r.failures {
                    self.failures.push(format!(
                        "{} [{} t{} {}]: {}",
                        r.scenario, r.mode, r.threads, r.binning, f
                    ));
                }
            }
        }
    }

    /// Fold one scenario's law results in.
    pub fn add_laws(&mut self, laws: &[LawResult]) {
        for l in laws {
            self.law_runs += 1;
            self.law_names.insert(l.law);
            if let Some(v) = &l.violation {
                self.law_failures.push(format!("{} [{}]: {}", l.scenario, l.law, v));
            }
        }
    }

    /// Total certified runs across modes.
    pub fn certified_runs(&self) -> usize {
        self.modes.values().map(|m| m.certified_runs).sum()
    }

    /// Did every differential run and every law pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.law_failures.is_empty()
    }

    /// The `VERIFY_report.json` document (deterministic byte-for-byte for a
    /// given corpus: objects are `BTreeMap`-ordered).
    pub fn to_json(&self) -> String {
        let mode_obj = |m: &ModeSummary| {
            let mut o = BTreeMap::new();
            o.insert("runs".to_string(), Json::Number(m.runs as f64));
            o.insert("certified_runs".to_string(), Json::Number(m.certified_runs as f64));
            o.insert("max_abs_err".to_string(), Json::Number(m.max_abs_err));
            o.insert("max_budget_util".to_string(), Json::Number(m.max_budget_util));
            o.insert("failures".to_string(), Json::Number(m.failures as f64));
            Json::Object(o)
        };
        let strings = |xs: &[String]| Json::Array(xs.iter().cloned().map(Json::String).collect());

        let mut laws = BTreeMap::new();
        laws.insert("runs".to_string(), Json::Number(self.law_runs as f64));
        laws.insert(
            "names".to_string(),
            Json::Array(
                self.law_names.iter().map(|n| Json::String(n.to_string())).collect(),
            ),
        );
        laws.insert("failures".to_string(), strings(&self.law_failures));

        let mut root = BTreeMap::new();
        root.insert("schema".to_string(), Json::String("urbane-verify/1".to_string()));
        root.insert("scenarios".to_string(), Json::Number(self.scenarios as f64));
        root.insert("runs".to_string(), Json::Number(self.runs as f64));
        root.insert("certified_runs".to_string(), Json::Number(self.certified_runs() as f64));
        root.insert("passed".to_string(), Json::Bool(self.passed()));
        root.insert(
            "modes".to_string(),
            Json::Object(
                self.modes.iter().map(|(k, m)| (k.clone(), mode_obj(m))).collect(),
            ),
        );
        root.insert("laws".to_string(), Json::Object(laws));
        root.insert("failures".to_string(), strings(&self.failures));
        Json::Object(root).to_string()
    }

    /// Terminal summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "urbane-verify: {} scenarios, {} runs ({} certified), {} law checks\n",
            self.scenarios,
            self.runs,
            self.certified_runs(),
            self.law_runs
        ));
        out.push_str(&format!(
            "{:<18} {:>5} {:>10} {:>13} {:>15} {:>9}\n",
            "mode", "runs", "certified", "max_abs_err", "max_budget_util", "failures"
        ));
        for (mode, m) in &self.modes {
            out.push_str(&format!(
                "{:<18} {:>5} {:>10} {:>13.6} {:>15.4} {:>9}\n",
                mode, m.runs, m.certified_runs, m.max_abs_err, m.max_budget_util, m.failures
            ));
        }
        for f in self.failures.iter().chain(&self.law_failures) {
            out.push_str(&format!("FAIL {f}\n"));
        }
        out.push_str(if self.passed() { "VERIFY: PASS\n" } else { "VERIFY: FAIL\n" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mode: &'static str, err: f64, fail: bool) -> RunRecord {
        RunRecord {
            scenario: "s".to_string(),
            mode,
            threads: 1,
            binning: "off",
            epsilon: 0.5,
            max_abs_err: err,
            max_budget_util: err / 10.0,
            certified: true,
            failures: if fail { vec!["boom".to_string()] } else { Vec::new() },
        }
    }

    #[test]
    fn report_rolls_up_modes_and_failures() {
        let mut rep = VerifyReport::new();
        rep.add_runs(&[run("bounded", 1.0, false), run("bounded", 3.0, false)]);
        rep.add_runs(&[run("accurate", 0.0, true)]);
        assert_eq!(rep.scenarios, 2);
        assert_eq!(rep.runs, 3);
        assert_eq!(rep.modes["bounded"].max_abs_err, 3.0);
        assert_eq!(rep.modes["accurate"].failures, 1);
        assert!(!rep.passed());
        let json = rep.to_json();
        assert!(json.contains("\"schema\":\"urbane-verify/1\""));
        assert!(json.contains("\"passed\":false"));
        let human = rep.render();
        assert!(human.contains("VERIFY: FAIL"));
        assert!(human.contains("boom"));
    }

    #[test]
    fn json_is_deterministic() {
        let mut a = VerifyReport::new();
        let mut b = VerifyReport::new();
        for rep in [&mut a, &mut b] {
            rep.add_runs(&[run("weighted", 2.0, false)]);
            rep.add_laws(&[LawResult {
                law: "translation",
                scenario: "s".to_string(),
                violation: None,
            }]);
        }
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.passed());
    }
}
