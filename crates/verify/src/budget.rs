//! The analytic ε error budget for the approximate Raster Join variants.
//!
//! Derivation. The canvas plan guarantees ε = ½·√2·pixel (half a pixel
//! diagonal): snapping a point to its pixel center moves it by at most ε,
//! so the *only* points an approximate variant can misassign are those
//! within a pixel-derived band around a region's boundary:
//!
//! * **bounded / id-buffer** — a point and its pixel center are on
//!   different sides of the boundary only when the point is within ε of it.
//!   Band half-width: [`BOUNDED_BAND`]·ε (the slack above 1.0 absorbs the
//!   rasterizer's pixel-center sampling rules at edges and vertices).
//! * **weighted** — boundary *pixels* are folded fractionally, and every
//!   point of a boundary pixel (anywhere in it, up to a full pixel diagonal
//!   = 2ε from the boundary) contributes partially. Band half-width:
//!   [`WEIGHTED_BAND`]·ε.
//!
//! Per region the certified bounds follow directly:
//!
//! * `|COUNT_approx − COUNT_exact| ≤ #{filtered points within w of ∂R}`
//! * `|SUM_approx − SUM_exact| ≤ Σ |v| over those same points`
//! * AVG: with `ΔS = S_a − S_e`, `ΔC = C_a − C_e`,
//!   `|AVG_a − AVG_e| = |ΔS − AVG_e·ΔC| / C_a ≤ (sumB + |AVG_e|·cntB)/C_a`.
//!
//! The band is computed against the *exact* geometry with robust segment
//! distances — it shares no code with the rasterizer. The classical
//! "pixel size × boundary length" form of the budget (band area × point
//! density) is recorded alongside as the *expected* band population; the
//! asserted budget uses the actual band population, which is the same
//! quantity without the uniform-density assumption.

use urban_data::query::SpatialAggQuery;
use urban_data::{PointTable, RegionSet};
use urbane_geom::{MultiPolygon, Point};

use crate::{Result, VerifyError};

/// Band half-width multiplier (×ε) for bounded and id-buffer runs.
pub const BOUNDED_BAND: f64 = 1.5;

/// Band half-width multiplier (×ε) for weighted runs.
pub const WEIGHTED_BAND: f64 = 2.5;

/// Exact distance from `p` to the boundary (all rings) of a multipolygon.
pub fn boundary_distance(geom: &MultiPolygon, p: Point) -> f64 {
    let mut d = f64::INFINITY;
    for poly in geom.polygons() {
        for ring in poly.rings() {
            for e in ring.edges() {
                d = d.min(e.distance_to_point(p));
            }
        }
    }
    d
}

/// The certified error budget for one region.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RegionBudget {
    /// Filtered points within the band around this region's boundary.
    pub band_points: u64,
    /// Σ |v| over those points (0 for COUNT queries, which read no column).
    pub band_abs_sum: f64,
}

impl RegionBudget {
    /// Bound on `|COUNT_approx − COUNT_exact|`.
    pub fn count_budget(&self) -> f64 {
        self.band_points as f64
    }

    /// Bound on `|SUM_approx − SUM_exact|`.
    pub fn sum_budget(&self) -> f64 {
        self.band_abs_sum
    }
}

/// Per-workload error budget: one [`RegionBudget`] per region plus the
/// analytic expectation for diagnostics.
#[derive(Debug, Clone)]
pub struct ErrorBudget {
    /// The run's ε (half pixel diagonal, world units).
    pub epsilon: f64,
    /// Band half-width in world units (multiplier × ε).
    pub band_width: f64,
    /// Certified per-region budgets (index = region id).
    pub regions: Vec<RegionBudget>,
    /// The textbook `density × Σ boundary length × 2w` expectation of the
    /// band population — recorded for the report, not asserted (it assumes
    /// uniform point density, which hotspot workloads violate by design).
    pub expected_band_points: f64,
}

impl ErrorBudget {
    /// Largest certified COUNT budget across regions (diagnostic).
    pub fn max_count_budget(&self) -> f64 {
        self.regions.iter().map(RegionBudget::count_budget).fold(0.0, f64::max)
    }
}

/// Compute the budget for one workload at band half-width
/// `band_mult × epsilon`. Only points passing the query's filters count —
/// filtered-out points cannot be misassigned because they are never drawn.
pub fn error_budget(
    points: &PointTable,
    regions: &RegionSet,
    query: &SpatialAggQuery,
    epsilon: f64,
    band_mult: f64,
) -> Result<ErrorBudget> {
    let w = band_mult * epsilon;
    let agg = query.agg_kind();
    let col = agg.resolve(points).map_err(|e| VerifyError::Data(e.to_string()))?;
    let filter =
        query.filters.compile(points).map_err(|e| VerifyError::Data(e.to_string()))?;

    // Inflated bboxes prune the O(|P|·|R|) distance scan.
    let boxes: Vec<_> = regions.iter().map(|(_, _, g)| g.bbox().inflate(w)).collect();
    let mut budgets = vec![RegionBudget::default(); regions.len()];
    let mut filtered = 0u64;

    for i in 0..points.len() {
        if !filter.matches(i) {
            continue;
        }
        filtered += 1;
        let p = points.loc(i);
        let v = col.map_or(0.0, |c| points.attr(i, c) as f64).abs();
        for ((id, _, geom), bbox) in regions.iter().zip(&boxes) {
            if bbox.contains(p) && boundary_distance(geom, p) <= w {
                if let Some(b) = budgets.get_mut(id as usize) {
                    b.band_points += 1;
                    b.band_abs_sum += v;
                }
            }
        }
    }

    // density × total boundary length × band breadth (2w), clamped to the
    // filtered population.
    let extent = regions.bbox();
    let area = extent.area().max(f64::MIN_POSITIVE);
    let boundary_len: f64 = regions.iter().map(|(_, _, g)| g.perimeter()).sum();
    let expected = (filtered as f64 / area * boundary_len * 2.0 * w).min(filtered as f64);

    Ok(ErrorBudget {
        epsilon,
        band_width: w,
        regions: budgets,
        expected_band_points: expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use urban_data::gen::corpus::uniform_points;
    use urban_data::gen::regions::grid_regions;
    use urbane_geom::{BoundingBox, Polygon};

    #[test]
    fn boundary_distance_exact_on_square() {
        let sq = MultiPolygon::from_polygon(
            Polygon::from_coords(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]).unwrap(),
        );
        assert_eq!(boundary_distance(&sq, Point::new(5.0, 5.0)), 5.0);
        assert_eq!(boundary_distance(&sq, Point::new(5.0, 9.0)), 1.0);
        assert_eq!(boundary_distance(&sq, Point::new(12.0, 5.0)), 2.0);
        assert_eq!(boundary_distance(&sq, Point::new(10.0, 5.0)), 0.0);
    }

    #[test]
    fn band_counts_only_near_boundary_points() {
        let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
        let regions = grid_regions(&extent, 2, 2);
        let pts = uniform_points(&extent, 2_000, 3, 10.0);
        let q = SpatialAggQuery::count();
        let tight = error_budget(&pts, &regions, &q, 0.5, 1.0).unwrap();
        let wide = error_budget(&pts, &regions, &q, 5.0, 1.0).unwrap();
        let tight_total: u64 = tight.regions.iter().map(|b| b.band_points).sum();
        let wide_total: u64 = wide.regions.iter().map(|b| b.band_points).sum();
        assert!(tight_total > 0, "some of 2000 points land within 0.5 of a grid line");
        assert!(
            tight_total < wide_total,
            "wider bands must capture more points ({tight_total} vs {wide_total})"
        );
        assert!(wide.expected_band_points > tight.expected_band_points);
        // For COUNT, per-point |v| contribution is the count itself… value 0.
        for b in &tight.regions {
            assert_eq!(b.band_abs_sum, 0.0, "COUNT carries no value mass");
        }
    }

    #[test]
    fn filtered_points_never_enter_the_band() {
        use urban_data::filter::Filter;
        let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
        let regions = grid_regions(&extent, 2, 2);
        let pts = uniform_points(&extent, 1_000, 3, 10.0);
        let none = SpatialAggQuery::count().filter(Filter::AttrRange {
            column: "v".into(),
            min: 50.0,
            max: 60.0,
        });
        let b = error_budget(&pts, &regions, &none, 2.0, 1.5).unwrap();
        let all = error_budget(&pts, &regions, &SpatialAggQuery::count(), 2.0, 1.5).unwrap();
        let b_total: u64 = b.regions.iter().map(|r| r.band_points).sum();
        let all_total: u64 = all.regions.iter().map(|r| r.band_points).sum();
        assert_eq!(b_total, 0, "no point passes an impossible filter");
        assert!(all_total > 0);
    }
}
