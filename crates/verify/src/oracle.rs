//! The exact geometric oracle: point-in-polygon aggregation built directly
//! on the robust predicates in `urbane-geom` — and on *nothing else* from
//! the evaluation stack.
//!
//! Every production executor in this repo answers the paper's query through
//! a raster: canvas planning, tiling, scanline or triangulated fill,
//! pixel-center snapping. The oracle shares none of that. Containment is
//! decided per point with an orientation-predicate crossing test (no
//! computed intersection coordinates, no canvas, no tiles), so a bug in the
//! raster stack cannot hide by also biasing the reference. The only shared
//! code is the data layer (filters / aggregate state), which is not a
//! spatial code path, and the `orientation` / `point_on_segment` predicates
//! themselves, which are the repo's axioms.
//!
//! Semantics match the repo convention exactly:
//! * exterior boundary is **inside** (closed polygons),
//! * hole interiors are outside, hole boundaries are inside,
//! * a `MultiPolygon` contains a point when any member polygon does,
//! * overlapping regions each receive the point (SQL join semantics).

use urban_data::query::{AggTable, SpatialAggQuery};
use urban_data::{PointTable, RegionSet};
use urbane_geom::predicates::{orientation, point_on_segment, Orientation};
use urbane_geom::{MultiPolygon, Point, Polygon, Ring};

use crate::{Result, VerifyError};

/// Where a point sits relative to a closed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Strictly outside.
    Out,
    /// On an edge or vertex of some ring.
    Boundary,
    /// Strictly inside (interior of the exterior, not inside any hole).
    In,
}

/// Classify `p` against a single ring with an even-odd crossing test driven
/// purely by orientation signs: an edge whose endpoints straddle the
/// horizontal line through `p` crosses the rightward ray iff `p` lies on
/// the inner side of the directed edge. No intersection coordinate is ever
/// computed, so there is no roundoff beyond the predicates' own.
pub fn ring_side(ring: &Ring, p: Point) -> Side {
    let mut inside = false;
    for e in ring.edges() {
        if point_on_segment(p, e.a, e.b) {
            return Side::Boundary;
        }
        if (e.a.y > p.y) != (e.b.y > p.y) {
            let o = orientation(e.a, e.b, p);
            let crosses = if e.b.y > e.a.y {
                o == Orientation::Ccw
            } else {
                o == Orientation::Cw
            };
            if crosses {
                inside = !inside;
            }
        }
    }
    if inside {
        Side::In
    } else {
        Side::Out
    }
}

/// Classify `p` against a polygon with holes (closed semantics; hole
/// boundaries count as inside, hole interiors as outside).
pub fn polygon_side(poly: &Polygon, p: Point) -> Side {
    match ring_side(poly.exterior(), p) {
        Side::Out => Side::Out,
        Side::Boundary => Side::Boundary,
        Side::In => {
            for hole in poly.holes() {
                match ring_side(hole, p) {
                    Side::In => return Side::Out,
                    Side::Boundary => return Side::Boundary,
                    Side::Out => {}
                }
            }
            Side::In
        }
    }
}

/// True when the multipolygon contains `p` under the closed convention.
pub fn contains(geom: &MultiPolygon, p: Point) -> bool {
    geom.polygons().iter().any(|poly| polygon_side(poly, p) != Side::Out)
}

/// Evaluate the query exactly: for every point passing the ad-hoc filters,
/// test containment against every region with the predicate-based test and
/// fold the attribute into the region's [`AggTable`] state. `O(|P|·|R|·V)`
/// — an oracle, not an executor.
///
/// The per-region bounding box is used only as a conservative prefilter
/// (closed-box containment can never exclude a point the polygon contains).
pub fn oracle_join(
    points: &PointTable,
    regions: &RegionSet,
    query: &SpatialAggQuery,
) -> Result<AggTable> {
    let agg = query.agg_kind();
    let col = agg.resolve(points).map_err(|e| VerifyError::Data(e.to_string()))?;
    let filter =
        query.filters.compile(points).map_err(|e| VerifyError::Data(e.to_string()))?;
    let boxes: Vec<_> = regions.iter().map(|(_, _, g)| g.bbox()).collect();

    let mut out = AggTable::new(agg, regions.len());
    for i in 0..points.len() {
        if !filter.matches(i) {
            continue;
        }
        let p = points.loc(i);
        let v = col.map_or(0.0, |c| points.attr(i, c) as f64);
        for ((id, _, geom), bbox) in regions.iter().zip(&boxes) {
            if bbox.contains(p) && contains(geom, p) {
                if let Some(state) = out.states.get_mut(id as usize) {
                    state.accumulate(v);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urban_data::gen::corpus::uniform_points;
    use urban_data::gen::regions::{star_regions, voronoi_neighborhoods};
    use urban_data::query::{AggKind, SpatialAggQuery};
    use urbane_geom::BoundingBox;

    fn unit_square() -> Polygon {
        Polygon::from_coords(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]).unwrap()
    }

    #[test]
    fn ring_classification_interior_boundary_exterior() {
        let sq = unit_square();
        assert_eq!(polygon_side(&sq, Point::new(2.0, 2.0)), Side::In);
        assert_eq!(polygon_side(&sq, Point::new(5.0, 2.0)), Side::Out);
        // Edge and vertex are boundary.
        assert_eq!(polygon_side(&sq, Point::new(4.0, 2.0)), Side::Boundary);
        assert_eq!(polygon_side(&sq, Point::new(0.0, 0.0)), Side::Boundary);
        // A ray through a vertex must not double-count.
        let tri =
            Polygon::from_coords(&[(0.0, 0.0), (4.0, 2.0), (0.0, 4.0)]).unwrap();
        assert_eq!(polygon_side(&tri, Point::new(1.0, 2.0)), Side::In);
        assert_eq!(polygon_side(&tri, Point::new(-1.0, 2.0)), Side::Out);
        assert_eq!(polygon_side(&tri, Point::new(5.0, 2.0)), Side::Out);
    }

    #[test]
    fn holes_subtract_but_their_boundary_is_inside() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(3.0, 3.0),
            Point::new(7.0, 3.0),
            Point::new(7.0, 7.0),
            Point::new(3.0, 7.0),
        ])
        .unwrap();
        let poly = Polygon::with_holes(outer, vec![hole]).unwrap();
        assert_eq!(polygon_side(&poly, Point::new(5.0, 5.0)), Side::Out);
        assert_eq!(polygon_side(&poly, Point::new(1.0, 1.0)), Side::In);
        assert_eq!(polygon_side(&poly, Point::new(3.0, 5.0)), Side::Boundary);
        // Agreement with the geometry crate's own closed semantics.
        assert!(poly.contains(Point::new(1.0, 1.0)));
        assert!(!poly.contains(Point::new(5.0, 5.0)));
        assert!(poly.contains(Point::new(3.0, 5.0)));
    }

    /// The oracle and the geometry crate's `contains` are independent
    /// implementations of the same convention — they must agree everywhere,
    /// including on overlapping star regions.
    #[test]
    fn agrees_with_geometry_contains_on_random_corpus() {
        let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
        let pts = uniform_points(&extent, 2_000, 5, 10.0);
        for regions in [voronoi_neighborhoods(&extent, 18, 3, 2), star_regions(&extent, 6, 8, 4)]
        {
            for (_, _, geom) in regions.iter() {
                for i in 0..pts.len() {
                    let p = pts.loc(i);
                    assert_eq!(
                        contains(geom, p),
                        geom.contains(p),
                        "oracle and geometry disagree at {p:?}"
                    );
                }
            }
        }
    }

    /// Cross-check the full aggregation against `spatial-index`'s
    /// nested-loop join (a third, independent containment path).
    #[test]
    fn oracle_join_matches_naive_join() {
        let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
        let pts = uniform_points(&extent, 3_000, 17, 50.0);
        let regions = voronoi_neighborhoods(&extent, 20, 7, 2);
        for agg in [
            AggKind::Count,
            AggKind::Sum("v".into()),
            AggKind::Avg("v".into()),
            AggKind::Min("v".into()),
            AggKind::Max("v".into()),
        ] {
            let q = SpatialAggQuery::new(agg);
            let ours = oracle_join(&pts, &regions, &q).unwrap();
            let naive = spatial_index::naive_join(&pts, &regions, &q).unwrap();
            assert_eq!(ours, naive);
        }
    }
}
