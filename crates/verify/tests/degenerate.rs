//! Degenerate-region regressions for the accurate boundary-pixel path.
//!
//! The accurate variant's exactness proof leans on "interior pixels are
//! fully covered" + "boundary pixels get exact PIP fix-up". Degenerate
//! regions stress the seams of that argument:
//!
//! * a **zero-area ring** (three distinct collinear vertices) has no
//!   interior at all — every covered pixel is a boundary pixel, and only
//!   points *exactly on* the segment belong to the region (closed
//!   semantics);
//! * **collinear redundant vertices** on a square's edges must not change
//!   any answer (extra vertices add zero-length scanline events and repeat
//!   boundary pixels);
//! * a **sub-pixel region** (entire polygon strictly inside one coarse
//!   pixel) has no interior pixel either — the bounded path may legally
//!   miscount it, the accurate path may not.
//!
//! Truth is the independent exact oracle from `urbane-verify`.

use raster_join::{
    BinningMode, CanvasSpec, ExecutionMode, PointStrategy, PolygonPath, RasterJoin,
    RasterJoinConfig,
};
use urban_data::gen::corpus::uniform_points;
use urban_data::query::{AggTable, SpatialAggQuery};
use urban_data::{PointTable, RegionSet};
use urbane_geom::{BoundingBox, MultiPolygon, Point, Polygon, Ring};
use urbane_verify::oracle::oracle_join;

fn region_set(polys: Vec<(&str, Polygon)>) -> RegionSet {
    RegionSet::new(
        "degenerate",
        polys
            .into_iter()
            .map(|(n, p)| (n.to_string(), MultiPolygon::from_polygon(p)))
            .collect(),
    )
}

fn accurate(points: &PointTable, regions: &RegionSet, q: &SpatialAggQuery, res: u32) -> AggTable {
    let config = RasterJoinConfig {
        spec: CanvasSpec::Resolution(res),
        max_tile: 64,
        mode: ExecutionMode::Accurate,
        path: PolygonPath::Scanline,
        strategy: PointStrategy::PointsFirst,
        threads: 1,
        binning: BinningMode::Off,
        ..RasterJoinConfig::default()
    };
    RasterJoin::new(config).execute(points, regions, q).expect("accurate run").table
}

fn assert_matches_oracle(points: &PointTable, regions: &RegionSet, res: u32) {
    let q = SpatialAggQuery::count();
    let exact = oracle_join(points, regions, &q).expect("oracle");
    let got = accurate(points, regions, &q, res);
    for r in 0..regions.len() {
        assert_eq!(
            got.states[r].count, exact.states[r].count,
            "region {r}: accurate count diverges from the exact oracle at res {res}"
        );
    }
}

/// A zero-area ring joins exactly the points lying on its segment — and
/// nothing else, at any resolution.
#[test]
fn zero_area_collinear_ring() {
    let line = Polygon::new(
        Ring::new(vec![Point::new(10.0, 10.0), Point::new(50.0, 50.0), Point::new(30.0, 30.0)])
            .expect("3 distinct vertices form a ring"),
    );
    let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
    let mut points = uniform_points(&extent, 600, 21, 10.0);
    // Plant rows exactly on the segment and just off it.
    points.push(Point::new(20.0, 20.0), 600, &[1.0]).expect("arity");
    points.push(Point::new(40.0, 40.0), 601, &[1.0]).expect("arity");
    points.push(Point::new(20.0, 20.5), 602, &[1.0]).expect("arity");

    // A normal region alongside, so the set isn't wholly degenerate.
    let square =
        Polygon::from_coords(&[(60.0, 60.0), (90.0, 60.0), (90.0, 90.0), (60.0, 90.0)])
            .expect("square");
    let regions = region_set(vec![("line", line), ("square", square)]);

    let q = SpatialAggQuery::count();
    let exact = oracle_join(&points, &regions, &q).expect("oracle");
    assert_eq!(exact.states[0].count, 2, "oracle: exactly the two planted on-segment points");
    for res in [24u32, 48, 96] {
        assert_matches_oracle(&points, &regions, res);
    }
}

/// Redundant collinear vertices on a square's edges change nothing: the
/// answer equals both the oracle and the clean square's answer bit-for-bit.
#[test]
fn collinear_redundant_vertices_are_inert() {
    let clean =
        Polygon::from_coords(&[(20.0, 20.0), (70.0, 20.0), (70.0, 70.0), (20.0, 70.0)])
            .expect("square");
    let redundant = Polygon::from_coords(&[
        (20.0, 20.0),
        (45.0, 20.0), // midpoint of the bottom edge
        (70.0, 20.0),
        (70.0, 33.0),
        (70.0, 51.0), // two interior points of the right edge
        (70.0, 70.0),
        (20.0, 70.0),
        (20.0, 45.0), // midpoint of the left edge
    ])
    .expect("square with redundant vertices");

    let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
    let points = uniform_points(&extent, 1_500, 22, 10.0);
    let clean_set = region_set(vec![("sq", clean)]);
    let redundant_set = region_set(vec![("sq", redundant)]);

    let q = SpatialAggQuery::count();
    for res in [32u32, 64] {
        let a = accurate(&points, &clean_set, &q, res);
        let b = accurate(&points, &redundant_set, &q, res);
        assert_eq!(a.states[0].count, b.states[0].count, "redundant vertices changed the count");
        assert_matches_oracle(&points, &redundant_set, res);
    }
}

/// A region strictly inside one coarse pixel still aggregates exactly under
/// the accurate path (the whole polygon is boundary pixels).
#[test]
fn sub_pixel_region_is_exact() {
    // ~0.8-unit triangle; at 24 px over 100 units a pixel is >4 units wide.
    let tiny = Polygon::from_coords(&[(50.1, 50.1), (50.9, 50.1), (50.5, 50.8)])
        .expect("tiny triangle");
    let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
    let mut points = uniform_points(&extent, 800, 23, 10.0);
    // Guarantee interior, boundary, and near-miss rows.
    points.push(Point::new(50.5, 50.3), 800, &[1.0]).expect("arity");
    points.push(Point::new(50.1, 50.1), 801, &[1.0]).expect("arity"); // vertex
    points.push(Point::new(50.5, 50.95), 802, &[1.0]).expect("arity"); // outside

    // Anchor region so the canvas covers the full extent.
    let anchor = Polygon::from_coords(&[(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)])
        .expect("anchor");
    let regions = region_set(vec![("tiny", tiny), ("anchor", anchor)]);

    let q = SpatialAggQuery::count();
    let exact = oracle_join(&points, &regions, &q).expect("oracle");
    assert!(exact.states[0].count >= 2, "planted interior + vertex rows must join");
    for res in [24u32, 48, 128] {
        assert_matches_oracle(&points, &regions, res);
    }
}
