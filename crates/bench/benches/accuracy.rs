//! E4 — the resolution/ε axis: cost of shrinking the error bound, and the
//! price of the accurate variant's boundary fix-up.
//!
//! (The *error* table itself is printed by `repro --exp e4`; criterion
//! measures the time side of the trade-off.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_join::{RasterJoin, RasterJoinConfig};
use urban_data::query::SpatialAggQuery;
use urbane_bench::workload::Workload;

fn bench_accuracy(c: &mut Criterion) {
    let w = Workload::standard(200_000, 42);
    let pts = &w.taxi;
    let regions = w.neighborhoods();
    let q = SpatialAggQuery::count();

    let mut group = c.benchmark_group("e4_accuracy");
    group.sample_size(10);
    for res in [128u32, 512, 1024, 2048] {
        let join = RasterJoin::new(RasterJoinConfig::with_resolution(res));
        group.bench_with_input(BenchmarkId::new("bounded", res), &join, |b, join| {
            b.iter(|| join.execute(pts, &regions, &q).unwrap())
        });
        let join = RasterJoin::new(RasterJoinConfig::weighted(res));
        group.bench_with_input(BenchmarkId::new("weighted", res), &join, |b, join| {
            b.iter(|| join.execute(pts, &regions, &q).unwrap())
        });
        let join = RasterJoin::new(RasterJoinConfig::accurate(res));
        group.bench_with_input(BenchmarkId::new("accurate", res), &join, |b, join| {
            b.iter(|| join.execute(pts, &regions, &q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accuracy);
criterion_main!(benches);
