//! E6 — interactive-session latency: the end-to-end cost of each user
//! interaction (time-slider move, resolution switch, dataset swap), which is
//! precisely what the demo puts in front of visitors.

use criterion::{criterion_group, criterion_main, Criterion};
use raster_join::RasterJoinConfig;
use urban_data::filter::Filter;
use urban_data::time::{TimeRange, DAY};
use urbane::{DataCatalog, ResolutionPyramid, SessionConfig, UrbaneSession};
use urbane_bench::workload::{demo_start, Workload};

fn fresh_session(w: &Workload) -> UrbaneSession {
    let mut catalog = DataCatalog::new();
    catalog.register("taxi", w.taxi.clone());
    catalog.register("311", w.complaints.clone());
    let pyramid = ResolutionPyramid::standard(&w.city.bbox(), 260, 46, 42);
    let mut s = UrbaneSession::new(
        SessionConfig {
            join: RasterJoinConfig::with_resolution(1024),
            cache_capacity: 0, // disable caching: measure the query path
            ..Default::default()
        },
        catalog,
        pyramid,
    )
    .expect("bench catalog is non-empty");
    s.select_dataset("taxi").unwrap();
    s.select_resolution(1).unwrap();
    s
}

fn bench_interaction(c: &mut Criterion) {
    let w = Workload::standard(200_000, 42);
    let start = demo_start();

    let mut group = c.benchmark_group("e6_interaction");
    group.sample_size(10);

    let s = fresh_session(&w);
    group.bench_function("map_view_neighborhoods", |b| b.iter(|| s.evaluate().unwrap()));

    let mut s = fresh_session(&w);
    s.set_time_window(Some(TimeRange::new(start, start + 7 * DAY)));
    group.bench_function("time_slider_week", |b| b.iter(|| s.evaluate().unwrap()));

    let mut s = fresh_session(&w);
    s.select_resolution(2).unwrap();
    group.bench_function("resolution_tracts", |b| b.iter(|| s.evaluate().unwrap()));

    let mut s = fresh_session(&w);
    s.select_dataset("311").unwrap();
    group.bench_function("dataset_swap_311", |b| b.iter(|| s.evaluate().unwrap()));

    let mut s = fresh_session(&w);
    s.set_filters(vec![Filter::AttrRange { column: "fare".into(), min: 20.0, max: 1e9 }]);
    group.bench_function("adhoc_fare_filter", |b| b.iter(|| s.evaluate().unwrap()));

    group.finish();
}

criterion_group!(benches, bench_interaction);
criterion_main!(benches);
