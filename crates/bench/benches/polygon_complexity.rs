//! E3 — latency vs. polygon complexity.
//!
//! Raster join's polygon cost is resolution-bound (fragments), not
//! vertex-bound; index joins pay per candidate PIP test whose cost grows
//! with vertex count. The bench sweeps the demo's resolution pyramid plus
//! many-vertex star stressors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_join::{RasterJoin, RasterJoinConfig};
use spatial_index::{index_join, GridIndex};
use urban_data::query::SpatialAggQuery;
use urbane_bench::workload::Workload;

fn bench_complexity(c: &mut Criterion) {
    let w = Workload::standard(200_000, 42);
    let pts = &w.taxi;
    let q = SpatialAggQuery::count();
    let bounded = RasterJoin::new(RasterJoinConfig::with_resolution(1024));

    let sets = vec![
        ("boroughs_5", w.boroughs()),
        ("neighborhoods_260", w.neighborhoods()),
        ("tracts_2116", w.tracts()),
        ("stars_260x64", w.stars(260, 64)),
    ];

    let mut group = c.benchmark_group("e3_polygon_complexity");
    group.sample_size(10);
    for (name, rs) in &sets {
        group.bench_with_input(BenchmarkId::new("rj_bounded", name), rs, |b, rs| {
            b.iter(|| bounded.execute(pts, rs, &q).unwrap())
        });
        let grid = GridIndex::build_auto(rs);
        group.bench_with_input(BenchmarkId::new("grid_join", name), rs, |b, rs| {
            b.iter(|| index_join(pts, rs, &grid, &q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_complexity);
criterion_main!(benches);
