//! E9 — design-choice ablations (DESIGN.md §6): points-first vs. id-buffer,
//! scanline vs. triangulated polygon rasterization, tiling granularity and
//! threading, bounded vs. accurate.

use criterion::{criterion_group, criterion_main, Criterion};
use raster_join::{
    CanvasSpec, ExecutionMode, PointStrategy, PolygonPath, RasterJoin, RasterJoinConfig,
};
use urban_data::query::SpatialAggQuery;
use urbane_bench::workload::Workload;

fn bench_ablation(c: &mut Criterion) {
    let w = Workload::standard(200_000, 42);
    let pts = &w.taxi;
    let nbhd = w.neighborhoods();
    let tracts = w.tracts();
    let q = SpatialAggQuery::count();

    let mut group = c.benchmark_group("e9_ablation");
    group.sample_size(10);

    let points_first = RasterJoin::new(RasterJoinConfig::with_resolution(1024));
    group.bench_function("strategy_points_first", |b| {
        b.iter(|| points_first.execute(pts, &tracts, &q).unwrap())
    });
    let id_buffer = RasterJoin::new(RasterJoinConfig {
        strategy: PointStrategy::IdBuffer,
        spec: CanvasSpec::Resolution(1024),
        ..Default::default()
    });
    group.bench_function("strategy_id_buffer", |b| {
        b.iter(|| id_buffer.execute(pts, &tracts, &q).unwrap())
    });

    group.bench_function("polygons_scanline", |b| {
        b.iter(|| points_first.execute(pts, &nbhd, &q).unwrap())
    });
    let triangulated = RasterJoin::new(RasterJoinConfig {
        path: PolygonPath::Triangulated,
        spec: CanvasSpec::Resolution(1024),
        ..Default::default()
    });
    group.bench_function("polygons_triangulated", |b| {
        b.iter(|| triangulated.execute(pts, &nbhd, &q).unwrap())
    });

    for (max_tile, threads, label) in
        [(4096u32, 1usize, "tiles_1_serial"), (512, 1, "tiles_4_serial"), (512, 4, "tiles_4_threads")]
    {
        let join = RasterJoin::new(RasterJoinConfig {
            spec: CanvasSpec::Resolution(1024),
            max_tile,
            threads,
            ..Default::default()
        });
        group.bench_function(label, |b| b.iter(|| join.execute(pts, &nbhd, &q).unwrap()));
    }

    let accurate = RasterJoin::new(RasterJoinConfig {
        mode: ExecutionMode::Accurate,
        spec: CanvasSpec::Resolution(1024),
        ..Default::default()
    });
    group.bench_function("mode_accurate", |b| {
        b.iter(|| accurate.execute(pts, &nbhd, &q).unwrap())
    });

    let prepared = raster_join::PreparedRasterJoin::prepare(
        &nbhd,
        CanvasSpec::Resolution(1024),
        2048,
        ExecutionMode::Bounded,
    )
    .unwrap();
    group.bench_function("prepared_bounded", |b| b.iter(|| prepared.execute(pts, &q).unwrap()));

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
