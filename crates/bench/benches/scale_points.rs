//! E2 — latency vs. point count (criterion counterpart of `repro --exp e2`).
//!
//! One group per method; each group sweeps |P|. The paper's claim is the
//! *shape*: raster join grows linearly in |P| and beats index joins at every
//! interactive scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raster_join::{RasterJoin, RasterJoinConfig};
use spatial_index::{index_join, GridIndex, RTreeIndex};
use urban_data::query::SpatialAggQuery;
use urbane_bench::workload::Workload;

fn bench_scale(c: &mut Criterion) {
    let w = Workload::standard(1_000_000, 42);
    let regions = w.neighborhoods();
    let q = SpatialAggQuery::count();

    let bounded = RasterJoin::new(RasterJoinConfig::with_resolution(1024));
    let accurate = RasterJoin::new(RasterJoinConfig::accurate(1024));
    let grid = GridIndex::build_auto(&regions);
    let rtree = RTreeIndex::build(&regions);

    let mut group = c.benchmark_group("e2_scale_points");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let pts = w.taxi.prefix(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("rj_bounded", n), &pts, |b, pts| {
            b.iter(|| bounded.execute(pts, &regions, &q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rj_accurate", n), &pts, |b, pts| {
            b.iter(|| accurate.execute(pts, &regions, &q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("grid_join", n), &pts, |b, pts| {
            b.iter(|| index_join(pts, &regions, &grid, &q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rtree_join", n), &pts, |b, pts| {
            b.iter(|| index_join(pts, &regions, &rtree, &q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
