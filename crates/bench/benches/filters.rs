//! E5 — ad-hoc filter evaluation: raster join and index join pay per-row
//! predicate cost; the pre-aggregation cube answers aligned queries in
//! microseconds but cannot answer ad-hoc ones at all (shown by `repro`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raster_join::{RasterJoin, RasterJoinConfig};
use spatial_index::{index_join, GridIndex, PreAggCube};
use urban_data::filter::Filter;
use urban_data::query::SpatialAggQuery;
use urban_data::time::{TimeBucket, TimeRange, DAY};
use urbane_bench::workload::{demo_start, Workload};

fn bench_filters(c: &mut Criterion) {
    let w = Workload::standard(200_000, 42);
    let pts = &w.taxi;
    let regions = w.neighborhoods();
    let start = demo_start();

    let bounded = RasterJoin::new(RasterJoinConfig::with_resolution(1024));
    let grid = GridIndex::build_auto(&regions);
    let cube =
        PreAggCube::build(pts, &regions, TimeBucket::Day, Some("passengers"), Some("fare"))
            .unwrap();

    let queries = vec![
        ("none", SpatialAggQuery::count()),
        (
            "time_week",
            SpatialAggQuery::count().filter(Filter::Time(TimeRange::new(start, start + 7 * DAY))),
        ),
        (
            "fare_range",
            SpatialAggQuery::count().filter(Filter::AttrRange {
                column: "fare".into(),
                min: 10.0,
                max: 30.0,
            }),
        ),
        (
            "fare_and_time",
            SpatialAggQuery::count()
                .filter(Filter::AttrRange { column: "fare".into(), min: 10.0, max: 30.0 })
                .filter(Filter::Time(TimeRange::new(start, start + 7 * DAY))),
        ),
    ];

    let mut group = c.benchmark_group("e5_filters");
    group.sample_size(10);
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::new("rj_bounded", name), q, |b, q| {
            b.iter(|| bounded.execute(pts, &regions, q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("grid_join", name), q, |b, q| {
            b.iter(|| index_join(pts, &regions, &grid, q).unwrap())
        });
        // The cube can only run its aligned subset — bench those.
        if cube.query(q).is_ok() {
            group.bench_with_input(BenchmarkId::new("preagg_cube", name), q, |b, q| {
                b.iter(|| cube.query(q).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
