//! `repro` — regenerate every experiment table from DESIGN.md §4.
//!
//! ```text
//! cargo run --release -p urbane-bench --bin repro -- --exp all --scale 1000000
//! cargo run --release -p urbane-bench --bin repro -- --exp e2
//! cargo run --release -p urbane-bench --bin repro -- --exp bench \
//!     --scale 1000000 --threads 4 --reps 5 --json BENCH_rasterjoin.json
//! ```

use urbane_bench::{batch_bench, blockcache_bench, experiments, perf, serve_bench, swarm, verify_exp};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--exp all|bench|indexjoin|serve|swarm|batch|blockcache|verify|e1|...|e10] [--scale N] [--out DIR]\n\
         \x20             [--threads N] [--reps N] [--json PATH]\n\
         \x20             [--clients N] [--requests N] [--shards N] [--kills N]\n\
         \x20             [--window-ms N]\n\
         defaults: --exp all --scale 1000000 --out out --threads 4 --reps 5\n\
         \x20         --clients 2 --requests 60 --shards 3 --kills 2 --window-ms 15\n\
         --threads/--reps apply to `bench`, `indexjoin` and `serve`; --json also to `verify`/`swarm`/`batch`;\n\
         --clients/--requests apply to `serve`, `swarm`, and `batch` (scale = dataset rows);\n\
         --shards/--kills apply to `swarm` (chaos-driven sharded front);\n\
         --window-ms applies to `batch` (admission window of the batched leg);\n\
         `blockcache` replays a zoom/pan/drill trace against the additive block cache (scale = rows);\n\
         for `verify`, scale maps to corpus size (default = fast CI corpus)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut scale = 1_000_000usize;
    let mut out_dir = "out".to_string();
    let mut threads = 4usize;
    let mut reps = 5usize;
    let mut json_path: Option<String> = None;
    let mut clients = 2usize;
    let mut requests = 60usize;
    let mut shards = 3usize;
    let mut kills = 2usize;
    let mut window_ms = 15u64;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| usage());
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&c| c > 0)
                    .unwrap_or_else(|| usage());
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage());
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--kills" => {
                i += 1;
                kills = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--window-ms" => {
                i += 1;
                window_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    if exp == "serve" {
        let cfg = serve_bench::ServeConfig {
            rows: scale.min(500_000),
            clients,
            requests,
            workers: threads.max(clients),
            ..Default::default()
        };
        let report = serve_bench::run(&cfg);
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        println!("{}", report.render());
        return;
    }

    if exp == "swarm" {
        let cfg = swarm::SwarmConfig {
            rows: scale.min(100_000),
            shards,
            clients: clients.max(3),
            requests,
            kills,
            ..Default::default()
        };
        println!(
            "swarm: {} shards, {} clients x {} requests, {} scheduled kills, seed {:#x}",
            cfg.shards, cfg.clients, cfg.requests, cfg.kills, cfg.seed
        );
        let report = swarm::run(&cfg);
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        print!("{}", report.render());
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    if exp == "batch" {
        let cfg = batch_bench::BatchBenchConfig {
            rows: scale.min(500_000),
            clients: clients.max(8),
            requests,
            window_ms,
            ..Default::default()
        };
        println!(
            "batch: {} clients x {} requests over {} rows, window {} ms",
            cfg.clients, cfg.requests, cfg.rows, cfg.window_ms
        );
        let report = batch_bench::run(&cfg);
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        print!("{}", report.render());
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    if exp == "blockcache" {
        let cfg = blockcache_bench::BlockCacheBenchConfig {
            rows: scale.min(500_000),
            ..Default::default()
        };
        println!(
            "blockcache: zoom/pan/drill trace over {} rows, {} MiB block budget",
            cfg.rows,
            cfg.block_cache_bytes >> 20
        );
        let report = blockcache_bench::run(&cfg);
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        print!("{}", report.render());
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    if exp == "verify" {
        let workloads = verify_exp::workloads_for_scale(scale);
        println!("ε-certification sweep: {workloads} differential workloads");
        let report = match verify_exp::run(workloads) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("verify experiment failed to execute: {e}");
                std::process::exit(2);
            }
        };
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        print!("{}", report.render());
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    if exp == "indexjoin" {
        let cfg = perf::PerfConfig { points: scale, threads, reps, ..Default::default() };
        let (points, crossover) = perf::index_join_race(&cfg);
        println!("{}", perf::render_race(&points, crossover));
        return;
    }

    if exp == "bench" {
        let cfg = perf::PerfConfig { points: scale, threads, reps, ..Default::default() };
        let report = perf::run(&cfg);
        if let Some(path) = &json_path {
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        println!("{}", report.render());
        return;
    }

    println!(
        "Urbane / Raster Join reproduction — experiments at scale {scale}\n\
         (see DESIGN.md §4 for the experiment index)\n"
    );
    let report = match exp.as_str() {
        "all" => experiments::run_all(scale, &out_dir),
        "e1" => experiments::e1_map_view(scale, &out_dir),
        "e2" => experiments::e2_scale_points(scale),
        "e3" => experiments::e3_polygon_complexity(scale),
        "e4" => experiments::e4_accuracy(scale.min(1_000_000)),
        "e5" => experiments::e5_filters(scale),
        "e6" => experiments::e6_interaction(scale),
        "e7" => experiments::e7_exploration(scale),
        "e8" => experiments::e8_aggregates(scale.min(1_000_000)),
        "e9" => experiments::e9_ablation(scale),
        "e10" => experiments::e10_planner(scale),
        _ => usage(),
    };
    println!("{report}");
}
