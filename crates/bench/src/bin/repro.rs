//! `repro` — regenerate every experiment table from DESIGN.md §4.
//!
//! ```text
//! cargo run --release -p urbane-bench --bin repro -- --exp all --scale 1000000
//! cargo run --release -p urbane-bench --bin repro -- --exp e2
//! ```

use urbane_bench::experiments;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--exp all|e1|...|e10] [--scale N] [--out DIR]\n\
         defaults: --exp all --scale 1000000 --out out"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_string();
    let mut scale = 1_000_000usize;
    let mut out_dir = "out".to_string();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }

    println!(
        "Urbane / Raster Join reproduction — experiments at scale {scale}\n\
         (see DESIGN.md §4 for the experiment index)\n"
    );
    let report = match exp.as_str() {
        "all" => experiments::run_all(scale, &out_dir),
        "e1" => experiments::e1_map_view(scale, &out_dir),
        "e2" => experiments::e2_scale_points(scale),
        "e3" => experiments::e3_polygon_complexity(scale),
        "e4" => experiments::e4_accuracy(scale.min(1_000_000)),
        "e5" => experiments::e5_filters(scale),
        "e6" => experiments::e6_interaction(scale),
        "e7" => experiments::e7_exploration(scale),
        "e8" => experiments::e8_aggregates(scale.min(1_000_000)),
        "e9" => experiments::e9_ablation(scale),
        "e10" => experiments::e10_planner(scale),
        _ => usage(),
    };
    println!("{report}");
}
