//! Additive block-cache benchmark — the `--exp blockcache` mode of the
//! `repro` binary and the generator of `BENCH_blockcache.json`.
//!
//! One in-process [`UrbaneService`] with the block cache enabled replays an
//! interactive zoom/pan/drill trace: every step carries a *distinct*
//! viewport (so the exact-key cache is useless — hit rate ~0), but
//! consecutive viewports overlap heavily, which is exactly the workload the
//! GeoBlocks-style sub-result cache composes from per-block partial
//! aggregates. The identical trace replays against a cold service (block
//! cache disabled) for the latency-vs-cold curve and as the correctness
//! oracle: every composed answer must match direct evaluation bit-for-bit
//! on counts and within the *reported* certified bound on values — the ε
//! violation count committed in the JSON must be zero.

use std::sync::Arc;
use std::time::{Duration, Instant};
use urbane::catalog::DataCatalog;
use urbane::service::{QueryRequest, ServiceConfig, UrbaneService};
use urbane::ResolutionPyramid;
use urbane_geom::BoundingBox;
use urbane_serve::router::synthetic_table;
use urban_data::filter::Filter;
use urban_data::gen::city::CityModel;

/// Knobs for the block-cache suite (settable from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct BlockCacheBenchConfig {
    /// Taxi rows in the served dataset.
    pub rows: usize,
    /// Raster canvas resolution.
    pub resolution: u32,
    /// Steps in each pan sweep (the trace runs two sweeps plus zoom+drill).
    pub pan_steps: usize,
    /// Steps in the zoom ladder.
    pub zoom_steps: usize,
    /// Byte budget for the block cache on the warm service.
    pub block_cache_bytes: usize,
}

impl Default for BlockCacheBenchConfig {
    fn default() -> Self {
        BlockCacheBenchConfig {
            rows: 120_000,
            resolution: 512,
            pan_steps: 12,
            zoom_steps: 4,
            block_cache_bytes: 32 << 20,
        }
    }
}

/// One trace step's measurement.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Interaction kind (`pan`, `pan_back`, `zoom`, `drill`).
    pub kind: &'static str,
    /// Latency on the block-cache service, milliseconds.
    pub warm_ms: f64,
    /// Latency on the cold (cache-free) service, milliseconds.
    pub cold_ms: f64,
    /// Cached blocks composed into this step's answer.
    pub block_hits: u64,
    /// Blocks this step had to compute and back-fill.
    pub residual_blocks: u64,
    /// Did the step compose at least one cached block?
    pub partial_hit: bool,
}

/// The full suite result.
#[derive(Debug, Clone)]
pub struct BlockCacheReport {
    /// Config the suite ran with.
    pub config: BlockCacheBenchConfig,
    /// Per-step latency and cache-yield curve.
    pub steps: Vec<StepStats>,
    /// Σ cached blocks composed across the trace.
    pub block_hits: u64,
    /// Σ blocks computed and back-filled across the trace.
    pub residual_blocks: u64,
    /// Steps that composed at least one cached block.
    pub partial_hits: u64,
    /// Exact-key cache hits on the warm service (must be ~0: every step's
    /// viewport is distinct).
    pub exact_key_hits: u64,
    /// Steps whose composed answer disagreed with direct evaluation beyond
    /// the reported certified bound (must be 0).
    pub eps_violations: usize,
    /// Failed queries on either service (must be 0).
    pub errors: usize,
}

fn boot(cfg: &BlockCacheBenchConfig, block_cache_bytes: usize) -> Arc<UrbaneService> {
    let city = CityModel::nyc_like();
    let mut catalog = DataCatalog::new();
    catalog.register(
        "taxi",
        synthetic_table("taxi", cfg.rows, 11).expect("taxi generator exists"),
    );
    let pyramid = ResolutionPyramid::standard(&city.bbox(), 16, 8, 5);
    let service = UrbaneService::new(
        ServiceConfig {
            join: raster_join::RasterJoinConfig::with_resolution(cfg.resolution),
            // Exact-key cache stays on: the trace must defeat it naturally
            // (distinct viewports), not by configuration.
            cache_capacity: 1024,
            default_deadline: Duration::from_secs(60),
            block_cache_bytes,
            ..Default::default()
        },
        catalog,
        pyramid,
    )
    .expect("service boots");
    Arc::new(service)
}

/// The interactive trace: two overlapping pan sweeps, a zoom ladder, and a
/// resolution drill. Every step's `(level, viewport)` pair is distinct.
fn trace(cfg: &BlockCacheBenchConfig, extent: &BoundingBox) -> Vec<(&'static str, usize, BoundingBox)> {
    let (w, h) = (extent.width(), extent.height());
    let window = 0.6 * w;
    let mut steps = Vec::new();
    // Forward pan: the 60% window slides right in 3% increments.
    for i in 0..cfg.pan_steps {
        let x0 = extent.min.x + 0.03 * w * i as f64;
        steps.push((
            "pan",
            2usize,
            BoundingBox::from_coords(x0, extent.min.y, x0 + window, extent.max.y),
        ));
    }
    // Zoom ladder: shrink around the extent center; inner regions stay
    // within blocks the pan sweep already cached.
    for i in 0..cfg.zoom_steps {
        let k = 0.9f64.powi(i as i32 + 1);
        let c = extent.center();
        steps.push((
            "zoom",
            2usize,
            BoundingBox::from_coords(
                c.x - 0.5 * k * w,
                c.y - 0.5 * k * h,
                c.x + 0.5 * k * w,
                c.y + 0.5 * k * h,
            ),
        ));
    }
    // Return pan: same sweep in reverse, offset by half an increment so no
    // viewport repeats exactly (the exact-key cache must stay cold).
    for i in (0..cfg.pan_steps).rev() {
        let x0 = extent.min.x + 0.03 * w * (i as f64 + 0.5);
        steps.push((
            "pan_back",
            2usize,
            BoundingBox::from_coords(x0, extent.min.y, x0 + window, extent.max.y),
        ));
    }
    // Drill: the resolution switcher walks the pyramid at a fixed viewport.
    let x0 = extent.min.x + 0.2 * w;
    let drill = BoundingBox::from_coords(x0, extent.min.y, x0 + window, extent.max.y);
    for level in [0usize, 1, 2] {
        steps.push(("drill", level, drill));
    }
    steps
}

/// Replay the trace on a warm (block cache) and a cold service.
pub fn run(cfg: &BlockCacheBenchConfig) -> BlockCacheReport {
    let warm = boot(cfg, cfg.block_cache_bytes);
    let cold = boot(cfg, 0);
    let extent = warm.pyramid().level(2).expect("tract level").bbox();

    let mut steps = Vec::new();
    let mut eps_violations = 0usize;
    let mut errors = 0usize;
    let mut prev = warm.blockcache_stats();

    for (kind, level, viewport) in trace(cfg, &extent) {
        let req = QueryRequest::count("taxi", level).filter(Filter::SpatialBox(viewport));
        let t0 = Instant::now();
        let warm_answer = warm.query(&req);
        let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let cold_answer = cold.query(&req);
        let cold_ms = t1.elapsed().as_secs_f64() * 1e3;

        let now = warm.blockcache_stats();
        match (&warm_answer, &cold_answer) {
            (Ok(a), Ok(b)) => {
                let bound = a.report.error_bound.unwrap_or(0.0);
                let agree = a
                    .table
                    .states
                    .iter()
                    .zip(&b.table.states)
                    .all(|(x, y)| x.count == y.count && (x.sum - y.sum).abs() <= bound.max(1e-9));
                if !agree {
                    eps_violations += 1;
                }
            }
            _ => errors += 1,
        }
        steps.push(StepStats {
            kind,
            warm_ms,
            cold_ms,
            block_hits: now.hits - prev.hits,
            residual_blocks: now.residual_blocks - prev.residual_blocks,
            partial_hit: now.partial_hits > prev.partial_hits,
        });
        prev = now;
    }

    let totals = warm.blockcache_stats();
    BlockCacheReport {
        config: cfg.clone(),
        steps,
        block_hits: totals.hits,
        residual_blocks: totals.residual_blocks,
        partial_hits: totals.partial_hits,
        exact_key_hits: warm.cache_stats().hits,
        eps_violations,
        errors,
    }
}

impl BlockCacheReport {
    /// Fraction of needed blocks served from cache across the trace.
    pub fn hit_yield(&self) -> f64 {
        let needed = self.block_hits + self.residual_blocks;
        if needed == 0 {
            0.0
        } else {
            self.block_hits as f64 / needed as f64
        }
    }

    /// Acceptance gate: every answer correct within its certified bound,
    /// ≥50% of needed blocks served from cache, exact-key cache defeated
    /// (~0 hits), and the trace actually exercised partial composition.
    /// Latency is reported, not asserted.
    pub fn passed(&self) -> bool {
        self.errors == 0
            && self.eps_violations == 0
            && self.hit_yield() >= 0.5
            && self.exact_key_hits == 0
            && self.partial_hits > 0
    }

    /// Hand-rolled JSON (the workspace deliberately has no serde), written
    /// to `BENCH_blockcache.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"blockcache\",\n");
        s.push_str(&format!(
            "  \"command\": \"cargo run --release -p urbane-bench --bin repro -- \
             --exp blockcache --scale {} --json BENCH_blockcache.json\",\n",
            self.config.rows
        ));
        s.push_str(&format!("  \"rows\": {},\n", self.config.rows));
        s.push_str(&format!("  \"resolution\": {},\n", self.config.resolution));
        s.push_str(&format!(
            "  \"block_cache_bytes\": {},\n",
            self.config.block_cache_bytes
        ));
        s.push_str(&format!("  \"trace_steps\": {},\n", self.steps.len()));
        s.push_str("  \"steps\": [\n");
        for (i, st) in self.steps.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": \"{}\", \"warm_ms\": {:.3}, \"cold_ms\": {:.3}, \
                 \"block_hits\": {}, \"residual_blocks\": {}, \"partial_hit\": {}}}{}\n",
                st.kind,
                st.warm_ms,
                st.cold_ms,
                st.block_hits,
                st.residual_blocks,
                st.partial_hit,
                if i + 1 < self.steps.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"block_hits\": {},\n", self.block_hits));
        s.push_str(&format!("  \"residual_blocks\": {},\n", self.residual_blocks));
        s.push_str(&format!("  \"partial_hits\": {},\n", self.partial_hits));
        s.push_str(&format!("  \"hit_yield\": {:.4},\n", self.hit_yield()));
        s.push_str(&format!("  \"exact_key_hits\": {},\n", self.exact_key_hits));
        s.push_str(&format!("  \"eps_violations\": {},\n", self.eps_violations));
        s.push_str(&format!("  \"errors\": {},\n", self.errors));
        s.push_str(&format!("  \"passed\": {}\n", self.passed()));
        s.push_str("}\n");
        s
    }

    /// Human-readable table for the repro binary's stdout.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(["phase", "steps", "warm p50 ms", "cold p50 ms", "hit blocks", "residual"]);
        for phase in ["pan", "zoom", "pan_back", "drill"] {
            let mut warm: Vec<f64> = Vec::new();
            let mut cold: Vec<f64> = Vec::new();
            let (mut hits, mut residual) = (0u64, 0u64);
            for st in self.steps.iter().filter(|s| s.kind == phase) {
                warm.push(st.warm_ms);
                cold.push(st.cold_ms);
                hits += st.block_hits;
                residual += st.residual_blocks;
            }
            if warm.is_empty() {
                continue;
            }
            warm.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            cold.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            t.row([
                phase.to_string(),
                format!("{}", warm.len()),
                format!("{:.2}", warm[warm.len() / 2]),
                format!("{:.2}", cold[cold.len() / 2]),
                format!("{hits}"),
                format!("{residual}"),
            ]);
        }
        format!(
            "{}\nblock hit yield: {:.1}%  partial hits: {}  exact-key hits: {}  \
             eps violations: {}\n",
            t.render(),
            100.0 * self.hit_yield(),
            self.partial_hits,
            self.exact_key_hits,
            self.eps_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_trace_composes_and_passes() {
        // Miniature end-to-end replay: small data, short sweeps, but the
        // same acceptance gate as the committed benchmark.
        let report = run(&BlockCacheBenchConfig {
            rows: 15_000,
            resolution: 256,
            pan_steps: 6,
            zoom_steps: 2,
            block_cache_bytes: 8 << 20,
        });
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.steps.len(), 6 + 2 + 6 + 3);
        let json = report.to_json();
        assert!(urbane_geom::geojson::parse_json(&json).is_ok(), "{json}");
    }
}
