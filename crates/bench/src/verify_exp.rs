//! `--exp verify` — run the urbane-verify differential + metamorphic
//! harness through the repro binary, so the certification report sits next
//! to the performance tables it validates.
//!
//! The experiment is a thin front-end over [`urbane_verify`]: the same
//! seeded corpus, the same execution matrix (bounded / weighted / accurate
//! / id-buffer / prepared × threads {1,4} × binning {Off, Grid}), the same
//! analytic ε budget. `scale` maps to the number of differential workloads
//! (the repro convention of "bigger scale, bigger run"): the fast corpus is
//! 15 workloads, and `--scale` above the default requests proportionally
//! more, capped to keep a misplaced `--scale 1000000` from running for
//! hours.

use urbane_verify::metamorphic::run_laws;
use urbane_verify::report::VerifyReport;
use urbane_verify::{corpus, verify_scenario};

/// Same base seed as the `verify` binary and
/// `tests/verify_certification.rs`, so every entry point certifies the one
/// corpus the report in CI describes.
pub const BASE_SEED: u64 = 20_260_805;

/// Fast-corpus workload count (the ci.sh `verify` stage and `cargo test`
/// both use this).
pub const FAST_WORKLOADS: usize = 15;

/// Upper bound on differential workloads reachable through `--scale`.
pub const MAX_WORKLOADS: usize = 240;

/// Map the repro `--scale` knob to a workload count: the default scale
/// (1e6) keeps the fast corpus; larger scales grow it linearly up to
/// [`MAX_WORKLOADS`].
pub fn workloads_for_scale(scale: usize) -> usize {
    let scaled = FAST_WORKLOADS * (scale / 1_000_000).max(1);
    scaled.clamp(FAST_WORKLOADS, MAX_WORKLOADS)
}

/// Run the harness at `workloads` differential workloads (laws run on a
/// proportional slice) and return the aggregated report. Errors are the
/// harness's own — an executor failing outright, not a certification miss;
/// certification misses land in the report as failures.
pub fn run(workloads: usize) -> Result<VerifyReport, urbane_verify::VerifyError> {
    let mut report = VerifyReport::new();
    for s in corpus(workloads, BASE_SEED) {
        report.add_runs(&verify_scenario(&s)?);
    }
    let law_workloads = (workloads * 2 / 5).max(2);
    for s in corpus(law_workloads, BASE_SEED ^ 0x4C41_5753) {
        report.add_laws(&run_laws(&s)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_mapping_is_clamped() {
        assert_eq!(workloads_for_scale(0), FAST_WORKLOADS);
        assert_eq!(workloads_for_scale(1_000_000), FAST_WORKLOADS);
        assert_eq!(workloads_for_scale(4_000_000), 4 * FAST_WORKLOADS);
        assert_eq!(workloads_for_scale(usize::MAX), MAX_WORKLOADS);
    }

    #[test]
    fn tiny_run_passes_and_reports() {
        let report = run(2).expect("harness executes");
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.runs > 0 && report.law_runs > 0);
    }
}
