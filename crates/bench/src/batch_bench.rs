//! Multi-query batching benchmark — the `--exp batch` mode of the
//! `repro` binary and the generator of `BENCH_batch.json`.
//!
//! N closed-loop clients hammer one in-process [`UrbaneService`] with
//! *distinct but compatible* queries: same dataset, level, mode, and
//! resolution, different filter conjunctions. That is exactly the shape
//! the batching planner coalesces — one polygon rasterization and one
//! binned point pass answer the whole group. The identical workload runs
//! twice, admission window on then off, with the query-result cache
//! disabled in both legs so the speedup isolates batching alone. Every
//! client's answer is cross-checked between the two legs: batching must
//! be a pure scheduling optimisation, bit-identical to serial execution.

use std::sync::Arc;
use std::time::{Duration, Instant};
use urbane::catalog::DataCatalog;
use urbane::service::{QueryRequest, ServiceConfig, UrbaneService};
use urbane::{BatchStats, GuardPath, ResolutionPyramid};
use urbane_serve::router::synthetic_table;
use urban_data::filter::Filter;
use urban_data::gen::city::CityModel;

/// Knobs for the batch suite (settable from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct BatchBenchConfig {
    /// Taxi rows in the served dataset.
    pub rows: usize,
    /// Concurrent closed-loop clients, all sharing one dataset. Each
    /// client issues its own filter, so no two requests share a cache
    /// key and the single-flight path never collapses them.
    pub clients: usize,
    /// Requests per client per leg.
    pub requests: usize,
    /// Admission window for the batched leg.
    pub window_ms: u64,
    /// Raster canvas resolution.
    pub resolution: u32,
}

impl Default for BatchBenchConfig {
    fn default() -> Self {
        BatchBenchConfig {
            rows: 200_000,
            clients: 8,
            requests: 10,
            window_ms: 15,
            resolution: 512,
        }
    }
}

/// Measured outcome of one leg (one window setting).
#[derive(Debug, Clone)]
pub struct BatchRunStats {
    /// Successfully answered queries.
    pub completed: usize,
    /// Failed queries (should be 0).
    pub errors: usize,
    /// Answers that arrived at full fidelity.
    pub full: usize,
    /// Queries per second over the leg's wall-clock span.
    pub throughput_qps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// Planner counters after the leg (all zero when the window is off).
    pub batches: u64,
    /// Queries that went through a batch (includes batches of one).
    pub batched_queries: u64,
    /// Mean members per dispatched batch.
    pub mean_batch_size: f64,
    /// One answer table per client (values vector), for cross-leg
    /// equality checking.
    tables: Vec<Vec<Option<f64>>>,
}

/// The full suite result.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Config the suite ran with.
    pub config: BatchBenchConfig,
    /// The leg with the admission window open.
    pub batched: BatchRunStats,
    /// The leg with batching disabled (window 0).
    pub unbatched: BatchRunStats,
    /// Throughput ratio, batched / unbatched.
    pub speedup: f64,
    /// Did every client get the same table in both legs?
    pub answers_match: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn boot_service(cfg: &BatchBenchConfig, window: Duration) -> Arc<UrbaneService> {
    let city = CityModel::nyc_like();
    let mut catalog = DataCatalog::new();
    catalog.register(
        "taxi",
        synthetic_table("taxi", cfg.rows, 7).expect("taxi generator exists"),
    );
    let pyramid = ResolutionPyramid::standard(&city.bbox(), 16, 8, 5);
    let service = UrbaneService::new(
        ServiceConfig {
            join: raster_join::RasterJoinConfig::with_resolution(cfg.resolution),
            cache_capacity: 0,
            default_deadline: Duration::from_secs(60),
            batch_window: window,
            // A full group seals without waiting out the window, so with
            // N closed-loop clients the window is a latency bound for
            // stragglers, not a tax on every batch.
            batch_max: cfg.clients,
            ..Default::default()
        },
        catalog,
        pyramid,
    )
    .expect("service boots");
    Arc::new(service)
}

/// Client `c`'s request: a COUNT whose fare filter is broad enough to
/// keep selectivity ~uniform across clients but distinct enough that no
/// two clients share a cache key.
fn client_request(c: usize) -> QueryRequest {
    QueryRequest::count("taxi", 0).filter(Filter::AttrRange {
        column: "fare".into(),
        min: 0.0,
        max: 500.0 + c as f32,
    })
}

fn run_leg(service: &Arc<UrbaneService>, cfg: &BatchBenchConfig) -> BatchRunStats {
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let service = Arc::clone(service);
            let requests = cfg.requests;
            std::thread::spawn(move || {
                let req = client_request(c);
                let mut latencies = Vec::with_capacity(requests);
                let mut errors = 0usize;
                let mut full = 0usize;
                let mut table: Vec<Option<f64>> = Vec::new();
                for _ in 0..requests {
                    let t0 = Instant::now();
                    match service.query(&req) {
                        Ok(a) => {
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            if a.report.path == GuardPath::Full {
                                full += 1;
                            }
                            table = a.table.values();
                        }
                        Err(_) => errors += 1,
                    }
                }
                (latencies, errors, full, table)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut errors = 0usize;
    let mut full = 0usize;
    let mut tables = Vec::with_capacity(cfg.clients);
    for h in handles {
        let (l, e, f, t) = h.join().expect("bench client thread");
        latencies.extend(l);
        errors += e;
        full += f;
        tables.push(t);
    }
    let span = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let stats: BatchStats = service.batch_stats();
    BatchRunStats {
        completed: latencies.len(),
        errors,
        full,
        throughput_qps: if span > 0.0 { latencies.len() as f64 / span } else { 0.0 },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        batches: stats.batches,
        batched_queries: stats.batched_queries,
        mean_batch_size: if stats.batches > 0 {
            stats.batched_queries as f64 / stats.batches as f64
        } else {
            0.0
        },
        tables,
    }
}

/// Run the suite: identical concurrent workload, window on then off.
pub fn run(cfg: &BatchBenchConfig) -> BatchReport {
    let batched = run_leg(&boot_service(cfg, Duration::from_millis(cfg.window_ms)), cfg);
    let unbatched = run_leg(&boot_service(cfg, Duration::ZERO), cfg);
    let speedup = if unbatched.throughput_qps > 0.0 {
        batched.throughput_qps / unbatched.throughput_qps
    } else {
        0.0
    };
    let answers_match = !batched.tables.is_empty()
        && batched.tables.len() == unbatched.tables.len()
        && batched
            .tables
            .iter()
            .zip(&unbatched.tables)
            .all(|(a, b)| !a.is_empty() && a == b);
    BatchReport { config: cfg.clone(), batched, unbatched, speedup, answers_match }
}

impl BatchReport {
    /// Correctness gate: everything answered, at full fidelity, with
    /// bit-identical tables across the two legs, and the batched leg
    /// actually coalesced at least one multi-member batch. Deliberately
    /// excludes the speedup: timing is environment-dependent and is
    /// reported, not asserted.
    pub fn passed(&self) -> bool {
        self.answers_match
            && self.batched.errors == 0
            && self.unbatched.errors == 0
            && self.batched.full == self.batched.completed
            && self.unbatched.full == self.unbatched.completed
            && self.batched.batches > 0
            && self.batched.batched_queries > self.batched.batches
            && self.unbatched.batches == 0
    }

    /// Hand-rolled JSON (the workspace deliberately has no serde),
    /// written to `BENCH_batch.json`.
    pub fn to_json(&self) -> String {
        let run = |s: &BatchRunStats| {
            format!(
                "{{\"completed\": {}, \"errors\": {}, \"full\": {}, \
                 \"throughput_qps\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                 \"batches\": {}, \"batched_queries\": {}, \"mean_batch_size\": {:.2}}}",
                s.completed,
                s.errors,
                s.full,
                s.throughput_qps,
                s.p50_ms,
                s.p95_ms,
                s.batches,
                s.batched_queries,
                s.mean_batch_size
            )
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"batch\",\n");
        s.push_str(&format!(
            "  \"command\": \"cargo run --release -p urbane-bench --bin repro -- --exp batch \
             --scale {} --clients {} --requests {} --window-ms {} --json BENCH_batch.json\",\n",
            self.config.rows, self.config.clients, self.config.requests, self.config.window_ms
        ));
        s.push_str(&format!("  \"rows\": {},\n", self.config.rows));
        s.push_str(&format!("  \"clients\": {},\n", self.config.clients));
        s.push_str(&format!("  \"requests_per_client\": {},\n", self.config.requests));
        s.push_str(&format!("  \"window_ms\": {},\n", self.config.window_ms));
        s.push_str(&format!("  \"resolution\": {},\n", self.config.resolution));
        s.push_str(&format!("  \"batched\": {},\n", run(&self.batched)));
        s.push_str(&format!("  \"unbatched\": {},\n", run(&self.unbatched)));
        s.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup));
        s.push_str(&format!("  \"answers_match\": {},\n", self.answers_match));
        s.push_str(&format!("  \"passed\": {}\n", self.passed()));
        s.push_str("}\n");
        s
    }

    /// Human-readable table for the repro binary's stdout.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new([
            "run", "q/s", "p50 ms", "p95 ms", "batches", "mean K", "errors",
        ]);
        for (name, s) in [("batched", &self.batched), ("unbatched", &self.unbatched)] {
            t.row([
                name.to_string(),
                format!("{:.2}", s.throughput_qps),
                format!("{:.2}", s.p50_ms),
                format!("{:.2}", s.p95_ms),
                format!("{}", s.batches),
                format!("{:.2}", s.mean_batch_size),
                format!("{}", s.errors),
            ]);
        }
        format!(
            "{}\nbatching speedup: {:.2}x  answers match: {}\n",
            t.render(),
            self.speedup,
            self.answers_match
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted = vec![1.0, 2.0, 3.0];
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn tiny_suite_coalesces_and_matches() {
        // Miniature end-to-end run: enough concurrency for the window to
        // catch at least one pair, small enough for a unit test. The
        // generous window makes coalescing robust on a loaded machine.
        let report = run(&BatchBenchConfig {
            rows: 20_000,
            clients: 4,
            requests: 3,
            window_ms: 150,
            resolution: 512,
        });
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.batched.completed, 12);
        assert_eq!(report.unbatched.completed, 12);
        let json = report.to_json();
        assert!(urbane_geom::geojson::parse_json(&json).is_ok(), "{json}");
    }
}
