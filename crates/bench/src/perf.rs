//! Binning / work-stealing performance suite — the `--exp bench` mode of the
//! `repro` binary and the generator of `BENCH_rasterjoin.json`.
//!
//! The suite times the bounded multi-tile point pass with spatial binning
//! off (every tile scans the full table — the pre-binning executor's cost
//! model) against a prebuilt [`BinnedPointTable`] driven through
//! [`RasterJoin::execute_store`], plus single-tile and accurate-mode
//! controls. Bin construction is timed separately because a session builds
//! bins once and amortizes them over every subsequent frame.
//!
//! Every timed pair is first checked for bit-identical `AggTable`s, so a
//! silently-wrong fast path can never produce a flattering number.

use crate::{median_ms, time_ms, Table};
use crate::workload::Workload;
use raster_join::{
    BinningMode, CanvasSpec, PointStore, QueryBudget, RasterJoin, RasterJoinConfig,
};
use spatial_index::PackedRegionIndex;
use urban_data::binned::BinnedPointTable;
use urban_data::gen::regions::voronoi_neighborhoods;
use urban_data::query::{AggKind, SpatialAggQuery};
use urbane_store::{ChunkedPointSource, StoreBuilder};

/// Knobs for the perf suite (all settable from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Taxi rows for the workload (the headline run uses 1,000,000).
    pub points: usize,
    /// Worker threads for the multi-tile experiments.
    pub threads: usize,
    /// Repetitions per measurement; the median is reported.
    pub reps: usize,
    /// Canvas resolution of the multi-tile experiments.
    pub resolution: u32,
    /// Tile size limit — `resolution / max_tile` per axis gives the grid.
    pub max_tile: u32,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig { points: 1_000_000, threads: 4, reps: 5, resolution: 1024, max_tile: 256 }
    }
}

/// One measured experiment row.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Experiment name (stable across runs — consumers key on it).
    pub name: String,
    /// Median wall-clock latency.
    pub median_ms: f64,
    /// Input points divided by the median latency.
    pub points_per_sec: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Tiles in the canvas plan.
    pub tiles: usize,
    /// Whether the run used a binned point store.
    pub binned: bool,
}

/// One point of the raster-vs-index race: both joins answering the same
/// query over the same points, at one region-set size.
#[derive(Debug, Clone)]
pub struct IndexJoinPoint {
    /// Regions in the set (the race's x axis).
    pub regions: usize,
    /// Median latency of the bounded raster join (ε-approximate).
    pub raster_ms: f64,
    /// Median latency of the exact stored index join (ε = 0).
    pub index_ms: f64,
    /// Chunks the stored join actually read.
    pub chunks_scanned: u64,
    /// Chunks skipped by directory footers without a read.
    pub chunks_pruned: u64,
}

/// The full suite result: rows plus the derived headline numbers.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Config the suite ran with.
    pub config: PerfConfig,
    /// Milliseconds to build the bins (paid once per dataset, not per frame).
    pub bin_build_ms: f64,
    /// Grid dimensions the auto-binner chose.
    pub grid: (u32, u32),
    /// All measured rows.
    pub rows: Vec<PerfRow>,
    /// Unbinned / binned latency ratio for the headline bounded multi-tile
    /// experiment (>1 means binning won).
    pub speedup_bounded_multitile: f64,
    /// Raster-vs-index race across region-set sizes (exact stored index
    /// join from `urbane-store` vs the bounded raster path).
    pub index_join: Vec<IndexJoinPoint>,
    /// Smallest region count at which the raster join beat the exact index
    /// join (`None` when the index join won the whole sweep).
    pub index_crossover_regions: Option<usize>,
}

impl PerfReport {
    /// Hand-rolled JSON (the workspace deliberately has no serde): one
    /// object with per-experiment rows, written to `BENCH_rasterjoin.json`
    /// by `scripts/bench.sh`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"rasterjoin\",\n");
        s.push_str(&format!(
            "  \"command\": \"cargo run --release -p urbane-bench --bin repro -- --exp bench \
             --scale {} --threads {} --reps {} --json BENCH_rasterjoin.json\",\n",
            self.config.points, self.config.threads, self.config.reps
        ));
        s.push_str(&format!("  \"points\": {},\n", self.config.points));
        s.push_str(&format!("  \"threads\": {},\n", self.config.threads));
        s.push_str(&format!("  \"reps\": {},\n", self.config.reps));
        s.push_str(&format!("  \"resolution\": {},\n", self.config.resolution));
        s.push_str(&format!("  \"max_tile\": {},\n", self.config.max_tile));
        s.push_str(&format!("  \"bin_grid\": [{}, {}],\n", self.grid.0, self.grid.1));
        s.push_str(&format!("  \"bin_build_ms\": {:.3},\n", self.bin_build_ms));
        s.push_str(&format!(
            "  \"speedup_bounded_multitile\": {:.3},\n",
            self.speedup_bounded_multitile
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ms\": {:.3}, \"points_per_sec\": {:.0}, \
                 \"threads\": {}, \"tiles\": {}, \"binned\": {}}}{}\n",
                r.name,
                r.median_ms,
                r.points_per_sec,
                r.threads,
                r.tiles,
                r.binned,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"index_join\": [\n");
        for (i, p) in self.index_join.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"regions\": {}, \"raster_ms\": {:.3}, \"index_ms\": {:.3}, \
                 \"chunks_scanned\": {}, \"chunks_pruned\": {}}}{}\n",
                p.regions,
                p.raster_ms,
                p.index_ms,
                p.chunks_scanned,
                p.chunks_pruned,
                if i + 1 < self.index_join.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        match self.index_crossover_regions {
            Some(n) => s.push_str(&format!("  \"index_crossover_regions\": {n}\n")),
            None => s.push_str("  \"index_crossover_regions\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Human-readable table for the repro binary's stdout.
    pub fn render(&self) -> String {
        let mut t = Table::new(["experiment", "median ms", "Mpts/s", "threads", "tiles", "binned"]);
        for r in &self.rows {
            t.row([
                r.name.clone(),
                format!("{:.1}", r.median_ms),
                format!("{:.1}", r.points_per_sec / 1e6),
                format!("{}", r.threads),
                format!("{}", r.tiles),
                format!("{}", r.binned),
            ]);
        }
        format!(
            "BENCH  Binning + work-stealing ({} points, median of {}; bins: {}x{} built in \
             {:.1} ms)\n\n{}\nbounded multi-tile speedup (unbinned / binned): {:.2}x\n\n{}",
            self.config.points,
            self.config.reps,
            self.grid.0,
            self.grid.1,
            self.bin_build_ms,
            t.render(),
            self.speedup_bounded_multitile,
            render_race(&self.index_join, self.index_crossover_regions)
        )
    }
}

fn config(cfg: &PerfConfig, binning: BinningMode, mode: raster_join::ExecutionMode) -> RasterJoinConfig {
    RasterJoinConfig {
        spec: CanvasSpec::Resolution(cfg.resolution),
        max_tile: cfg.max_tile,
        mode,
        threads: cfg.threads,
        binning,
        ..Default::default()
    }
}

/// Run the suite. Deterministic (seeded workload, fixed region set); only
/// the wall-clock numbers vary run to run.
pub fn run(cfg: &PerfConfig) -> PerfReport {
    use raster_join::ExecutionMode::{Accurate, Bounded};
    let w = Workload::standard(cfg.points, 42);
    let regions = w.neighborhoods();
    let q = SpatialAggQuery::new(AggKind::Sum("fare".into()));
    let budget = QueryBudget::unlimited();

    // Bins built once, like a session would; timed separately.
    let (bins, bin_build_ms) = time_ms(|| BinnedPointTable::build(&w.taxi));
    let binned_store = PointStore::with_bins(&w.taxi, &bins);
    let plain_store = PointStore::plain(&w.taxi);

    let mut rows = Vec::new();
    let mut run_pair = |name: &str, mode, threads: usize| -> (f64, f64) {
        let off = RasterJoin::new(RasterJoinConfig {
            threads,
            ..config(cfg, BinningMode::Off, mode)
        });
        // Correctness gate: the binned table must be bit-identical to the
        // unbinned one before either side is worth timing.
        let base = off.execute_store(plain_store, &regions, &q, &budget).expect("unbinned run");
        let fast = off.execute_store(binned_store, &regions, &q, &budget).expect("binned run");
        assert_eq!(base.table, fast.table, "{name}: binned result diverged");
        let tiles = base.tiles;
        let unbinned_ms = median_ms(cfg.reps, || {
            off.execute_store(plain_store, &regions, &q, &budget).expect("unbinned run");
        });
        let binned_ms = median_ms(cfg.reps, || {
            off.execute_store(binned_store, &regions, &q, &budget).expect("binned run");
        });
        for (suffix, ms, binned) in
            [("unbinned", unbinned_ms, false), ("binned", binned_ms, true)]
        {
            rows.push(PerfRow {
                name: format!("{name}_{suffix}"),
                median_ms: ms,
                points_per_sec: cfg.points as f64 / (ms / 1e3),
                threads,
                tiles,
                binned,
            });
        }
        (unbinned_ms, binned_ms)
    };

    let (head_unbinned, head_binned) = run_pair("bounded_multitile", Bounded, cfg.threads);
    run_pair("bounded_multitile_serial", Bounded, 1);
    run_pair("accurate_multitile", Accurate, cfg.threads);

    // Single-tile control: candidates() returns None (viewport covers the
    // bins' bbox), so binned and unbinned must cost the same.
    {
        let single = RasterJoin::new(RasterJoinConfig {
            spec: CanvasSpec::Resolution(cfg.resolution),
            max_tile: cfg.resolution.max(cfg.max_tile),
            threads: 1,
            binning: BinningMode::Off,
            ..Default::default()
        });
        let base = single.execute_store(plain_store, &regions, &q, &budget).expect("single run");
        let fast =
            single.execute_store(binned_store, &regions, &q, &budget).expect("single binned");
        assert_eq!(base.table, fast.table, "single-tile: binned result diverged");
        let ms = median_ms(cfg.reps, || {
            single.execute_store(binned_store, &regions, &q, &budget).expect("single binned");
        });
        rows.push(PerfRow {
            name: "bounded_singletile_binned".into(),
            median_ms: ms,
            points_per_sec: cfg.points as f64 / (ms / 1e3),
            threads: 1,
            tiles: base.tiles,
            binned: true,
        });
    }

    let (index_join, index_crossover_regions) = race(cfg, &w, &q);

    PerfReport {
        config: cfg.clone(),
        bin_build_ms,
        grid: bins.grid_dims(),
        rows,
        speedup_bounded_multitile: head_unbinned / head_binned,
        index_join,
        index_crossover_regions,
    }
}

/// Raster-vs-index race: serialize the workload into an in-memory `.ubs`
/// store once, then at each region-set size time the bounded raster path
/// (ε-approximate) against the exact stored index join (ε = 0). Before
/// either side is timed the streamed join must agree bit-for-bit with the
/// in-memory index join — a silently-wrong stream never races.
fn race(
    cfg: &PerfConfig,
    w: &Workload,
    q: &SpatialAggQuery,
) -> (Vec<IndexJoinPoint>, Option<usize>) {
    use raster_join::ExecutionMode::Bounded;
    let plain_store = PointStore::plain(&w.taxi);
    let store_bytes = StoreBuilder::new().encode(&w.taxi).expect("store encode");
    let budget = QueryBudget::unlimited();
    let mut points = Vec::new();
    for n_regions in [8usize, 32, 128, 512] {
        let set = voronoi_neighborhoods(&w.city.bbox(), n_regions, 42, 2);
        let index = PackedRegionIndex::build(&set);
        let open = || ChunkedPointSource::from_bytes(store_bytes.clone());

        let (stored, stats) = spatial_index::index_join_stored_parallel(
            open, &set, &index, q, &budget, cfg.threads,
        )
        .expect("stored index join");
        let resident = spatial_index::index_join_budgeted(&w.taxi, &set, &index, q, &budget)
            .expect("in-memory index join");
        assert_eq!(stored, resident, "{n_regions} regions: streamed join diverged");

        let raster = RasterJoin::new(config(cfg, BinningMode::Off, Bounded));
        let raster_ms = median_ms(cfg.reps, || {
            raster.execute_store(plain_store, &set, q, &budget).expect("raster run");
        });
        let index_ms = median_ms(cfg.reps, || {
            spatial_index::index_join_stored_parallel(
                open, &set, &index, q, &budget, cfg.threads,
            )
            .expect("stored index join");
        });
        points.push(IndexJoinPoint {
            regions: n_regions,
            raster_ms,
            index_ms,
            chunks_scanned: stats.chunks_scanned,
            chunks_pruned: stats.chunks_pruned,
        });
    }
    let crossover = points.iter().find(|p| p.raster_ms <= p.index_ms).map(|p| p.regions);
    (points, crossover)
}

/// Just the raster-vs-index race (the `repro --exp indexjoin` mode):
/// builds the standard workload and returns the sweep plus the crossover.
pub fn index_join_race(cfg: &PerfConfig) -> (Vec<IndexJoinPoint>, Option<usize>) {
    let w = Workload::standard(cfg.points, 42);
    let q = SpatialAggQuery::new(AggKind::Sum("fare".into()));
    race(cfg, &w, &q)
}

/// Human-readable table for an index-join race run standalone.
pub fn render_race(points: &[IndexJoinPoint], crossover: Option<usize>) -> String {
    let mut t = Table::new(["regions", "raster ms", "index ms", "scanned", "pruned"]);
    for p in points {
        t.row([
            format!("{}", p.regions),
            format!("{:.1}", p.raster_ms),
            format!("{:.1}", p.index_ms),
            format!("{}", p.chunks_scanned),
            format!("{}", p.chunks_pruned),
        ]);
    }
    let crossover = match crossover {
        Some(n) => format!("raster overtakes the exact index join at {n} regions"),
        None => "the exact index join won at every region count".to_string(),
    };
    format!(
        "Raster join (bounded, ε > 0) vs stored index join (exact, ε = 0):\n\n{}\n{crossover}\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_runs_and_serializes() {
        let cfg = PerfConfig {
            points: 20_000,
            threads: 2,
            reps: 1,
            resolution: 256,
            max_tile: 64,
        };
        let report = run(&cfg);
        assert!(report.rows.len() >= 5);
        assert!(report.rows.iter().all(|r| r.median_ms >= 0.0 && r.points_per_sec >= 0.0));
        let json = report.to_json();
        // Structural sanity without a JSON parser: balanced braces, the
        // stable keys present, one object per experiment row.
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"bench\"",
            "\"bin_build_ms\"",
            "\"speedup_bounded_multitile\"",
            "\"experiments\"",
            "\"index_join\"",
            "\"index_crossover_regions\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("\"name\"").count(), report.rows.len());
        assert_eq!(json.matches("\"raster_ms\"").count(), report.index_join.len());
        assert_eq!(report.index_join.len(), 4);
        assert!(report.render().contains("speedup"));
        assert!(report.render().contains("index join"));
    }
}
