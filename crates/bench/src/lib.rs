//! # urbane-bench — experiment harness
//!
//! Shared workload builders and measurement helpers behind both the
//! Criterion benches (`cargo bench -p urbane-bench`) and the `repro` binary
//! that regenerates every experiment table from DESIGN.md §4
//! (`cargo run --release -p urbane-bench --bin repro -- --exp all`).

#![forbid(unsafe_code)]

pub mod batch_bench;
pub mod blockcache_bench;
pub mod experiments;
pub mod perf;
pub mod serve_bench;
pub mod swarm;
pub mod verify_exp;
pub mod workload;

use std::time::Instant;

/// Time a closure, returning `(result, milliseconds)`.
pub fn time_ms<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Run `f` `reps` times and report the median wall-clock milliseconds.
pub fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps >= 1);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    times[times.len() / 2]
}

/// Minimal fixed-width table printer for the repro binary's output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for c in 0..ncols {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", cells[c], w = widths[c]));
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (v, ms) = time_ms(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        let m = median_ms(3, || {});
        assert!(m >= 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["method", "ms"]);
        t.row(["raster-join", "1.5"]);
        t.row(["naive", "10000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert!(lines[3].contains("10000"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
