//! Experiment runners E1–E9 (DESIGN.md §4).
//!
//! Each function regenerates one experiment's table(s) as a string; the
//! `repro` binary prints them and EXPERIMENTS.md records a reference run.

use crate::workload::{demo_start, Workload};
use crate::{median_ms, time_ms, Table};
use raster_join::{
    CanvasSpec, ExecutionMode, PointStrategy, PolygonPath, RasterJoin, RasterJoinConfig,
};
use spatial_index::{
    index_join, index_join_parallel, naive_join, polygon_probe_join, GridIndex, KdTree,
    PreAggCube, QuadTreeIndex, RTreeIndex,
};
use urban_data::filter::Filter;
use urban_data::query::{AggKind, SpatialAggQuery};
use urban_data::time::{TimeBucket, TimeRange, DAY};
use urban_data::RegionSet;
use urbane::view::{ExplorationView, MapView};
use urbane::{DataCatalog, ResolutionPyramid, SessionConfig, UrbaneSession};

/// Repetitions for timed measurements (median reported).
const REPS: usize = 3;

fn rj(config: RasterJoinConfig) -> RasterJoin {
    RasterJoin::new(config)
}

/// E1 — the paper's Figure 1: taxi pickups for January 2009 aggregated over
/// neighborhoods, rendered as a choropleth. Writes `out/map_view.ppm`.
pub fn e1_map_view(scale: usize, out_dir: &str) -> String {
    let w = Workload::standard(scale, 42);
    let regions = w.neighborhoods();
    let query = SpatialAggQuery::count()
        .filter(Filter::Time(TimeRange::new(demo_start(), demo_start() + 30 * DAY)));

    let view = MapView::with_defaults();
    let (img, ms) = time_ms(|| view.render(&w.taxi, &regions, &query, 800, 800).unwrap());

    std::fs::create_dir_all(out_dir).ok();
    let path = format!("{out_dir}/map_view.ppm");
    gpu_raster::ppm::write_ppm(&path, &img.image).expect("write choropleth");

    let mut ranked: Vec<(usize, f64)> = img
        .values
        .iter()
        .enumerate()
        .filter_map(|(r, v)| v.map(|v| (r, v)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let mut t = Table::new(["rank", "neighborhood", "pickups"]);
    for (i, (r, v)) in ranked.iter().take(10).enumerate() {
        t.row([format!("{}", i + 1), regions.region_name(*r as u32).to_string(), format!("{v:.0}")]);
    }
    format!(
        "E1  Map view (taxi pickups, Jan 2009, {} neighborhoods, |P|={})\n\
         choropleth written to {path}; render latency {ms:.1} ms; ε = {eps:.1} m\n\n{table}",
        regions.len(),
        w.taxi.len(),
        eps = img.epsilon,
        table = t.render()
    )
}

/// E2 — scalability: latency vs. |P| for every method.
pub fn e2_scale_points(max_points: usize) -> String {
    let w = Workload::standard(max_points, 42);
    let regions = w.neighborhoods();
    let q = SpatialAggQuery::count();

    let sizes: Vec<usize> = [10_000usize, 100_000, 1_000_000, 5_000_000, 10_000_000]
        .into_iter()
        .filter(|&n| n <= max_points)
        .collect();

    let grid = GridIndex::build_auto(&regions);
    let rtree = RTreeIndex::build(&regions);
    let qt = QuadTreeIndex::build(&regions, 10);
    let bounded = rj(RasterJoinConfig::with_resolution(1024));
    let accurate = rj(RasterJoinConfig::accurate(1024));

    let mut t = Table::new([
        "|P|",
        "rj-bounded ms",
        "rj-accurate ms",
        "grid-join ms",
        "rtree-join ms",
        "quadtree ms",
        "grid-par4 ms",
        "naive ms",
    ]);
    for &n in &sizes {
        let pts = w.taxi.prefix(n);
        let b = median_ms(REPS, || {
            bounded.execute(&pts, &regions, &q).unwrap();
        });
        let a = median_ms(REPS, || {
            accurate.execute(&pts, &regions, &q).unwrap();
        });
        let g = median_ms(REPS, || {
            index_join(&pts, &regions, &grid, &q).unwrap();
        });
        let r = median_ms(REPS, || {
            index_join(&pts, &regions, &rtree, &q).unwrap();
        });
        let qd = median_ms(REPS, || {
            index_join(&pts, &regions, &qt, &q).unwrap();
        });
        let gp = median_ms(REPS, || {
            index_join_parallel(&pts, &regions, &grid, &q, 4).unwrap();
        });
        let nv = if n <= 100_000 {
            format!("{:.1}", median_ms(1, || {
                naive_join(&pts, &regions, &q).unwrap();
            }))
        } else {
            "-".to_string()
        };
        t.row([
            format!("{n}"),
            format!("{b:.1}"),
            format!("{a:.1}"),
            format!("{g:.1}"),
            format!("{r:.1}"),
            format!("{qd:.1}"),
            format!("{gp:.1}"),
            nv,
        ]);
    }
    format!(
        "E2  Latency vs. point count (COUNT over {} neighborhoods; median of {REPS})\n\n{}",
        regions.len(),
        t.render()
    )
}

/// E3 — latency vs. polygon complexity (region count and vertex count).
pub fn e3_polygon_complexity(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let pts = &w.taxi;
    let q = SpatialAggQuery::count();

    let sets: Vec<(&str, RegionSet)> = vec![
        ("boroughs", w.boroughs()),
        ("neighborhoods", w.neighborhoods()),
        ("tracts-grid", w.tracts()),
        ("fine-grid", w.fine_grid()),
        ("stars-64v", w.stars(260, 64)),
        ("stars-256v", w.stars(260, 256)),
    ];

    let bounded = rj(RasterJoinConfig::with_resolution(1024));
    let kdtree = KdTree::build(pts);
    let mut t = Table::new([
        "regions",
        "count",
        "vertices",
        "rj-bounded ms",
        "grid-join ms",
        "rtree-join ms",
        "kd-probe ms",
    ]);
    for (name, rs) in &sets {
        let b = median_ms(REPS, || {
            bounded.execute(pts, rs, &q).unwrap();
        });
        let (grid, _) = time_ms(|| GridIndex::build_auto(rs));
        let g = median_ms(REPS, || {
            index_join(pts, rs, &grid, &q).unwrap();
        });
        let (rtree, _) = time_ms(|| RTreeIndex::build(rs));
        let r = median_ms(REPS, || {
            index_join(pts, rs, &rtree, &q).unwrap();
        });
        let k = median_ms(REPS, || {
            polygon_probe_join(pts, &kdtree, rs, &q).unwrap();
        });
        t.row([
            name.to_string(),
            format!("{}", rs.len()),
            format!("{}", rs.total_vertices()),
            format!("{b:.1}"),
            format!("{g:.1}"),
            format!("{r:.1}"),
            format!("{k:.1}"),
        ]);
    }
    format!(
        "E3  Latency vs. polygon complexity (|P| = {points}, COUNT; median of {REPS})\n\n{}",
        t.render()
    )
}

/// E4 — bounded-join accuracy vs. ε: measured error must stay under the
/// guaranteed bound; accurate mode must be exact.
pub fn e4_accuracy(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let pts = &w.taxi;
    let regions = w.neighborhoods();
    let q = SpatialAggQuery::count();
    let truth = naive_join(pts, &regions, &q).unwrap();
    let truth_total = truth.total_count() as f64;

    let mut t = Table::new([
        "canvas",
        "ε (m)",
        "max |Δcount|",
        "total rel err",
        "ms",
    ]);
    for res in [128u32, 256, 512, 1024, 2048, 4096] {
        let join = rj(RasterJoinConfig::with_resolution(res));
        let (result, ms) = time_ms(|| join.execute(pts, &regions, &q).unwrap());
        let max_abs = result.table.max_abs_diff(&truth);
        let total_rel =
            (result.table.total_count() as f64 - truth_total).abs() / truth_total.max(1.0);
        t.row([
            format!("{res}"),
            format!("{:.1}", result.epsilon),
            format!("{max_abs:.0}"),
            format!("{total_rel:.5}"),
            format!("{ms:.1}"),
        ]);
    }
    // Weighted row: fractional boundary folding at the same 1024 canvas.
    let join = rj(RasterJoinConfig::weighted(1024));
    let (result, ms) = time_ms(|| join.execute(pts, &regions, &q).unwrap());
    let max_abs = result.table.max_abs_diff(&truth);
    let total_rel =
        (result.table.values().iter().flatten().sum::<f64>() - truth_total).abs()
            / truth_total.max(1.0);
    t.row([
        "1024 wgt".into(),
        "38.5*".into(),
        format!("{max_abs:.0}"),
        format!("{total_rel:.5}"),
        format!("{ms:.1}"),
    ]);

    // Accurate row.
    let join = rj(RasterJoinConfig::accurate(1024));
    let (result, ms) = time_ms(|| join.execute(pts, &regions, &q).unwrap());
    let max_abs = result.table.max_abs_diff(&truth);
    t.row([
        "1024+fix".into(),
        "exact".into(),
        format!("{max_abs:.0}"),
        "0.00000".into(),
        format!("{ms:.1}"),
    ]);

    format!(
        "E4  Bounded accuracy vs. ε (|P| = {points}, {} neighborhoods; exact join as truth)\n\
         (* weighted: same canvas, boundary pixels folded by exact area fraction)\n\n{}",
        regions.len(),
        t.render()
    )
}

/// E5 — ad-hoc filters: why pre-aggregation fails.
pub fn e5_filters(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let pts = &w.taxi;
    let regions = w.neighborhoods();
    let start = demo_start();

    let (cube, cube_build_ms) = time_ms(|| {
        PreAggCube::build(pts, &regions, TimeBucket::Day, Some("passengers"), Some("fare"))
            .unwrap()
    });
    let grid = GridIndex::build_auto(&regions);
    let bounded = rj(RasterJoinConfig::with_resolution(1024));

    let queries: Vec<(&str, SpatialAggQuery)> = vec![
        ("no filter", SpatialAggQuery::count()),
        (
            "day-aligned time (cube-friendly)",
            SpatialAggQuery::count().filter(Filter::Time(TimeRange::new(start, start + 7 * DAY))),
        ),
        (
            "unaligned time (ad hoc)",
            SpatialAggQuery::count()
                .filter(Filter::Time(TimeRange::new(start + 3 * 3600, start + 5 * DAY + 7 * 3600))),
        ),
        (
            "fare range (ad hoc)",
            SpatialAggQuery::count().filter(Filter::AttrRange {
                column: "fare".into(),
                min: 10.0,
                max: 30.0,
            }),
        ),
        (
            "fare range + time (ad hoc)",
            SpatialAggQuery::count()
                .filter(Filter::AttrRange { column: "fare".into(), min: 10.0, max: 30.0 })
                .filter(Filter::Time(TimeRange::new(start, start + 7 * DAY))),
        ),
    ];

    let mut t = Table::new(["query", "selectivity", "rj ms", "grid ms", "cube"]);
    for (name, q) in &queries {
        let sel = q.filters.selectivity(pts).unwrap();
        let b = median_ms(REPS, || {
            bounded.execute(pts, &regions, q).unwrap();
        });
        let g = median_ms(REPS, || {
            index_join(pts, &regions, &grid, q).unwrap();
        });
        let cube_cell = match cube.query(q) {
            Ok(_) => {
                let ms = median_ms(REPS, || {
                    cube.query(q).unwrap();
                });
                format!("{ms:.2} ms")
            }
            Err(e) => format!("UNSUPPORTED ({e})"),
        };
        t.row([
            name.to_string(),
            format!("{sel:.2}"),
            format!("{b:.1}"),
            format!("{g:.1}"),
            cube_cell,
        ]);
    }
    format!(
        "E5  Ad-hoc filter support (|P| = {points}; cube: day × passengers × fare, built in {cube_build_ms:.0} ms, {} cells)\n\n{}",
        cube.cell_count(),
        t.render()
    )
}

/// E6 — interactive-session latency per interaction kind.
pub fn e6_interaction(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let mut catalog = DataCatalog::new();
    catalog.register("taxi", w.taxi.clone());
    catalog.register("311", w.complaints.clone());
    catalog.register("crime", w.crime.clone());
    let pyramid = ResolutionPyramid::standard(&w.city.bbox(), 260, 46, 42);
    let mut session = UrbaneSession::new(
        SessionConfig { join: RasterJoinConfig::with_resolution(1024), ..Default::default() },
        catalog,
        pyramid,
    )
    .expect("experiment catalog is non-empty");
    session.select_dataset("taxi").unwrap();
    session.select_resolution(1).unwrap();
    let start = demo_start();

    let mut t = Table::new(["interaction", "latency ms"]);
    let mut step = |name: &str, session: &mut UrbaneSession| {
        let (_, ms) = time_ms(|| session.evaluate().unwrap());
        t.row([name.to_string(), format!("{ms:.1}")]);
    };

    step("initial view (neighborhoods)", &mut session);
    step("repeat view (cache hit)", &mut session);
    session.set_time_window(Some(TimeRange::new(start, start + 7 * DAY)));
    step("time slider: week 1", &mut session);
    session.set_time_window(Some(TimeRange::new(start + 7 * DAY, start + 14 * DAY)));
    step("time slider: week 2", &mut session);
    session.select_resolution(0).unwrap();
    step("resolution: boroughs", &mut session);
    session.select_resolution(2).unwrap();
    step("resolution: tract grid", &mut session);
    session.select_resolution(1).unwrap();
    session.select_dataset("311").unwrap();
    step("dataset swap: 311", &mut session);
    session.select_dataset("crime").unwrap();
    step("dataset swap: crime", &mut session);
    session.select_dataset("taxi").unwrap();
    session.set_filters(vec![Filter::AttrRange {
        column: "fare".into(),
        min: 20.0,
        max: 100.0,
    }]);
    step("attribute filter: fare > $20", &mut session);
    session.set_filters(vec![]);

    // Pan/zoom only re-renders the choropleth — the aggregates are cached.
    session.zoom(0.5);
    let (_, ms) = time_ms(|| session.render_map().unwrap());
    t.row(["zoom in 2x (render only)".to_string(), format!("{ms:.1}")]);
    session.pan(0.25, 0.0);
    let (_, ms) = time_ms(|| session.render_map().unwrap());
    t.row(["pan east (render only)".to_string(), format!("{ms:.1}")]);
    session.reset_view();

    // Progressive preview: sample-then-refine during slider drags.
    let (_, ms) = time_ms(|| session.evaluate_preview(50_000).unwrap());
    t.row(["preview (50k sample)".to_string(), format!("{ms:.1}")]);

    let st = session.cache_stats();
    format!(
        "E6  Interactive session latency (|P| = {points}, canvas 1024; cache: {} hits / {} misses)\n\n{}",
        st.hits,
        st.misses,
        t.render()
    )
}

/// E7 — the data-exploration view: time series, ranking, similarity.
pub fn e7_exploration(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let regions = w.neighborhoods();
    let view = ExplorationView::new(RasterJoinConfig::with_resolution(1024));
    let start = demo_start();
    let range = TimeRange::new(start, start + 28 * DAY);

    let (series, series_ms) = time_ms(|| {
        view.time_series("taxi", &w.taxi, &regions, &SpatialAggQuery::count(), range, TimeBucket::Week)
            .unwrap()
    });

    let (ranked, rank_ms) =
        time_ms(|| view.rank_regions(&w.taxi, &regions, &SpatialAggQuery::count()).unwrap());

    let metrics = vec![
        ("taxi", &w.taxi, SpatialAggQuery::count()),
        ("311", &w.complaints, SpatialAggQuery::count()),
        ("crime", &w.crime, SpatialAggQuery::count()),
        ("avg fare", &w.taxi, SpatialAggQuery::new(AggKind::Avg("fare".into()))),
    ];
    let (profiles, prof_ms) = time_ms(|| view.profiles(&metrics, &regions).unwrap());
    let reference = ranked[0].0;
    let similar = ExplorationView::most_similar(&profiles, reference, 3);

    let mut t1 = Table::new(["week", "top region series (pickups)"]);
    for (i, b) in series.buckets.iter().enumerate() {
        t1.row([
            format!("{} (+{}d)", i + 1, (b.start - start) / DAY),
            format!("{:.0}", series.region(reference)[i].unwrap_or(0.0)),
        ]);
    }
    let mut t2 = Table::new(["rank", "neighborhood", "pickups"]);
    for (i, (r, v)) in ranked.iter().take(5).enumerate() {
        t2.row([
            format!("{}", i + 1),
            regions.region_name(*r).to_string(),
            format!("{:.0}", v.unwrap_or(0.0)),
        ]);
    }
    let mut t3 = Table::new(["similar to top region", "distance"]);
    for (r, d) in &similar {
        t3.row([regions.region_name(*r).to_string(), format!("{d:.3}")]);
    }

    format!(
        "E7  Data-exploration view (|P| = {points}, {} neighborhoods)\n\
         weekly series: {series_ms:.0} ms  |  ranking: {rank_ms:.0} ms  |  4-metric profiles: {prof_ms:.0} ms\n\n\
         {}\n{}\n{}",
        regions.len(),
        t1.render(),
        t2.render(),
        t3.render()
    )
}

/// E8 — aggregate-function coverage: all five AGGs, bounded vs. accurate vs.
/// exact.
pub fn e8_aggregates(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let pts = &w.taxi;
    let regions = w.neighborhoods();

    let aggs = [
        AggKind::Count,
        AggKind::Sum("fare".into()),
        AggKind::Avg("fare".into()),
        AggKind::Min("fare".into()),
        AggKind::Max("fare".into()),
    ];
    let bounded = rj(RasterJoinConfig::with_resolution(1024));
    let accurate = rj(RasterJoinConfig::accurate(1024));

    let mut t = Table::new(["AGG", "bounded ms", "bounded max rel err", "accurate ms", "accurate exact?"]);
    for agg in &aggs {
        let q = SpatialAggQuery::new(agg.clone());
        let truth = naive_join(pts, &regions, &q).unwrap();
        let (b_res, b_ms) = time_ms(|| bounded.execute(pts, &regions, &q).unwrap());
        let (a_res, a_ms) = time_ms(|| accurate.execute(pts, &regions, &q).unwrap());
        // Max relative error over regions with data.
        let rel = |res: &urban_data::AggTable| {
            truth
                .values()
                .iter()
                .zip(res.values())
                .filter_map(|(t, g)| match (t, g) {
                    (Some(t), Some(g)) if t.abs() > 1e-9 => Some(((g - t) / t).abs()),
                    (Some(_), None) => Some(1.0),
                    _ => None,
                })
                .fold(0.0f64, f64::max)
        };
        let exact = truth
            .values()
            .iter()
            .zip(a_res.table.values())
            .all(|(t, g)| match (t, g) {
                (Some(t), Some(g)) => (t - g).abs() < 1e-3 * t.abs().max(1.0),
                (None, None) => true,
                _ => false,
            });
        t.row([
            format!("{agg:?}"),
            format!("{b_ms:.1}"),
            format!("{:.4}", rel(&b_res.table)),
            format!("{a_ms:.1}"),
            if exact { "yes".into() } else { "NO".to_string() },
        ]);
    }
    format!("E8  Aggregate coverage (|P| = {points}, {} neighborhoods)\n\n{}", regions.len(), t.render())
}

/// E9 — ablations on the design choices (DESIGN.md §6).
pub fn e9_ablation(points: usize) -> String {
    let w = Workload::standard(points, 42);
    let pts = &w.taxi;
    let nbhd = w.neighborhoods();
    let tracts = w.tracts();
    let q = SpatialAggQuery::count();

    let mut t = Table::new(["variant", "region set", "ms", "note"]);
    let run = |name: &str, rs: &RegionSet, cfg: RasterJoinConfig, note: &str, t: &mut Table| {
        let join = rj(cfg);
        let ms = median_ms(REPS, || {
            join.execute(pts, rs, &q).unwrap();
        });
        t.row([name.to_string(), rs.name().to_string(), format!("{ms:.1}"), note.to_string()]);
    };

    // 9.1 points-first vs id-buffer (partition required for id-buffer).
    run("points-first", &tracts, RasterJoinConfig::with_resolution(1024), "paper strategy", &mut t);
    run(
        "id-buffer",
        &tracts,
        RasterJoinConfig {
            strategy: PointStrategy::IdBuffer,
            spec: CanvasSpec::Resolution(1024),
            ..Default::default()
        },
        "partitions only",
        &mut t,
    );
    // 9.2 scanline vs triangulated.
    run("scanline fill", &nbhd, RasterJoinConfig::with_resolution(1024), "CPU fast path", &mut t);
    run(
        "triangulated",
        &nbhd,
        RasterJoinConfig {
            path: PolygonPath::Triangulated,
            spec: CanvasSpec::Resolution(1024),
            ..Default::default()
        },
        "GPU-faithful path",
        &mut t,
    );
    // 9.3 tiling.
    for (max_tile, note) in [(4096u32, "single tile"), (512, "4x4-ish tiles"), (256, "8x8-ish tiles")] {
        run(
            &format!("tile<= {max_tile}"),
            &nbhd,
            RasterJoinConfig {
                spec: CanvasSpec::Resolution(1024),
                max_tile,
                ..Default::default()
            },
            note,
            &mut t,
        );
        run(
            &format!("tile<= {max_tile} x4thr"),
            &nbhd,
            RasterJoinConfig {
                spec: CanvasSpec::Resolution(1024),
                max_tile,
                threads: 4,
                ..Default::default()
            },
            "threaded tiles",
            &mut t,
        );
    }
    // 9.4 bounded vs accurate (cost of the boundary fix-up).
    run("bounded", &nbhd, RasterJoinConfig::with_resolution(1024), "ε-approximate", &mut t);
    run(
        "accurate",
        &nbhd,
        RasterJoinConfig {
            mode: ExecutionMode::Accurate,
            spec: CanvasSpec::Resolution(1024),
            ..Default::default()
        },
        "boundary fix-up",
        &mut t,
    );

    // 9.5 prepared (polygon raster cached across queries) vs one-shot.
    for (mode, label) in [
        (ExecutionMode::Bounded, "prepared bounded"),
        (ExecutionMode::Accurate, "prepared accurate"),
    ] {
        let (prepared, prep_ms) = time_ms(|| {
            raster_join::PreparedRasterJoin::prepare(&nbhd, CanvasSpec::Resolution(1024), 2048, mode)
                .unwrap()
        });
        let ms = median_ms(REPS, || {
            prepared.execute(pts, &q).unwrap();
        });
        t.row([
            label.to_string(),
            nbhd.name().to_string(),
            format!("{ms:.1}"),
            format!("polygon raster cached (prep {prep_ms:.0} ms)"),
        ]);
    }

    format!("E9  Ablations (|P| = {points}, COUNT)\n\n{}", t.render())
}


/// E10 — adaptive planning: the planner must track the best executor across
/// query selectivities (extension; DESIGN.md §7).
pub fn e10_planner(points: usize) -> String {
    use std::sync::Arc;
    use urbane::{PlannerConfig, QueryPlanner};

    let w = Workload::standard(points, 42);
    let regions = w.neighborhoods();
    let start = demo_start();
    let (planner, build_ms) = time_ms(|| {
        QueryPlanner::build(
            Arc::new(w.taxi.clone()),
            Arc::new(regions.clone()),
            PlannerConfig::default(),
        )
        .unwrap()
    });

    // Fixed executors for comparison.
    let bounded = rj(RasterJoinConfig::with_resolution(1024));
    let grid = GridIndex::build_auto(&regions);
    let partitions = spatial_index::TimePartitionedPoints::build(&w.taxi, DAY);

    let queries: Vec<(&str, SpatialAggQuery)> = vec![
        ("no filter (cube-aligned)", SpatialAggQuery::count()),
        (
            "one week, day-aligned",
            SpatialAggQuery::count().filter(Filter::Time(TimeRange::new(start, start + 7 * DAY))),
        ),
        (
            "one hour, unaligned",
            SpatialAggQuery::count().filter(Filter::Time(TimeRange::new(
                start + 5 * DAY + 1800,
                start + 5 * DAY + 5400,
            ))),
        ),
        (
            "broad fare filter",
            SpatialAggQuery::count().filter(Filter::AttrRange {
                column: "fare".into(),
                min: 5.0,
                max: 1e9,
            }),
        ),
        (
            "narrow fare + 2 days",
            SpatialAggQuery::count()
                .filter(Filter::AttrRange { column: "fare".into(), min: 60.0, max: 1e9 })
                .filter(Filter::Time(TimeRange::new(start + 3600, start + 2 * DAY))),
        ),
    ];

    let mut t = Table::new(["query", "est. rows", "chosen", "planner ms", "rj ms", "st-index ms"]);
    for (name, q) in &queries {
        let est = planner.estimate_surviving_rows(q);
        let (result, _) = time_ms(|| planner.execute(q).unwrap());
        let choice = format!("{:?}", result.1);
        let pm = median_ms(REPS, || {
            planner.execute(q).unwrap();
        });
        let bm = median_ms(REPS, || {
            bounded.execute(&w.taxi, &regions, q).unwrap();
        });
        let sm = median_ms(REPS, || {
            spatial_index::st_index_join(&w.taxi, &partitions, &regions, &grid, q).unwrap();
        });
        t.row([
            name.to_string(),
            format!("{est:.0}"),
            choice,
            format!("{pm:.2}"),
            format!("{bm:.1}"),
            format!("{sm:.1}"),
        ]);
    }
    format!(
        "E10 Adaptive planner (|P| = {points}; artifacts built once in {build_ms:.0} ms)\n\n{}",
        t.render()
    )
}

/// Run every experiment at `scale` points, concatenating the reports.
pub fn run_all(scale: usize, out_dir: &str) -> String {
    let mut s = String::new();
    for part in [
        e1_map_view(scale, out_dir),
        e2_scale_points(scale),
        e3_polygon_complexity(scale),
        e4_accuracy(scale.min(1_000_000)),
        e5_filters(scale),
        e6_interaction(scale),
        e7_exploration(scale),
        e8_aggregates(scale.min(1_000_000)),
        e9_ablation(scale),
        e10_planner(scale),
    ] {
        s.push_str(&part);
        s.push_str("\n\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-test every experiment at a tiny scale — the repro binary must
    /// never break.
    #[test]
    fn all_experiments_run_at_small_scale() {
        let out = run_all(20_000, "/tmp/urbane_bench_test_out");
        for tag in ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"] {
            assert!(out.contains(tag), "missing section {tag}");
        }
        assert!(out.contains("UNSUPPORTED"), "E5 must show the cube's gap");
        assert!(out.contains("yes"), "E8 must confirm accurate exactness");
    }
}
