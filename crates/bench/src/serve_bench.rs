//! Closed-loop load generator for the serving layer — the `--exp serve`
//! mode of the `repro` binary and the generator of `BENCH_serve.json`.
//!
//! N client threads hold persistent connections to an in-process
//! [`UrbaneServer`] and issue `POST /query` back-to-back from a small pool
//! of distinct queries — the dashboard-style workload the query-result
//! cache exists for (many analysts looking at the same handful of views).
//! The identical workload runs twice, cache on then cache off, so the
//! reported speedup isolates exactly one variable.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};
use urbane::catalog::DataCatalog;
use urbane::service::{ServiceConfig, UrbaneService};
use urbane::ResolutionPyramid;
use urbane_serve::router::synthetic_table;
use urbane_serve::{Client, ServerConfig, UrbaneServer};
use urban_data::gen::city::CityModel;
use urban_data::time::DAY;

/// Knobs for the serve suite (all settable from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Taxi rows in the served dataset.
    pub rows: usize,
    /// Concurrent closed-loop clients (kept ≤ workers so admission control
    /// never sheds — this suite measures service time, not queue policy).
    pub clients: usize,
    /// Requests per client per run.
    pub requests: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Distinct queries the clients cycle through (the cache's working set).
    pub distinct_queries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { rows: 200_000, clients: 2, requests: 60, workers: 2, distinct_queries: 8 }
    }
}

/// Measured outcome of one run (one cache setting).
#[derive(Debug, Clone)]
pub struct ServeRunStats {
    /// Completed 200-status requests.
    pub completed: usize,
    /// Non-200 responses (should be 0 for this workload).
    pub errors: usize,
    /// Requests per second over the run's wall-clock span.
    pub throughput_rps: f64,
    /// Latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Query-cache hits observed by the service.
    pub cache_hits: u64,
}

/// The full suite result.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Config the suite ran with.
    pub config: ServeConfig,
    /// The run with the query-result cache enabled.
    pub cache_on: ServeRunStats,
    /// The run with the cache disabled (capacity 0).
    pub cache_off: ServeRunStats,
    /// Throughput ratio, cache on / cache off.
    pub speedup: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The query pool: `distinct` single-day time windows over the taxi set.
fn query_bodies(distinct: usize) -> Vec<String> {
    (0..distinct.max(1))
        .map(|i| {
            let start = i as i64 * DAY;
            format!(
                "{{\"dataset\":\"taxi\",\"level\":1,\"filters\":[{{\"type\":\"time\",\"start\":{start},\"end\":{}}}]}}",
                start + DAY
            )
        })
        .collect()
}

fn run_once(addr: SocketAddr, service: &Arc<UrbaneService>, cfg: &ServeConfig) -> ServeRunStats {
    let bodies = Arc::new(query_bodies(cfg.distinct_queries));
    let hits_before = service.cache_stats().hits;
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            let requests = cfg.requests;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(30))
                    .expect("bench client connects");
                let mut latencies = Vec::with_capacity(requests);
                let mut errors = 0usize;
                for i in 0..requests {
                    // Offset per client so the runs interleave the pool.
                    let body = &bodies[(c + i) % bodies.len()];
                    let t0 = Instant::now();
                    match client.post("/query", body) {
                        Ok(resp) if resp.status == 200 => {
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3)
                        }
                        _ => errors += 1,
                    }
                }
                (latencies, errors)
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for h in handles {
        let (l, e) = h.join().expect("bench client thread");
        latencies.extend(l);
        errors += e;
    }
    let span = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ServeRunStats {
        completed: latencies.len(),
        errors,
        throughput_rps: if span > 0.0 { latencies.len() as f64 / span } else { 0.0 },
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        cache_hits: service.cache_stats().hits - hits_before,
    }
}

fn boot_server(cfg: &ServeConfig, cache_capacity: usize) -> UrbaneServer {
    let city = CityModel::nyc_like();
    let mut catalog = DataCatalog::new();
    catalog.register(
        "taxi",
        synthetic_table("taxi", cfg.rows, 7).expect("taxi generator exists"),
    );
    let pyramid = ResolutionPyramid::standard(&city.bbox(), 16, 8, 5);
    let service = UrbaneService::new(
        ServiceConfig {
            join: raster_join::RasterJoinConfig::with_resolution(512),
            cache_capacity,
            default_deadline: Duration::from_secs(30),
            ..Default::default()
        },
        catalog,
        pyramid,
    )
    .expect("service boots");
    UrbaneServer::start(
        ServerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.clients.max(4) * 2,
            ..Default::default()
        },
        Arc::new(service),
    )
    .expect("server binds an ephemeral port")
}

/// Run the suite: identical closed-loop workload, cache on then off.
pub fn run(cfg: &ServeConfig) -> ServeReport {
    let cache_on = {
        let server = boot_server(cfg, 1024);
        let stats = run_once(server.addr(), server.service(), cfg);
        server.shutdown();
        stats
    };
    let cache_off = {
        let server = boot_server(cfg, 0);
        let stats = run_once(server.addr(), server.service(), cfg);
        server.shutdown();
        stats
    };
    let speedup = if cache_off.throughput_rps > 0.0 {
        cache_on.throughput_rps / cache_off.throughput_rps
    } else {
        0.0
    };
    ServeReport { config: cfg.clone(), cache_on, cache_off, speedup }
}

impl ServeReport {
    /// Hand-rolled JSON (the workspace deliberately has no serde), written
    /// to `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let run = |s: &ServeRunStats| {
            format!(
                "{{\"completed\": {}, \"errors\": {}, \"throughput_rps\": {:.1}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}}}",
                s.completed, s.errors, s.throughput_rps, s.p50_ms, s.p95_ms, s.p99_ms, s.cache_hits
            )
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"serve\",\n");
        s.push_str(&format!(
            "  \"command\": \"cargo run --release -p urbane-bench --bin repro -- --exp serve \
             --scale {} --clients {} --requests {} --threads {} --json BENCH_serve.json\",\n",
            self.config.rows, self.config.clients, self.config.requests, self.config.workers
        ));
        s.push_str(&format!("  \"rows\": {},\n", self.config.rows));
        s.push_str(&format!("  \"clients\": {},\n", self.config.clients));
        s.push_str(&format!("  \"requests_per_client\": {},\n", self.config.requests));
        s.push_str(&format!("  \"workers\": {},\n", self.config.workers));
        s.push_str(&format!("  \"distinct_queries\": {},\n", self.config.distinct_queries));
        s.push_str(&format!("  \"cache_on\": {},\n", run(&self.cache_on)));
        s.push_str(&format!("  \"cache_off\": {},\n", run(&self.cache_off)));
        s.push_str(&format!("  \"speedup\": {:.3}\n", self.speedup));
        s.push_str("}\n");
        s
    }

    /// Human-readable table for the repro binary's stdout.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(["run", "req/s", "p50 ms", "p95 ms", "p99 ms", "hits", "errors"]);
        for (name, s) in [("cache on", &self.cache_on), ("cache off", &self.cache_off)] {
            t.row([
                name.to_string(),
                format!("{:.1}", s.throughput_rps),
                format!("{:.2}", s.p50_ms),
                format!("{:.2}", s.p95_ms),
                format!("{:.2}", s.p99_ms),
                format!("{}", s.cache_hits),
                format!("{}", s.errors),
            ]);
        }
        format!("{}\ncache speedup: {:.2}x\n", t.render(), self.speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert_eq!(percentile(&sorted, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn tiny_suite_reports_cache_speedup() {
        // Miniature end-to-end run: enough traffic for hits to dominate
        // with the cache on, small enough for a unit test.
        let report = run(&ServeConfig {
            rows: 20_000,
            clients: 2,
            requests: 12,
            workers: 2,
            distinct_queries: 4,
        });
        assert_eq!(report.cache_on.errors, 0);
        assert_eq!(report.cache_off.errors, 0);
        assert_eq!(report.cache_on.completed, 24);
        assert!(report.cache_on.cache_hits > 0, "repeated queries must hit");
        assert_eq!(report.cache_off.cache_hits, 0, "capacity 0 disables the cache");
        let json = report.to_json();
        assert!(urbane_geom::geojson::parse_json(&json).is_ok(), "{json}");
    }
}
