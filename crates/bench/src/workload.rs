//! Standard workloads shared by every experiment: the NYC-like city, its
//! taxi/311/crime data sets, and the resolution pyramid — all seeded, so
//! every table in EXPERIMENTS.md is regenerable bit-for-bit.

use urban_data::gen::city::CityModel;
use urban_data::gen::events::{generate_complaints, generate_crime, EventConfig};
use urban_data::gen::regions::{boroughs, grid_regions, star_regions, voronoi_neighborhoods};
use urban_data::gen::taxi::{generate_taxi, TaxiConfig};
use urban_data::time::timestamp;
use urban_data::{PointTable, RegionSet};

/// The demo's reference timestamp: 2009-01-01 (the paper's Figure 1 month).
pub fn demo_start() -> i64 {
    timestamp(2009, 1, 1, 0, 0, 0)
}

/// The standard workload bundle.
pub struct Workload {
    /// The city model.
    pub city: CityModel,
    /// Taxi pickups (the largest data set).
    pub taxi: PointTable,
    /// 311 complaints.
    pub complaints: PointTable,
    /// Crime incidents.
    pub crime: PointTable,
}

impl Workload {
    /// Build the standard workload at a given taxi cardinality. The event
    /// data sets scale at 1/5 and 1/10 of the taxi rows (roughly matching
    /// the real NYC data volume ratios).
    pub fn standard(taxi_rows: usize, seed: u64) -> Self {
        let city = CityModel::nyc_like();
        let start = demo_start();
        let taxi =
            generate_taxi(&city, &TaxiConfig { rows: taxi_rows, seed, start, days: 30 });
        let complaints = generate_complaints(
            &city,
            &EventConfig { rows: taxi_rows / 5, seed: seed + 1, start, days: 30, n_types: 12 },
        );
        let crime = generate_crime(
            &city,
            &EventConfig { rows: taxi_rows / 10, seed: seed + 2, start, days: 30, n_types: 10 },
        );
        Workload { city, taxi, complaints, crime }
    }

    /// The demo's neighborhood region set (260 regions, like NYC's NTAs).
    pub fn neighborhoods(&self) -> RegionSet {
        voronoi_neighborhoods(&self.city.bbox(), 260, 42, 2)
    }

    /// The borough region set (5 regions).
    pub fn boroughs(&self) -> RegionSet {
        boroughs(&self.city.bbox())
    }

    /// Census-tract-like grid (~2.1k regions, like NYC's tracts).
    pub fn tracts(&self) -> RegionSet {
        grid_regions(&self.city.bbox(), 46, 46)
    }

    /// Fine grid (~10k regions).
    pub fn fine_grid(&self) -> RegionSet {
        grid_regions(&self.city.bbox(), 100, 100)
    }

    /// Complex non-convex stress polygons (E3's vertex-count axis).
    pub fn stars(&self, n: usize, vertices: usize) -> RegionSet {
        star_regions(&self.city.bbox(), n, vertices, 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_shapes() {
        let w = Workload::standard(10_000, 1);
        assert_eq!(w.taxi.len(), 10_000);
        assert_eq!(w.complaints.len(), 2_000);
        assert_eq!(w.crime.len(), 1_000);
        assert!(w.city.bbox().contains_box(&w.taxi.bbox()));
    }

    #[test]
    fn region_sets_have_expected_cardinalities() {
        let w = Workload::standard(100, 1);
        assert_eq!(w.boroughs().len(), 5);
        assert_eq!(w.neighborhoods().len(), 260);
        assert_eq!(w.tracts().len(), 46 * 46);
        assert_eq!(w.stars(50, 64).len(), 50);
    }

    #[test]
    fn deterministic() {
        let a = Workload::standard(1_000, 3);
        let b = Workload::standard(1_000, 3);
        assert_eq!(a.taxi, b.taxi);
        assert_eq!(a.neighborhoods(), b.neighborhoods());
    }
}
