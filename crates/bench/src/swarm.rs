//! Chaos-driven swarm harness for the sharded front — the `--exp swarm`
//! mode of the `repro` binary and the generator of `BENCH_swarm.json`.
//!
//! A closed loop of client threads issues a zipfian query mix (a few hot
//! views, a long tail) against a [`ShardSupervisor`] while a chaos driver
//! follows a seeded [`ChaosPlan`]: per-call connection refusals, response
//! truncation, injected delay, and scheduled shard crashes (wedges — the
//! listener dies but stays routed until the health loop notices, which is
//! the window that walks the circuit breaker open). Clients churn their
//! connections, a subset runs deliberately slow, and a burst storm of
//! short-lived clients lands mid-run.
//!
//! Every full-fidelity answer is audited against a serial oracle computed
//! over identical synthetic tables before the swarm starts: a 200 whose
//! guard path is `full` must be bit-identical (total count and per-region
//! aggregates); anything else must say so in its guard (`shard_degraded`,
//! `preview_sample`, ...). The harness scores availability as the share
//! of responses that are 2xx or an honest 429 — under chaos the front may
//! shed or degrade, but it must never be *wrong* and never 5xx.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use urbane::catalog::DataCatalog;
use urbane::service::{ServiceConfig, UrbaneService};
use urbane::ResolutionPyramid;
use urbane_geom::geojson::{parse_json, Json};
use urbane_serve::router::synthetic_table;
use urbane_serve::supervisor::{DatasetSpec, ShardSupervisor, SupervisorConfig};
use urbane_serve::{Client, RetryPolicy, ServerConfig};
use urban_data::gen::city::CityModel;
use urban_data::time::DAY;
use raster_join::{ChaosPlan, RasterJoinConfig};

/// Knobs for the swarm suite (settable from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Rows per dataset (taxi, 311, crime each get this many).
    pub rows: usize,
    /// Worker shards behind the front.
    pub shards: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Distinct query bodies in the zipfian pool.
    pub distinct_queries: usize,
    /// Seed for the chaos plan and the zipfian draws.
    pub seed: u64,
    /// Scheduled shard crashes over the run.
    pub kills: usize,
    /// Extra short-lived clients in the mid-run burst storm.
    pub burst_clients: usize,
    /// Requests each burst client fires.
    pub burst_requests: usize,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            rows: 30_000,
            shards: 3,
            clients: 6,
            requests: 200,
            distinct_queries: 12,
            seed: 0xC4A05,
            kills: 2,
            burst_clients: 6,
            burst_requests: 15,
        }
    }
}

/// Outcome counters over every response the swarm received.
#[derive(Debug, Clone, Default)]
pub struct SwarmTotals {
    /// Responses received (any status).
    pub responses: usize,
    /// 200s with a full-fidelity guard, each audited against the oracle.
    pub full: usize,
    /// 200s that declared degradation (`shard_degraded`, `preview_sample`, ...).
    pub degraded: usize,
    /// 429 sheds (front queue or degraded fallback exhaustion).
    pub shed: usize,
    /// 5xx responses — must be zero.
    pub server_errors: usize,
    /// Other statuses (4xx client errors) — must be zero for this workload.
    pub other_errors: usize,
    /// Full answers that did NOT match the oracle — must be zero.
    pub wrong: usize,
    /// Transport failures (refused/reset mid-exchange); the client
    /// reconnects and continues. Not a response, not in `responses`.
    pub conn_errors: usize,
}

/// The full suite result.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Config the suite ran with.
    pub config: SwarmConfig,
    /// Response outcome counters.
    pub totals: SwarmTotals,
    /// Share of responses that were 2xx or 429.
    pub availability: f64,
    /// Median latency over successful (2xx) responses, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Shard-layer counters: (retries, hedges, hedge wins, restarts,
    /// degraded answers) summed over the run.
    pub shard: (u64, u64, u64, u64, u64),
    /// Breaker transitions summed over shards: (to open, to half-open,
    /// to closed).
    pub breaker: (u64, u64, u64),
    /// Shard crashes the chaos schedule actually fired.
    pub kills_fired: usize,
    /// Network-level chaos injections: (calls seen, refused, truncated,
    /// delayed).
    pub chaos: (u64, u64, u64, u64),
    /// First oracle mismatch, if any (diagnostic for `wrong > 0`).
    pub first_mismatch: Option<String>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// splitmix64 — the workspace's standard cheap bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const DATASETS: [(&str, u64); 3] = [("taxi", 11), ("311", 12), ("crime", 13)];

/// The query pool: levels and day windows cycled over the three datasets.
fn query_bodies(distinct: usize) -> Vec<String> {
    (0..distinct.max(1))
        .map(|i| {
            let (dataset, _) = DATASETS[i % DATASETS.len()];
            let level = 1 + (i / DATASETS.len()) % 2;
            let start = (i as i64 / 2) * DAY;
            format!(
                "{{\"dataset\":\"{dataset}\",\"level\":{level},\"filters\":[{{\"type\":\"time\",\"start\":{start},\"end\":{}}}]}}",
                start + 2 * DAY
            )
        })
        .collect()
}

/// Zipf(s≈1.1) sampler over `n` ranks: precomputed cumulative weights,
/// drawn by binary search on a mixed counter.
struct Zipf {
    cumulative: Vec<f64>,
    seed: u64,
}

impl Zipf {
    fn new(n: usize, seed: u64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for rank in 0..n.max(1) {
            total += 1.0 / ((rank + 1) as f64).powf(1.1);
            cumulative.push(total);
        }
        Zipf { cumulative, seed }
    }

    fn draw(&self, n: u64) -> usize {
        let total = self.cumulative.last().copied().unwrap_or(1.0);
        let u = (mix64(self.seed ^ n) % (1 << 24)) as f64 / (1u64 << 24) as f64 * total;
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }
}

/// One query body's oracle answer: generation, total count, and the
/// rendered per-region aggregate list.
#[derive(Debug, Clone)]
struct OracleAnswer {
    generation: f64,
    total_count: f64,
    regions: String,
}

/// Serve the whole pool once through a serial [`UrbaneService`] over
/// identical tables and record every full-fidelity answer.
fn build_oracle(cfg: &SwarmConfig, bodies: &[String]) -> BTreeMap<String, OracleAnswer> {
    let city = CityModel::nyc_like();
    let mut catalog = DataCatalog::new();
    for (name, seed) in DATASETS {
        catalog.register(name, synthetic_table(name, cfg.rows, seed).expect("generator"));
    }
    let pyramid = ResolutionPyramid::standard(&city.bbox(), 16, 8, 5);
    let service = UrbaneService::new(
        ServiceConfig {
            join: RasterJoinConfig::with_resolution(256),
            default_deadline: Duration::from_secs(60),
            ..Default::default()
        },
        catalog,
        pyramid,
    )
    .expect("oracle service boots");
    let mut oracle = BTreeMap::new();
    for body in bodies {
        let parsed = urbane_serve::wire::parse_query(body).expect("pool bodies parse");
        let answer = service.query(&parsed).expect("oracle answers");
        let json_text = urbane_serve::wire::answer_to_json(&parsed, &answer).to_string();
        let json = parse_json(&json_text).expect("oracle answer is JSON");
        oracle.insert(
            body.clone(),
            OracleAnswer {
                generation: json.get("generation").and_then(Json::as_f64).unwrap_or(-1.0),
                total_count: json.get("total_count").and_then(Json::as_f64).unwrap_or(-1.0),
                regions: json.get("regions").map(|r| format!("{r}")).unwrap_or_default(),
            },
        );
    }
    oracle
}

/// Shared audit state the client threads fold their observations into.
#[derive(Default)]
struct Audit {
    totals: SwarmTotals,
    latencies_ms: Vec<f64>,
    first_mismatch: Option<String>,
}

/// Classify and audit one response.
fn observe(
    audit: &Mutex<Audit>,
    oracle: &BTreeMap<String, OracleAnswer>,
    body: &str,
    status: u16,
    resp_body: &str,
    latency_ms: f64,
) {
    let mut a = audit.lock().unwrap_or_else(|p| p.into_inner());
    a.totals.responses += 1;
    match status {
        200 => {
            a.latencies_ms.push(latency_ms);
            let json = match parse_json(resp_body) {
                Ok(j) => j,
                Err(e) => {
                    a.totals.wrong += 1;
                    if a.first_mismatch.is_none() {
                        a.first_mismatch = Some(format!("unparseable 200 body ({e}): {resp_body}"));
                    }
                    return;
                }
            };
            let path = json
                .get("guard")
                .and_then(|g| g.get("path"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            if path != "full" {
                // Explicitly degraded (shard_degraded, preview_sample,
                // coarse, ...): exempt from bit-identity by contract.
                a.totals.degraded += 1;
                return;
            }
            a.totals.full += 1;
            let Some(expected) = oracle.get(body) else {
                a.totals.wrong += 1;
                if a.first_mismatch.is_none() {
                    a.first_mismatch = Some(format!("answer for body outside the pool: {body}"));
                }
                return;
            };
            let generation = json.get("generation").and_then(Json::as_f64).unwrap_or(-2.0);
            let total = json.get("total_count").and_then(Json::as_f64).unwrap_or(-2.0);
            let regions = json.get("regions").map(|r| format!("{r}")).unwrap_or_default();
            if generation != expected.generation
                || total != expected.total_count
                || regions != expected.regions
            {
                a.totals.wrong += 1;
                if a.first_mismatch.is_none() {
                    a.first_mismatch = Some(format!(
                        "oracle mismatch for {body}: got gen {generation} total {total}, \
                         want gen {} total {}",
                        expected.generation, expected.total_count
                    ));
                }
            }
        }
        429 => a.totals.shed += 1,
        s if s >= 500 => a.totals.server_errors += 1,
        _ => a.totals.other_errors += 1,
    }
}

/// One closed-loop client: zipfian draws, connection churn every 40
/// requests, `slow` clients pause between requests.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: SocketAddr,
    bodies: &[String],
    zipf: &Zipf,
    audit: &Mutex<Audit>,
    oracle: &BTreeMap<String, OracleAnswer>,
    client_id: u64,
    requests: usize,
    slow: bool,
) {
    let mut client: Option<Client> = None;
    for i in 0..requests {
        if slow {
            std::thread::sleep(Duration::from_millis(2));
        }
        if client.is_none() || i % 40 == 39 {
            client = Client::connect(addr, Duration::from_secs(10)).ok();
        }
        let Some(c) = client.as_mut() else {
            let mut a = audit.lock().unwrap_or_else(|p| p.into_inner());
            a.totals.conn_errors += 1;
            drop(a);
            std::thread::sleep(Duration::from_millis(5));
            client = None;
            continue;
        };
        let body = &bodies[zipf.draw(client_id.wrapping_mul(1_000_003) ^ i as u64)];
        let t0 = Instant::now();
        match c.post("/query", body) {
            Ok(resp) => observe(
                audit,
                oracle,
                body,
                resp.status,
                &resp.body,
                t0.elapsed().as_secs_f64() * 1e3,
            ),
            Err(_) => {
                let mut a = audit.lock().unwrap_or_else(|p| p.into_inner());
                a.totals.conn_errors += 1;
                drop(a);
                client = None;
            }
        }
    }
}

/// Run the swarm: oracle, supervisor under chaos, clients + burst storm,
/// then fold every counter into the report.
pub fn run(cfg: &SwarmConfig) -> SwarmReport {
    let bodies = Arc::new(query_bodies(cfg.distinct_queries));
    let oracle = Arc::new(build_oracle(cfg, &bodies));

    // Chaos: mild always-on network faults plus scheduled shard crashes
    // spread over the expected call volume.
    let expected_calls =
        (cfg.clients * cfg.requests + cfg.burst_clients * cfg.burst_requests) as u64;
    let mut chaos = ChaosPlan::seeded(cfg.seed)
        .refuse(20)
        .truncate(10)
        .delay(40, 15, 35);
    for k in 0..cfg.kills {
        let at = expected_calls * (k as u64 + 1) / (cfg.kills as u64 + 1);
        chaos = chaos.kill(at, k % cfg.shards.max(1));
    }

    let datasets = DATASETS
        .iter()
        .map(|&(name, seed)| DatasetSpec { name: name.into(), rows: cfg.rows, seed })
        .collect();
    let supervisor = ShardSupervisor::start(SupervisorConfig {
        shards: cfg.shards,
        datasets,
        front: ServerConfig {
            workers: cfg.clients.max(4),
            queue_capacity: cfg.clients.max(4) * 2,
            ..Default::default()
        },
        policy: RetryPolicy {
            hedge_after: Some(Duration::from_millis(20)),
            seed: cfg.seed ^ 0xFEED,
            ..Default::default()
        },
        chaos: Some(chaos.clone()),
        default_deadline: Duration::from_secs(5),
        resolution: 256,
        ..Default::default()
    })
    .expect("supervisor boots");
    let addr = supervisor.addr();

    let audit = Arc::new(Mutex::new(Audit::default()));
    let stop_chaos = Arc::new(AtomicBool::new(false));

    // Chaos driver: polls the kill schedule and wedges the victim — the
    // listener dies but stays routed until the health loop revives it.
    let kills_fired = {
        let supervisor_kills: Vec<usize> = Vec::new();
        let _ = supervisor_kills;
        let chaos = chaos.clone();
        let stop = Arc::clone(&stop_chaos);
        let supervisor = &supervisor;
        std::thread::scope(|scope| {
            let driver = scope.spawn(move || {
                let mut fired = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    while let Some(kill) = chaos.kill_due() {
                        if supervisor.wedge_shard(kill.shard, Duration::from_millis(300)) {
                            fired += 1;
                        }
                    }
                    if chaos.kills_pending() == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                fired
            });

            let mut handles = Vec::new();
            for c in 0..cfg.clients {
                let bodies = Arc::clone(&bodies);
                let oracle = Arc::clone(&oracle);
                let audit = Arc::clone(&audit);
                let zipf = Zipf::new(bodies.len(), cfg.seed ^ 0xA11CE);
                let requests = cfg.requests;
                handles.push(scope.spawn(move || {
                    client_loop(
                        addr,
                        &bodies,
                        &zipf,
                        &audit,
                        &oracle,
                        c as u64,
                        requests,
                        c % 3 == 2,
                    )
                }));
            }

            // Burst storm at roughly mid-run: short-lived clients arriving
            // at once.
            let storm: Vec<_> = (0..cfg.burst_clients)
                .map(|b| {
                    let bodies = Arc::clone(&bodies);
                    let oracle = Arc::clone(&oracle);
                    let audit = Arc::clone(&audit);
                    let zipf = Zipf::new(bodies.len(), cfg.seed ^ 0xB0057);
                    let requests = cfg.burst_requests;
                    scope.spawn(move || {
                        std::thread::sleep(Duration::from_millis(400));
                        client_loop(
                            addr,
                            &bodies,
                            &zipf,
                            &audit,
                            &oracle,
                            0x1000 + b as u64,
                            requests,
                            false,
                        )
                    })
                })
                .collect();

            for h in handles {
                let _ = h.join();
            }
            for h in storm {
                let _ = h.join();
            }
            stop_chaos.store(true, Ordering::SeqCst);
            driver.join().unwrap_or(0)
        })
    };

    // Let in-flight restarts land so the report includes the revival.
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if (0..supervisor.shards()).all(|i| supervisor.shard_up(i)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let shard = supervisor.shard_metrics().snapshot();
    let breaker = supervisor.breaker_transitions();
    let chaos_counts = chaos.counts();
    supervisor.shutdown();

    let mut a = Arc::try_unwrap(audit)
        .unwrap_or_else(|arc| {
            Mutex::new(std::mem::take(
                &mut *arc.lock().unwrap_or_else(|p| p.into_inner()),
            ))
        })
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    a.latencies_ms
        .sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let ok = a.totals.responses - a.totals.server_errors - a.totals.other_errors;
    let availability =
        if a.totals.responses > 0 { ok as f64 / a.totals.responses as f64 } else { 0.0 };
    SwarmReport {
        config: cfg.clone(),
        availability,
        p50_ms: percentile(&a.latencies_ms, 0.50),
        p99_ms: percentile(&a.latencies_ms, 0.99),
        shard,
        breaker,
        kills_fired,
        chaos: (
            chaos_counts.calls,
            chaos_counts.refused,
            chaos_counts.truncated,
            chaos_counts.delayed,
        ),
        totals: a.totals,
        first_mismatch: a.first_mismatch,
    }
}

impl SwarmReport {
    /// Acceptance: no wrong answers, no 5xx, availability ≥ 99%.
    pub fn passed(&self) -> bool {
        self.totals.wrong == 0
            && self.totals.server_errors == 0
            && self.totals.other_errors == 0
            && self.availability >= 0.99
    }

    /// Hand-rolled JSON (the workspace deliberately has no serde), written
    /// to `BENCH_swarm.json`.
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"swarm\",\n");
        s.push_str(&format!(
            "  \"command\": \"cargo run --release -p urbane-bench --bin repro -- --exp swarm \
             --scale {} --shards {} --clients {} --requests {} --json BENCH_swarm.json\",\n",
            self.config.rows, self.config.shards, self.config.clients, self.config.requests
        ));
        s.push_str(&format!("  \"rows_per_dataset\": {},\n", self.config.rows));
        s.push_str(&format!("  \"shards\": {},\n", self.config.shards));
        s.push_str(&format!("  \"clients\": {},\n", self.config.clients));
        s.push_str(&format!("  \"requests_per_client\": {},\n", self.config.requests));
        s.push_str(&format!("  \"chaos_seed\": {},\n", self.config.seed));
        s.push_str(&format!("  \"kills_scheduled\": {},\n", self.config.kills));
        s.push_str(&format!("  \"kills_fired\": {},\n", self.kills_fired));
        s.push_str(&format!(
            "  \"totals\": {{\"responses\": {}, \"full\": {}, \"degraded\": {}, \"shed\": {}, \
             \"server_errors\": {}, \"other_errors\": {}, \"wrong\": {}, \"conn_errors\": {}}},\n",
            t.responses, t.full, t.degraded, t.shed, t.server_errors, t.other_errors, t.wrong,
            t.conn_errors
        ));
        s.push_str(&format!("  \"availability\": {:.5},\n", self.availability));
        s.push_str(&format!(
            "  \"shed_rate\": {:.5},\n",
            if t.responses > 0 { t.shed as f64 / t.responses as f64 } else { 0.0 }
        ));
        s.push_str(&format!("  \"p50_ms\": {:.3},\n", self.p50_ms));
        s.push_str(&format!("  \"p99_ms\": {:.3},\n", self.p99_ms));
        let (retries, hedges, hedge_wins, restarts, degraded_answers) = self.shard;
        s.push_str(&format!(
            "  \"shard\": {{\"retries\": {retries}, \"hedges\": {hedges}, \
             \"hedge_wins\": {hedge_wins}, \"restarts\": {restarts}, \
             \"degraded_answers\": {degraded_answers}}},\n"
        ));
        let (opened, half_opened, closed) = self.breaker;
        s.push_str(&format!(
            "  \"breaker_transitions\": {{\"to_open\": {opened}, \"to_half_open\": {half_opened}, \
             \"to_closed\": {closed}}},\n"
        ));
        let (calls, refused, truncated, delayed) = self.chaos;
        s.push_str(&format!(
            "  \"chaos\": {{\"calls\": {calls}, \"refused\": {refused}, \
             \"truncated\": {truncated}, \"delayed\": {delayed}}},\n"
        ));
        s.push_str(&format!("  \"passed\": {}\n", self.passed()));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the repro binary's stdout.
    pub fn render(&self) -> String {
        let t = &self.totals;
        let mut table = crate::Table::new(["outcome", "count"]);
        table.row(["full (oracle-checked)".to_string(), format!("{}", t.full)]);
        table.row(["degraded (declared)".to_string(), format!("{}", t.degraded)]);
        table.row(["shed (429)".to_string(), format!("{}", t.shed)]);
        table.row(["server errors (5xx)".to_string(), format!("{}", t.server_errors)]);
        table.row(["wrong answers".to_string(), format!("{}", t.wrong)]);
        table.row(["conn errors (retried)".to_string(), format!("{}", t.conn_errors)]);
        let (retries, hedges, hedge_wins, restarts, degraded_answers) = self.shard;
        let (opened, half_opened, closed) = self.breaker;
        let mut out = table.render();
        out.push_str(&format!(
            "availability: {avail:.3}%   p50 {p50:.2} ms   p99 {p99:.2} ms\n\
             retries {retries}  hedges {hedges} (won {hedge_wins})  restarts {restarts}  \
             degraded {degraded_answers}\n\
             breaker: {opened} opened, {half_opened} half-opened, {closed} re-closed   \
             kills fired: {kills}\n\
             verdict: {verdict}\n",
            avail = self.availability * 100.0,
            p50 = self.p50_ms,
            p99 = self.p99_ms,
            kills = self.kills_fired,
            verdict = if self.passed() { "PASS" } else { "FAIL" },
        ));
        if let Some(m) = &self.first_mismatch {
            out.push_str(&format!("first mismatch: {m}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_draws_are_skewed_and_in_range() {
        let z = Zipf::new(8, 42);
        let mut counts = [0usize; 8];
        for n in 0..4000 {
            counts[z.draw(n)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert!(counts[0] > counts[7] * 2, "head must dominate tail: {counts:?}");
    }

    #[test]
    fn tiny_swarm_survives_chaos_with_zero_wrong_answers() {
        let report = run(&SwarmConfig {
            rows: 4_000,
            shards: 2,
            clients: 3,
            requests: 40,
            distinct_queries: 6,
            seed: 7,
            kills: 1,
            burst_clients: 2,
            burst_requests: 8,
        });
        assert_eq!(report.totals.wrong, 0, "{:?}", report.first_mismatch);
        assert_eq!(report.totals.server_errors, 0);
        assert_eq!(report.totals.other_errors, 0);
        assert!(report.totals.full > 0, "must see full-fidelity answers");
        assert!(report.kills_fired >= 1, "the scheduled kill must fire");
        assert!(report.availability >= 0.99, "{}", report.render());
        let json = report.to_json();
        assert!(parse_json(&json).is_ok(), "{json}");
    }
}
