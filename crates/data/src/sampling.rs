//! Sampling for progressive/approximate previews.
//!
//! While a slider is being dragged, Urbane-style systems answer from a
//! sample and refine when the interaction pauses. Two samplers are
//! provided:
//!
//! * [`reservoir_sample`] — uniform k-of-n without knowing n in advance
//!   (Vitter's Algorithm R), the right default for temporal streams;
//! * [`stratified_spatial_sample`] — at most `per_cell` points from each
//!   cell of a coarse grid, preserving spatial *coverage* under heavy
//!   hotspot skew (a uniform sample of taxi data is almost all Midtown).
//!
//! Both return row-index vectors plus a [`PointTable`] materializer, and
//! both are deterministic in their seed.

use crate::table::PointTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform reservoir sample of `k` row indices (all rows when `k >= n`).
/// Indices are returned in ascending order.
pub fn reservoir_sample(table: &PointTable, k: usize, seed: u64) -> Vec<usize> {
    let n = table.len();
    if k >= n {
        return (0..n).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir.sort_unstable();
    reservoir
}

/// Spatially stratified sample: the extent is cut into `grid × grid` cells
/// and at most `per_cell` rows are reservoir-kept per cell. Returns
/// ascending row indices.
pub fn stratified_spatial_sample(
    table: &PointTable,
    grid: u32,
    per_cell: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(grid > 0, "grid must have cells");
    let bbox = table.bbox();
    if table.is_empty() || bbox.is_empty() || per_cell == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = (grid * grid) as usize;
    let mut kept: Vec<Vec<usize>> = vec![Vec::new(); cells];
    let mut seen: Vec<usize> = vec![0; cells];

    let w = bbox.width().max(f64::MIN_POSITIVE);
    let h = bbox.height().max(f64::MIN_POSITIVE);
    for i in 0..table.len() {
        let p = table.loc(i);
        let gx = (((p.x - bbox.min.x) / w * grid as f64) as u32).min(grid - 1);
        let gy = (((p.y - bbox.min.y) / h * grid as f64) as u32).min(grid - 1);
        let c = (gy * grid + gx) as usize;
        seen[c] += 1;
        if kept[c].len() < per_cell {
            kept[c].push(i);
        } else {
            let j = rng.gen_range(0..seen[c]);
            if j < per_cell {
                kept[c][j] = i;
            }
        }
    }
    let mut out: Vec<usize> = kept.into_iter().flatten().collect();
    out.sort_unstable();
    out
}

/// Materialize sampled rows as a new table (same schema).
pub fn take_rows(table: &PointTable, rows: &[usize]) -> PointTable {
    let mut keep = vec![false; table.len()];
    // lint: allow(cancel-poll-reachability) flips one bit per sampled row, bounded by the preview sample size
    for &r in rows {
        keep[r] = true;
    }
    table.filter_rows(&keep)
}

/// The scale factor that corrects COUNT/SUM aggregates computed on a sample
/// back to full-population estimates (`None` for an empty sample).
pub fn scale_up_factor(total_rows: usize, sample_rows: usize) -> Option<f64> {
    (sample_rows > 0).then(|| total_rows as f64 / sample_rows as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use urbane_geom::Point;

    fn skewed_table(n: usize) -> PointTable {
        let mut t = PointTable::new(Schema::empty());
        for i in 0..n {
            // 90% of points in a tiny hotspot, 10% spread out.
            let p = if i % 10 != 0 {
                Point::new(1.0 + (i % 7) as f64 * 0.01, 1.0 + (i % 5) as f64 * 0.01)
            } else {
                Point::new((i % 100) as f64, (i / 7 % 100) as f64)
            };
            t.push(p, i as i64, &[]).unwrap();
        }
        t
    }

    #[test]
    fn reservoir_size_and_determinism() {
        let t = skewed_table(10_000);
        let s1 = reservoir_sample(&t, 500, 9);
        let s2 = reservoir_sample(&t, 500, 9);
        assert_eq!(s1.len(), 500);
        assert_eq!(s1, s2);
        assert_ne!(s1, reservoir_sample(&t, 500, 10));
        // Sorted, unique, in range.
        assert!(s1.windows(2).all(|w| w[0] < w[1]));
        assert!(*s1.last().unwrap() < 10_000);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let t = skewed_table(10_000);
        // Mean sampled index across seeds should be near n/2.
        let mut mean = 0.0;
        for seed in 0..20 {
            let s = reservoir_sample(&t, 200, seed);
            mean += s.iter().sum::<usize>() as f64 / s.len() as f64;
        }
        mean /= 20.0;
        assert!((mean - 5_000.0).abs() < 500.0, "mean index {mean}");
    }

    #[test]
    fn small_k_edge_cases() {
        let t = skewed_table(10);
        assert_eq!(reservoir_sample(&t, 10, 1).len(), 10);
        assert_eq!(reservoir_sample(&t, 100, 1).len(), 10);
        assert_eq!(reservoir_sample(&t, 0, 1).len(), 0);
    }

    #[test]
    fn stratified_preserves_coverage() {
        let t = skewed_table(10_000);
        let strat = stratified_spatial_sample(&t, 10, 5, 3);
        let unif = reservoir_sample(&t, strat.len(), 3);
        // Count distinct occupied cells for both samples.
        let cells = |rows: &[usize]| {
            let bbox = t.bbox();
            rows.iter()
                .map(|&i| {
                    let p = t.loc(i);
                    let gx = (((p.x - bbox.min.x) / bbox.width() * 10.0) as u32).min(9);
                    let gy = (((p.y - bbox.min.y) / bbox.height() * 10.0) as u32).min(9);
                    gy * 10 + gx
                })
                .collect::<std::collections::HashSet<u32>>()
                .len()
        };
        assert!(
            cells(&strat) > cells(&unif),
            "stratified {} cells vs uniform {}",
            cells(&strat),
            cells(&unif)
        );
        // Per-cell cap respected.
        assert!(strat.len() <= 100 * 5);
    }

    #[test]
    fn take_rows_materializes() {
        let t = skewed_table(100);
        let rows = reservoir_sample(&t, 10, 5);
        let sub = take_rows(&t, &rows);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub.loc(0), t.loc(rows[0]));
    }

    #[test]
    fn scale_factor() {
        assert_eq!(scale_up_factor(1000, 100), Some(10.0));
        assert_eq!(scale_up_factor(1000, 0), None);
    }

    #[test]
    fn empty_inputs() {
        let t = PointTable::new(Schema::empty());
        assert!(reservoir_sample(&t, 10, 1).is_empty());
        assert!(stratified_spatial_sample(&t, 8, 4, 1).is_empty());
    }
}
