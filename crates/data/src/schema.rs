//! Attribute schemas for point tables.
//!
//! Every point carries a location and a timestamp implicitly; the schema
//! describes the additional attribute columns (`a1, a2, …` in the paper's
//! query template).

use crate::{DataError, Result};

/// Type of an attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Continuous numeric attribute (fare, trip distance, …), stored `f32`
    /// — matching what the paper's GPU implementation uploads.
    Numeric,
    /// Categorical code (complaint type, payment type, …), stored as a
    /// small integer inside an `f32` column for uniform filtering.
    Categorical,
}

/// Ordered attribute column declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<(String, AttrType)>,
}

impl Schema {
    /// Empty schema (points with no attributes — pure COUNT workloads).
    pub fn empty() -> Self {
        Schema { columns: Vec::new() }
    }

    /// Schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Rejects duplicate column names.
    pub fn new<I, S>(cols: I) -> Result<Self>
    where
        I: IntoIterator<Item = (S, AttrType)>,
        S: Into<String>,
    {
        let mut columns: Vec<(String, AttrType)> = Vec::new();
        for (name, ty) in cols {
            let name = name.into();
            if columns.iter().any(|(n, _)| *n == name) {
                return Err(DataError::Schema(format!("duplicate column: {name}")));
            }
            columns.push((name, ty));
        }
        Ok(Schema { columns })
    }

    /// Number of attribute columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no attribute columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column index by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DataError::UnknownColumn(name.to_string()))
    }

    /// Column name at `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    /// Column type at `idx`.
    pub fn attr_type(&self, idx: usize) -> AttrType {
        self.columns[idx].1
    }

    /// Iterate `(name, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, AttrType)> {
        self.columns.iter().map(|(n, t)| (n.as_str(), *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new([("fare", AttrType::Numeric), ("kind", AttrType::Categorical)])
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("fare").unwrap(), 0);
        assert_eq!(s.index_of("kind").unwrap(), 1);
        assert!(matches!(s.index_of("nope"), Err(DataError::UnknownColumn(_))));
        assert_eq!(s.name(1), "kind");
        assert_eq!(s.attr_type(0), AttrType::Numeric);
    }

    #[test]
    fn duplicate_rejected() {
        assert!(Schema::new([("a", AttrType::Numeric), ("a", AttrType::Numeric)]).is_err());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::empty();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
