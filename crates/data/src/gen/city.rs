//! The synthetic city model: an NYC-sized extent with activity hotspots.
//!
//! Locations are Web-Mercator meters over a box matching New York City's
//! real Mercator footprint, so distances, the ε error bound (in meters), and
//! canvas-resolution math all behave exactly as they would on the real data.

use super::normal;
use rand::Rng;
use urbane_geom::projection::lonlat_to_mercator;
use urbane_geom::{BoundingBox, Point};

/// One activity hotspot: an isotropic Gaussian in Mercator meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Center of activity.
    pub center: Point,
    /// Standard deviation (meters).
    pub sigma: f64,
    /// Relative share of activity drawn from this hotspot.
    pub weight: f64,
}

/// A city: an extent plus a Gaussian-mixture activity model, optionally
/// restricted to a land mask (real cities are full of water — samples must
/// not land in it).
#[derive(Debug, Clone, PartialEq)]
pub struct CityModel {
    bbox: BoundingBox,
    hotspots: Vec<Hotspot>,
    /// Share of activity drawn uniformly over the extent (background noise).
    background: f64,
    /// Optional land mask: samples are rejection-filtered to lie inside.
    mask: Option<urbane_geom::MultiPolygon>,
}

impl CityModel {
    /// An NYC-like city: the real NYC Mercator bounding box with hotspots
    /// mimicking Midtown / Downtown Manhattan, downtown Brooklyn, Long
    /// Island City, and the two airports — the skew pattern taxi data shows.
    pub fn nyc_like() -> Self {
        let sw = lonlat_to_mercator(-74.05, 40.54);
        let ne = lonlat_to_mercator(-73.70, 40.92);
        let spot = |lon: f64, lat: f64, sigma: f64, weight: f64| Hotspot {
            center: lonlat_to_mercator(lon, lat),
            sigma,
            weight,
        };
        CityModel {
            bbox: BoundingBox::new(sw, ne),
            hotspots: vec![
                spot(-73.985, 40.755, 1_800.0, 0.34), // Midtown
                spot(-74.008, 40.715, 1_400.0, 0.18), // Downtown
                spot(-73.987, 40.692, 1_600.0, 0.12), // Downtown Brooklyn
                spot(-73.945, 40.745, 1_200.0, 0.08), // Long Island City
                spot(-73.874, 40.774, 900.0, 0.07),   // LGA
                spot(-73.786, 40.645, 1_000.0, 0.06), // JFK
            ],
            background: 0.15,
            mask: None,
        }
    }

    /// A synthetic city over an arbitrary box with `n` random hotspots.
    pub fn synthetic<R: Rng + ?Sized>(bbox: BoundingBox, n_hotspots: usize, rng: &mut R) -> Self {
        assert!(!bbox.is_empty(), "city extent must be non-empty");
        let min_dim = bbox.width().min(bbox.height());
        let hotspots = (0..n_hotspots)
            .map(|_| Hotspot {
                center: Point::new(
                    bbox.min.x + rng.gen::<f64>() * bbox.width(),
                    bbox.min.y + rng.gen::<f64>() * bbox.height(),
                ),
                sigma: min_dim * (0.02 + rng.gen::<f64>() * 0.06),
                weight: 0.5 + rng.gen::<f64>(),
            })
            .collect();
        CityModel { bbox, hotspots, background: 0.15, mask: None }
    }

    /// Restrict sampling to a land mask (e.g. borough polygons). Hotspots
    /// outside the mask keep attracting activity but their samples are
    /// re-drawn until they land inside — so the mask should cover a
    /// non-trivial share of each hotspot's neighborhood or generation slows.
    ///
    /// # Panics
    /// Panics when the mask does not intersect the city extent at all (no
    /// sample could ever be produced).
    pub fn with_mask(mut self, mask: urbane_geom::MultiPolygon) -> Self {
        assert!(
            mask.bbox().intersects(&self.bbox),
            "land mask must overlap the city extent"
        );
        self.mask = Some(mask);
        self
    }

    /// The land mask, if any.
    pub fn mask(&self) -> Option<&urbane_geom::MultiPolygon> {
        self.mask.as_ref()
    }

    /// The city extent (Mercator meters).
    #[inline]
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// The hotspots.
    #[inline]
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }

    /// Sample one activity location: mixture of hotspot Gaussians plus a
    /// uniform background, rejection-truncated to the extent. Points are
    /// guaranteed strictly inside the box (no open-edge losses downstream).
    pub fn sample_location<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let w_total: f64 = self.hotspots.iter().map(|h| h.weight).sum::<f64>();
        loop {
            let p = if rng.gen::<f64>() < self.background || self.hotspots.is_empty() {
                Point::new(
                    self.bbox.min.x + rng.gen::<f64>() * self.bbox.width(),
                    self.bbox.min.y + rng.gen::<f64>() * self.bbox.height(),
                )
            } else {
                let mut pick = rng.gen::<f64>() * w_total;
                let mut spot = &self.hotspots[self.hotspots.len() - 1];
                for h in &self.hotspots {
                    pick -= h.weight;
                    if pick <= 0.0 {
                        spot = h;
                        break;
                    }
                }
                spot.center + Point::new(normal(rng) * spot.sigma, normal(rng) * spot.sigma)
            };
            // Strictly inside (shrunken box) so half-open pixel edges and
            // region-set boundaries never clip legitimate data; inside the
            // land mask when one is set.
            let inner = self.bbox.inflate(-1e-6 * self.bbox.width().max(1.0));
            if inner.contains(p) && self.mask.as_ref().is_none_or(|m| m.contains(p)) {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nyc_extent_is_sane() {
        let c = CityModel::nyc_like();
        // NYC is roughly 30 x 40 km in Mercator meters (inflated by 1/cos(40.7°)).
        assert!(c.bbox().width() > 25_000.0 && c.bbox().width() < 60_000.0);
        assert!(c.bbox().height() > 35_000.0 && c.bbox().height() < 80_000.0);
        // All hotspots inside the extent.
        for h in c.hotspots() {
            assert!(c.bbox().contains(h.center));
        }
    }

    #[test]
    fn samples_stay_inside() {
        let c = CityModel::nyc_like();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            assert!(c.bbox().contains(c.sample_location(&mut rng)));
        }
    }

    #[test]
    fn hotspots_create_skew() {
        // Density near the strongest hotspot must far exceed a random spot.
        let c = CityModel::nyc_like();
        let mut rng = StdRng::seed_from_u64(5);
        let midtown = c.hotspots()[0].center;
        let remote = Point::new(
            c.bbox().min.x + 0.05 * c.bbox().width(),
            c.bbox().min.y + 0.95 * c.bbox().height(),
        );
        let r = 2_000.0;
        let (mut near_mid, mut near_remote) = (0u32, 0u32);
        for _ in 0..20_000 {
            let p = c.sample_location(&mut rng);
            if p.distance(midtown) < r {
                near_mid += 1;
            }
            if p.distance(remote) < r {
                near_remote += 1;
            }
        }
        assert!(
            near_mid > 10 * near_remote.max(1),
            "midtown {near_mid} vs remote {near_remote}"
        );
    }

    #[test]
    fn land_mask_confines_samples() {
        use urbane_geom::{MultiPolygon, Polygon};
        let b = BoundingBox::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(13);
        // "Land": two islands covering ~1/4 of the extent.
        let land = MultiPolygon::new(vec![
            Polygon::from_coords(&[(50.0, 50.0), (450.0, 50.0), (450.0, 450.0), (50.0, 450.0)])
                .unwrap(),
            Polygon::from_coords(&[(600.0, 600.0), (950.0, 600.0), (950.0, 950.0), (600.0, 950.0)])
                .unwrap(),
        ]);
        let city = CityModel::synthetic(b, 3, &mut rng).with_mask(land.clone());
        assert!(city.mask().is_some());
        let mut on_island_1 = 0;
        for _ in 0..2_000 {
            let p = city.sample_location(&mut rng);
            assert!(land.contains(p), "sample {p} landed in the water");
            if p.x < 500.0 {
                on_island_1 += 1;
            }
        }
        // Both islands receive activity.
        assert!(on_island_1 > 100 && on_island_1 < 1_900, "island split {on_island_1}");
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn disjoint_mask_rejected() {
        use urbane_geom::{MultiPolygon, Polygon};
        let b = BoundingBox::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let far = MultiPolygon::from_polygon(
            Polygon::from_coords(&[(100.0, 100.0), (110.0, 100.0), (110.0, 110.0)]).unwrap(),
        );
        let _ = CityModel::synthetic(b, 2, &mut rng).with_mask(far);
    }

    #[test]
    fn synthetic_city_deterministic() {
        let b = BoundingBox::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let c1 = CityModel::synthetic(b, 4, &mut StdRng::seed_from_u64(9));
        let c2 = CityModel::synthetic(b, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(c1, c2);
        assert_eq!(c1.hotspots().len(), 4);
    }
}
