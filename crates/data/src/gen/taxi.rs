//! Synthetic taxi-trip generator — the stand-in for the NYC TLC trip records
//! the demo visualizes (e.g. "pickups in January 2009 aggregated over
//! neighborhoods", the paper's Figure 1).
//!
//! Reproduced statistical structure:
//! * **spatial skew**: pickups concentrate at the city model's hotspots;
//! * **diurnal rhythm**: a double-peaked weekday profile (AM/PM rush) and a
//!   flatter, late-shifted weekend profile;
//! * **attributes**: fare (log-normal-ish, distance-correlated), trip
//!   distance (exponential-ish), passenger count (1–6, skewed to 1), tip.

use super::city::CityModel;
use super::{normal, weighted_index};
use crate::schema::{AttrType, Schema};
use crate::table::PointTable;
use crate::time::{Timestamp, DAY, HOUR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the taxi generator.
#[derive(Debug, Clone)]
pub struct TaxiConfig {
    /// Number of trips to generate.
    pub rows: usize,
    /// RNG seed — same seed, same data set.
    pub seed: u64,
    /// First timestamp (inclusive).
    pub start: Timestamp,
    /// Number of days covered.
    pub days: u32,
}

impl TaxiConfig {
    /// One month of trips starting at `start`.
    pub fn month(rows: usize, seed: u64, start: Timestamp) -> Self {
        TaxiConfig { rows, seed, start, days: 30 }
    }
}

/// Hourly pickup weights, weekdays: AM rush (7–9), lunchtime bump, PM rush
/// (17–19), evening tail.
const WEEKDAY_HOURS: [f64; 24] = [
    1.2, 0.7, 0.4, 0.3, 0.3, 0.6, 1.5, 3.0, 3.6, 2.8, 2.2, 2.3, 2.6, 2.4, 2.3, 2.5, 3.0, 3.8,
    4.0, 3.4, 2.8, 2.6, 2.2, 1.7,
];

/// Hourly pickup weights, weekends: late start, strong night activity.
const WEEKEND_HOURS: [f64; 24] = [
    2.8, 2.4, 1.9, 1.2, 0.7, 0.5, 0.6, 0.8, 1.2, 1.7, 2.2, 2.6, 2.8, 2.8, 2.7, 2.6, 2.6, 2.7,
    2.8, 2.9, 3.0, 3.1, 3.2, 3.0,
];

/// The taxi table's schema: `fare`, `distance`, `passengers`, `tip`.
pub fn taxi_schema() -> Schema {
    Schema::new([
        ("fare", AttrType::Numeric),
        ("distance", AttrType::Numeric),
        ("passengers", AttrType::Categorical),
        ("tip", AttrType::Numeric),
    ])
    // lint: allow(panic-freedom) static schema literal; names and arity are fixed at compile time
    .expect("static schema is valid")
}

/// Generate a taxi-pickup table over `city`.
pub fn generate_taxi(city: &CityModel, cfg: &TaxiConfig) -> PointTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut table = PointTable::with_capacity(taxi_schema(), cfg.rows);

    // lint: allow(cancel-poll-reachability) synthetic corpus generation at dataset (re)load, bounded by the configured row count — not on any query path
    for _ in 0..cfg.rows {
        let loc = city.sample_location(&mut rng);

        // Pick a day uniformly, then an hour from that day's profile.
        let day = rng.gen_range(0..cfg.days as i64);
        let t0 = cfg.start + day * DAY;
        let dow = crate::time::day_of_week(t0);
        let profile = if dow >= 5 { &WEEKEND_HOURS } else { &WEEKDAY_HOURS };
        let hour = weighted_index(&mut rng, profile) as i64;
        let t = t0 + hour * HOUR + rng.gen_range(0..HOUR);

        // Distance: exponential-ish with a 2.9-mile mean, capped at 30.
        let distance = (-(1.0 - rng.gen::<f64>()).ln() * 2.9).min(30.0) as f32;
        // Fare: base + per-mile with noise, floored at the NYC flag-drop.
        let fare = (2.5 + distance as f64 * 2.5 + normal(&mut rng) * 2.0).max(2.5) as f32;
        // Passengers: heavily skewed to single riders.
        let passengers =
            (weighted_index(&mut rng, &[0.70, 0.13, 0.06, 0.04, 0.05, 0.02]) + 1) as f32;
        // Tip: ~60% of riders tip 15–25%, the rest 0.
        let tip = if rng.gen::<f64>() < 0.6 {
            fare * (0.15 + rng.gen::<f32>() * 0.10)
        } else {
            0.0
        };

        table
            .push(loc, t, &[fare, distance, passengers, tip])
            // lint: allow(panic-freedom) push arity matches the four-column schema constructed above
            .expect("schema arity is fixed");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{hour_of_day, timestamp};

    fn small() -> PointTable {
        let city = CityModel::nyc_like();
        generate_taxi(&city, &TaxiConfig::month(20_000, 42, timestamp(2009, 1, 1, 0, 0, 0)))
    }

    #[test]
    fn deterministic_for_seed() {
        let city = CityModel::nyc_like();
        let cfg = TaxiConfig::month(1_000, 7, 0);
        assert_eq!(generate_taxi(&city, &cfg), generate_taxi(&city, &cfg));
        let cfg2 = TaxiConfig { seed: 8, ..cfg };
        assert_ne!(generate_taxi(&city, &cfg), generate_taxi(&city, &cfg2));
    }

    #[test]
    fn row_count_and_extent() {
        let t = small();
        assert_eq!(t.len(), 20_000);
        let city = CityModel::nyc_like();
        assert!(city.bbox().contains_box(&t.bbox()));
        let ext = t.time_extent().unwrap();
        assert!(ext.start >= timestamp(2009, 1, 1, 0, 0, 0));
        assert!(ext.end <= timestamp(2009, 1, 31, 0, 0, 0) + DAY);
    }

    #[test]
    fn attribute_marginals_plausible() {
        let t = small();
        let fares = t.column_by_name("fare").unwrap();
        let mean_fare = fares.iter().sum::<f32>() / fares.len() as f32;
        assert!(mean_fare > 5.0 && mean_fare < 20.0, "mean fare {mean_fare}");
        assert!(fares.iter().all(|&f| f >= 2.5));
        let pax = t.column_by_name("passengers").unwrap();
        let ones = pax.iter().filter(|&&p| p == 1.0).count() as f64 / pax.len() as f64;
        assert!(ones > 0.6, "single riders {ones}");
        assert!(pax.iter().all(|&p| (1.0..=6.0).contains(&p)));
    }

    #[test]
    fn diurnal_rhythm_present() {
        let t = small();
        let mut by_hour = [0u32; 24];
        for i in 0..t.len() {
            by_hour[hour_of_day(t.time(i)) as usize] += 1;
        }
        // Rush hours busier than pre-dawn.
        let rush = by_hour[8] + by_hour[17] + by_hour[18];
        let dead = by_hour[3] + by_hour[4] + by_hour[5];
        assert!(rush > 2 * dead, "rush {rush} dead {dead}");
    }

    #[test]
    fn tips_are_zero_or_proportional() {
        let t = small();
        let fares = t.column_by_name("fare").unwrap();
        let tips = t.column_by_name("tip").unwrap();
        for (&f, &tip) in fares.iter().zip(tips) {
            assert!(tip == 0.0 || (tip >= 0.14 * f && tip <= 0.26 * f));
        }
        let tipped = tips.iter().filter(|&&t| t > 0.0).count() as f64 / tips.len() as f64;
        assert!((tipped - 0.6).abs() < 0.05, "tip rate {tipped}");
    }
}
