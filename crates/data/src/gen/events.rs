//! Synthetic civic-event generators: 311 service requests and crime
//! incidents — the other two data-set families the Urbane demo explores
//! alongside taxi trips.
//!
//! Both are point events with a categorical type code (Zipf-distributed, as
//! real complaint/offense frequencies are) plus a numeric attribute
//! (response time / severity). Spatial placement reuses the city hotspot
//! model but with its own mixing (complaints skew residential, so more
//! background mass than taxi pickups).

use super::city::CityModel;
use super::{normal, weighted_index};
use crate::schema::{AttrType, Schema};
use crate::table::PointTable;
use crate::time::{Timestamp, DAY, HOUR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration shared by the event generators.
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Number of events.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// First timestamp (inclusive).
    pub start: Timestamp,
    /// Days covered.
    pub days: u32,
    /// Number of categorical type codes.
    pub n_types: usize,
}

impl EventConfig {
    /// A sensible default: one month, 12 categories.
    pub fn month(rows: usize, seed: u64, start: Timestamp) -> Self {
        EventConfig { rows, seed, start, days: 30, n_types: 12 }
    }
}

/// Zipf-ish weights `1/rank` for `n` categories.
fn zipf_weights(n: usize) -> Vec<f64> {
    (1..=n).map(|r| 1.0 / r as f64).collect()
}

/// 311 schema: `complaint_type` (categorical), `response_hours` (numeric).
pub fn complaints_schema() -> Schema {
    Schema::new([
        ("complaint_type", AttrType::Categorical),
        ("response_hours", AttrType::Numeric),
    ])
    // lint: allow(panic-freedom) static schema literal; names and arity are fixed at compile time
    .expect("static schema is valid")
}

/// Generate a 311-complaints-like table.
pub fn generate_complaints(city: &CityModel, cfg: &EventConfig) -> PointTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3131);
    let mut table = PointTable::with_capacity(complaints_schema(), cfg.rows);
    let type_w = zipf_weights(cfg.n_types);

    // lint: allow(cancel-poll-reachability) synthetic corpus generation at dataset (re)load, bounded by the configured row count — not on any query path
    for _ in 0..cfg.rows {
        let loc = city.sample_location(&mut rng);
        // Complaints arrive through the day with a mild daytime bias.
        let day = rng.gen_range(0..cfg.days as i64);
        let hour = weighted_index(
            &mut rng,
            &[
                0.5, 0.4, 0.3, 0.3, 0.4, 0.7, 1.2, 1.8, 2.4, 2.8, 3.0, 3.0, 2.9, 2.8, 2.7, 2.6,
                2.4, 2.2, 2.0, 1.8, 1.5, 1.2, 0.9, 0.7,
            ],
        ) as i64;
        let t = cfg.start + day * DAY + hour * HOUR + rng.gen_range(0..HOUR);

        let ctype = weighted_index(&mut rng, &type_w) as f32;
        // Response time: log-normal-ish, hours to days.
        let response = (6.0 * (normal(&mut rng) * 0.8 + 1.5).exp()).clamp(0.5, 24.0 * 14.0) as f32;
        // lint: allow(panic-freedom) push arity matches the two-column schema constructed above
        table.push(loc, t, &[ctype, response]).expect("schema arity is fixed");
    }
    table
}

/// Crime schema: `offense` (categorical), `severity` (numeric 1–10).
pub fn crime_schema() -> Schema {
    Schema::new([("offense", AttrType::Categorical), ("severity", AttrType::Numeric)])
        // lint: allow(panic-freedom) static schema literal; names and arity are fixed at compile time
        .expect("static schema is valid")
}

/// Generate a crime-incidents-like table (night-skewed temporal profile).
pub fn generate_crime(city: &CityModel, cfg: &EventConfig) -> PointTable {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC41E);
    let mut table = PointTable::with_capacity(crime_schema(), cfg.rows);
    let type_w = zipf_weights(cfg.n_types);

    // lint: allow(cancel-poll-reachability) synthetic corpus generation at dataset (re)load, bounded by the configured row count — not on any query path
    for _ in 0..cfg.rows {
        let loc = city.sample_location(&mut rng);
        let day = rng.gen_range(0..cfg.days as i64);
        // Night-heavy profile.
        let hour = weighted_index(
            &mut rng,
            &[
                3.0, 2.8, 2.5, 2.0, 1.4, 0.9, 0.7, 0.8, 1.0, 1.1, 1.2, 1.3, 1.4, 1.4, 1.5, 1.6,
                1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0, 3.1,
            ],
        ) as i64;
        let t = cfg.start + day * DAY + hour * HOUR + rng.gen_range(0..HOUR);

        let offense = weighted_index(&mut rng, &type_w) as f32;
        let severity = (1.0 + (normal(&mut rng).abs() * 2.5)).min(10.0) as f32;
        // lint: allow(panic-freedom) push arity matches the two-column schema constructed above
        table.push(loc, t, &[offense, severity]).expect("schema arity is fixed");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::hour_of_day;

    #[test]
    fn complaints_deterministic_and_typed() {
        let city = CityModel::nyc_like();
        let cfg = EventConfig::month(5_000, 1, 0);
        let a = generate_complaints(&city, &cfg);
        let b = generate_complaints(&city, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        let types = a.column_by_name("complaint_type").unwrap();
        assert!(types.iter().all(|&t| t >= 0.0 && t < cfg.n_types as f32));
    }

    #[test]
    fn complaint_types_are_zipf_skewed() {
        let city = CityModel::nyc_like();
        let t = generate_complaints(&city, &EventConfig::month(20_000, 2, 0));
        let types = t.column_by_name("complaint_type").unwrap();
        let top = types.iter().filter(|&&c| c == 0.0).count();
        let rare = types.iter().filter(|&&c| c == 11.0).count();
        assert!(top > 5 * rare.max(1), "top {top} rare {rare}");
    }

    #[test]
    fn crime_is_night_skewed() {
        let city = CityModel::nyc_like();
        let t = generate_crime(&city, &EventConfig::month(20_000, 3, 0));
        let mut night = 0u32;
        let mut morning = 0u32;
        for i in 0..t.len() {
            match hour_of_day(t.time(i)) {
                22..=23 | 0..=2 => night += 1,
                5..=8 => morning += 1,
                _ => {}
            }
        }
        assert!(night > morning, "night {night} vs morning {morning}");
        let sev = t.column_by_name("severity").unwrap();
        assert!(sev.iter().all(|&s| (1.0..=10.0).contains(&s)));
    }

    #[test]
    fn generators_use_independent_streams() {
        // Same seed, different generator → different data.
        let city = CityModel::nyc_like();
        let cfg = EventConfig::month(100, 5, 0);
        let a = generate_complaints(&city, &cfg);
        let b = generate_crime(&city, &cfg);
        assert_ne!(a.loc(0), b.loc(0));
    }
}
