//! Synthetic urban data generators.
//!
//! The demo drives Urbane with NYC open data (taxi trips, 311 complaints,
//! crime) over NYC's administrative polygons. Those exact records are not
//! redistributable here, so these generators produce statistically faithful
//! stand-ins (DESIGN.md §2): spatial Gaussian-mixture hotspots over an
//! NYC-sized extent, diurnal/weekly temporal rhythm, realistic attribute
//! marginals, and region sets at the demo's resolutions (boroughs /
//! neighborhoods / tract-grid). Everything is seeded and deterministic.

pub mod city;
pub mod corpus;
pub mod events;
pub mod regions;
pub mod taxi;

use rand::Rng;

/// Standard-normal sample via Box–Muller (keeps `rand_distr` out of the
/// dependency set).
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Sample an index from a discrete weight vector (weights need not sum to 1).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must be positive");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_single() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(weighted_index(&mut rng, &[5.0]), 0);
    }
}
