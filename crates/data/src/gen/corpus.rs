//! Shared seeded test corpus: the point-cloud and simple-polygon generators
//! every test suite and the `urbane-verify` harness draw from.
//!
//! Before this module each crate's test module carried its own ad-hoc
//! `random_points` copy; the copies drifted in value ranges and rng draw
//! order, which made cross-suite results incomparable. These generators are
//! the single source of truth: fully seeded, deterministic across platforms
//! (the vendored `StdRng` is a fixed splitmix-based stream), and documented
//! about their draw order so refactors can keep byte-identical tables.
//!
//! Polygon generators produce *simple* (non-self-intersecting) rings,
//! normalized counter-clockwise — the repo-wide exterior-ring convention.

use crate::schema::{AttrType, Schema};
use crate::table::PointTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urbane_geom::{BoundingBox, GeomError, Point, Polygon, Ring};

/// The attribute column every corpus table carries.
pub const CORPUS_COLUMN: &str = "v";

/// Uniform random points over `extent` with one numeric column `"v"` in
/// `[0, value_max)` and timestamps `0..n` (row index).
///
/// Draw order per row is `x`, `y`, then `v` — the exact order the historical
/// per-crate copies used, so tables generated here are byte-identical to the
/// ones the old test helpers produced for the same `(n, seed, extent)`.
pub fn uniform_points(extent: &BoundingBox, n: usize, seed: u64, value_max: f32) -> PointTable {
    // lint: allow(panic-freedom) static schema literal; name and arity are fixed at compile time
    let schema = Schema::new([(CORPUS_COLUMN, AttrType::Numeric)]).expect("static corpus schema");
    let mut t = PointTable::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let p = Point::new(
            extent.min.x + rng.gen::<f64>() * extent.width(),
            extent.min.y + rng.gen::<f64>() * extent.height(),
        );
        // lint: allow(panic-freedom) push arity matches the one-column schema constructed above
        t.push(p, i as i64, &[rng.gen::<f32>() * value_max]).expect("arity matches schema");
    }
    t
}

/// Hotspot-skewed points: `clusters` Gaussian blobs inside `extent` (plus a
/// uniform background) with the same `"v"` column contract as
/// [`uniform_points`]. Samples falling outside the extent are clamped onto
/// it, so every row is inside the canvas and boundary bands stay meaningful.
pub fn clustered_points(
    extent: &BoundingBox,
    n: usize,
    clusters: usize,
    seed: u64,
    value_max: f32,
) -> PointTable {
    // lint: allow(panic-freedom) static schema literal; name and arity are fixed at compile time
    let schema = Schema::new([(CORPUS_COLUMN, AttrType::Numeric)]).expect("static corpus schema");
    let mut t = PointTable::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let k = clusters.max(1);
    let centers: Vec<Point> = (0..k)
        .map(|_| {
            Point::new(
                extent.min.x + rng.gen::<f64>() * extent.width(),
                extent.min.y + rng.gen::<f64>() * extent.height(),
            )
        })
        .collect();
    let sigma = 0.08 * extent.width().max(extent.height());
    for i in 0..n {
        let p = if rng.gen::<f64>() < 0.15 {
            // Uniform background so empty regions stay possible.
            Point::new(
                extent.min.x + rng.gen::<f64>() * extent.width(),
                extent.min.y + rng.gen::<f64>() * extent.height(),
            )
        } else {
            let c = centers[rng.gen_range(0..k)];
            let x = c.x + super::normal(&mut rng) * sigma;
            let y = c.y + super::normal(&mut rng) * sigma;
            Point::new(
                x.clamp(extent.min.x, extent.max.x),
                y.clamp(extent.min.y, extent.max.y),
            )
        };
        // lint: allow(panic-freedom) push arity matches the one-column schema constructed above
        t.push(p, i as i64, &[rng.gen::<f32>() * value_max]).expect("arity matches schema");
    }
    t
}

/// Seeded *simple* polygon: `vertices` points at monotonically increasing
/// angles around `center` with jittered radii in
/// `[0.35, 1.0] · mean_radius`. Monotone angles make the ring star-shaped
/// about `center`, hence non-self-intersecting; increasing angles make it
/// counter-clockwise, matching the exterior-ring convention.
pub fn simple_polygon(
    center: Point,
    mean_radius: f64,
    vertices: usize,
    seed: u64,
) -> Result<Polygon, GeomError> {
    let n = vertices.max(3);
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<Point> = (0..n)
        .map(|k| {
            // Jitter each vertex inside its own angular slot so the angle
            // sequence stays strictly monotone (simple by construction).
            let theta =
                (k as f64 + 0.85 * rng.gen::<f64>()) / n as f64 * std::f64::consts::TAU;
            let r = mean_radius * (0.35 + 0.65 * rng.gen::<f64>());
            Point::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect();
    Ok(Polygon::new(Ring::new(pts)?))
}

/// A batch of seeded simple polygons scattered over `extent` (possibly
/// overlapping) — the shared corpus for parser round-trip and geometry
/// tests. Polygon `i` uses seed `seed + i`, so subsets are stable.
pub fn simple_polygons(
    extent: &BoundingBox,
    count: usize,
    seed: u64,
) -> Result<Vec<Polygon>, GeomError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let radius = 0.18 * extent.width().min(extent.height());
    (0..count)
        .map(|i| {
            let c = Point::new(
                extent.min.x + radius + rng.gen::<f64>() * (extent.width() - 2.0 * radius),
                extent.min.y + radius + rng.gen::<f64>() * (extent.height() - 2.0 * radius),
            );
            let verts = 4 + (rng.gen::<f64>() * 9.0) as usize; // 4..=12
            simple_polygon(c, radius * (0.5 + 0.5 * rng.gen::<f64>()), verts, seed ^ (i as u64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_points_deterministic_and_in_extent() {
        let extent = BoundingBox::from_coords(10.0, -5.0, 110.0, 45.0);
        let a = uniform_points(&extent, 500, 7, 10.0);
        let b = uniform_points(&extent, 500, 7, 10.0);
        assert_eq!(a.len(), 500);
        for i in 0..a.len() {
            assert_eq!(a.loc(i), b.loc(i));
            assert_eq!(a.time(i), i as i64);
            assert!(extent.contains(a.loc(i)));
            let v = a.attr(i, 0);
            assert!((0.0..10.0).contains(&v), "value {v} outside [0, value_max)");
        }
        let c = uniform_points(&extent, 500, 8, 10.0);
        assert_ne!(a.loc(0), c.loc(0), "different seeds must differ");
    }

    #[test]
    fn clustered_points_stay_inside() {
        let extent = BoundingBox::from_coords(0.0, 0.0, 50.0, 20.0);
        let t = clustered_points(&extent, 400, 3, 11, 100.0);
        assert_eq!(t.len(), 400);
        for i in 0..t.len() {
            assert!(extent.contains(t.loc(i)));
        }
    }

    #[test]
    fn simple_polygons_are_simple_and_ccw() {
        for seed in 0..40u64 {
            let poly = simple_polygon(Point::new(3.0, -2.0), 5.0, 3 + (seed as usize % 10), seed)
                .expect("star-shaped ring is valid");
            assert!(poly.exterior().is_ccw(), "seed {seed}: exterior must be CCW");
            assert!(poly.exterior().is_simple(), "seed {seed}: ring must be simple");
            assert!(poly.area() > 0.0);
        }
    }

    #[test]
    fn polygon_batch_deterministic() {
        let extent = BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0);
        let a = simple_polygons(&extent, 6, 3).unwrap();
        let b = simple_polygons(&extent, 6, 3).unwrap();
        assert_eq!(a.len(), 6);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.exterior().vertices(), pb.exterior().vertices());
            assert!(extent.contains_box(&pa.bbox()), "polygon must fit the extent");
        }
    }
}
