//! Region-polygon generators: the synthetic stand-ins for NYC's
//! administrative geographies at the demo's resolutions.
//!
//! * [`grid_regions`] — regular grids (the "census tract"/fine-grid levels);
//! * [`voronoi_neighborhoods`] — irregular convex partitions with
//!   Lloyd-relaxed, hotspot-biased sites: statistically similar to real
//!   neighborhood polygons (varied size, shared boundaries, full coverage);
//! * [`boroughs`] — a coarse 5-region partition;
//! * [`star_regions`] — non-convex many-vertex stress polygons for the
//!   polygon-complexity experiment (E3);
//! * [`resolution_pyramid`] — the borough → neighborhood → tract bundle the
//!   Urbane resolution switcher flips through.
//!
//! Voronoi cells are computed exactly by half-plane clipping (each cell is
//! the extent rectangle clipped against the perpendicular bisectors to every
//! other site) — `O(n²)` construction, fine for the ≤10k regions used here.

use crate::region::RegionSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urbane_geom::{BoundingBox, Point, Polygon, Ring};

/// Clip a convex polygon against the half-plane `{p : (p - m) · d ≤ 0}`
/// (Sutherland–Hodgman, single plane). Returns `None` when fully clipped.
fn clip_halfplane(pts: &[Point], m: Point, d: Point) -> Option<Vec<Point>> {
    let side = |p: Point| (p - m).dot(d);
    let n = pts.len();
    let mut out = Vec::with_capacity(n + 2);
    for i in 0..n {
        let a = pts[i];
        let b = pts[(i + 1) % n];
        let (sa, sb) = (side(a), side(b));
        if sa <= 0.0 {
            out.push(a);
        }
        if (sa < 0.0 && sb > 0.0) || (sa > 0.0 && sb < 0.0) {
            let t = sa / (sa - sb);
            out.push(a.lerp(b, t));
        }
    }
    (out.len() >= 3).then_some(out)
}

/// Exact Voronoi cell of `site` within `bbox` against the other `sites`.
fn voronoi_cell(bbox: &BoundingBox, site: Point, sites: &[Point]) -> Option<Polygon> {
    let mut cell: Vec<Point> = bbox.corners().to_vec();
    for &other in sites {
        if other.approx_eq(site, 0.0) {
            continue;
        }
        let mid = site.lerp(other, 0.5);
        let dir = other - site; // keep the side closer to `site`
        cell = clip_halfplane(&cell, mid, dir)?;
    }
    Ring::new(cell).ok().map(Polygon::new)
}

/// A regular `nx × ny` grid partition of `bbox`.
pub fn grid_regions(bbox: &BoundingBox, nx: u32, ny: u32) -> RegionSet {
    assert!(nx > 0 && ny > 0, "grid needs cells");
    let w = bbox.width() / nx as f64;
    let h = bbox.height() / ny as f64;
    let mut regions = Vec::with_capacity((nx * ny) as usize);
    for gy in 0..ny {
        for gx in 0..nx {
            let x0 = bbox.min.x + gx as f64 * w;
            let y0 = bbox.min.y + gy as f64 * h;
            let poly = Polygon::from_coords(&[
                (x0, y0),
                (x0 + w, y0),
                (x0 + w, y0 + h),
                (x0, y0 + h),
            ])
            // lint: allow(panic-freedom) documented expect: axis-aligned grid cells are always valid rings
            .expect("grid cells are valid rings");
            regions.push((format!("cell_{gx}_{gy}"), poly.into()));
        }
    }
    RegionSet::new(format!("grid_{nx}x{ny}"), regions)
}

/// `n` Voronoi "neighborhoods" over `bbox`, with `lloyd` relaxation rounds
/// to even out cell sizes (real neighborhoods are neither uniform nor wildly
/// degenerate). Deterministic in `seed`.
pub fn voronoi_neighborhoods(bbox: &BoundingBox, n: usize, seed: u64, lloyd: u32) -> RegionSet {
    assert!(n >= 1, "need at least one neighborhood");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites: Vec<Point> = (0..n)
        .map(|_| {
            Point::new(
                bbox.min.x + rng.gen::<f64>() * bbox.width(),
                bbox.min.y + rng.gen::<f64>() * bbox.height(),
            )
        })
        .collect();

    for _ in 0..lloyd {
        let moved: Vec<Point> = sites
            .iter()
            .map(|&s| {
                voronoi_cell(bbox, s, &sites).map_or(s, |c| c.centroid())
            })
            .collect();
        sites = moved;
    }

    let regions: Vec<(String, urbane_geom::MultiPolygon)> = sites
        .iter()
        .enumerate()
        .filter_map(|(i, &s)| {
            voronoi_cell(bbox, s, &sites).map(|c| (format!("nbhd_{i}"), c.into()))
        })
        .collect();
    RegionSet::new(format!("neighborhoods_{n}"), regions)
}

/// A coarse 5-region "borough" partition: Voronoi over five fixed anchor
/// sites placed like NYC's borough centroids (relative to the extent).
pub fn boroughs(bbox: &BoundingBox) -> RegionSet {
    let rel = [
        ("Manhattan", 0.42, 0.62),
        ("Brooklyn", 0.48, 0.30),
        ("Queens", 0.70, 0.48),
        ("Bronx", 0.55, 0.88),
        ("Staten Island", 0.12, 0.12),
    ];
    let sites: Vec<Point> = rel
        .iter()
        .map(|&(_, fx, fy)| {
            Point::new(bbox.min.x + fx * bbox.width(), bbox.min.y + fy * bbox.height())
        })
        .collect();
    let regions = rel
        .iter()
        .zip(&sites)
        .map(|(&(name, _, _), &s)| {
            // lint: allow(panic-freedom) documented expect: every site clips a non-empty cell out of its own bbox
            let cell = voronoi_cell(bbox, s, &sites).expect("borough cells are non-empty");
            (name.to_string(), cell.into())
        })
        .collect();
    RegionSet::new("boroughs", regions)
}

/// `n` non-convex star polygons with `vertices` vertices each, randomly
/// placed — the polygon-complexity stressor. Stars may overlap and do not
/// cover the extent (unlike the partitions above), exercising the
/// overlapping-regions path.
pub fn star_regions(bbox: &BoundingBox, n: usize, vertices: usize, seed: u64) -> RegionSet {
    assert!(vertices >= 4 && vertices.is_multiple_of(2), "stars need an even vertex count >= 4");
    let mut rng = StdRng::seed_from_u64(seed);
    let r_max = bbox.width().min(bbox.height()) / (n as f64).sqrt() / 2.0;
    let polys: Vec<Polygon> = (0..n)
        .map(|_| {
            let c = Point::new(
                bbox.min.x + rng.gen::<f64>() * bbox.width(),
                bbox.min.y + rng.gen::<f64>() * bbox.height(),
            );
            let r_out = r_max * (0.5 + rng.gen::<f64>() * 0.5);
            let r_in = r_out * (0.35 + rng.gen::<f64>() * 0.3);
            let phase = rng.gen::<f64>() * std::f64::consts::TAU;
            let pts: Vec<Point> = (0..vertices)
                .map(|i| {
                    let t = phase + i as f64 / vertices as f64 * std::f64::consts::TAU;
                    let r = if i % 2 == 0 { r_out } else { r_in };
                    c + Point::new(t.cos(), t.sin()) * r
                })
                .collect();
            // lint: allow(panic-freedom) documented expect: star polygons have >= 6 distinct vertices by construction
            Polygon::new(Ring::new(pts).expect("star rings are valid"))
        })
        .collect();
    RegionSet::from_polygons(format!("stars_{n}x{vertices}"), "star_", polys)
}

/// The demo's resolution pyramid: boroughs (5) → neighborhoods (`n_nbhd`) →
/// a tract-like grid (`tracts × tracts`).
pub fn resolution_pyramid(bbox: &BoundingBox, n_nbhd: usize, tracts: u32, seed: u64) -> Vec<RegionSet> {
    vec![
        boroughs(bbox),
        voronoi_neighborhoods(bbox, n_nbhd, seed, 2),
        grid_regions(bbox, tracts, tracts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> BoundingBox {
        BoundingBox::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn grid_partitions_exactly() {
        let g = grid_regions(&unit_box(), 4, 5);
        assert_eq!(g.len(), 20);
        let total: f64 = g.iter().map(|(_, _, m)| m.area()).sum();
        assert!((total - 10_000.0).abs() < 1e-6);
        assert_eq!(g.bbox(), unit_box());
        // Interior point belongs to exactly one cell.
        assert_eq!(g.regions_containing(Point::new(10.0, 30.0)).len(), 1);
    }

    #[test]
    fn voronoi_covers_extent() {
        let v = voronoi_neighborhoods(&unit_box(), 24, 7, 2);
        assert_eq!(v.len(), 24);
        let total: f64 = v.iter().map(|(_, _, m)| m.area()).sum();
        assert!((total - 10_000.0).abs() < 1e-6, "cells must tile the box, got {total}");
        // Random interior points: exactly one containing cell (up to shared
        // boundaries, which report 1+).
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0);
            let owners = v.regions_containing(p);
            assert!(!owners.is_empty(), "{p} uncovered");
            assert!(owners.len() <= 2, "{p} in {} cells", owners.len());
        }
    }

    #[test]
    fn voronoi_deterministic() {
        let a = voronoi_neighborhoods(&unit_box(), 10, 3, 1);
        let b = voronoi_neighborhoods(&unit_box(), 10, 3, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn lloyd_relaxation_evens_sizes() {
        let raw = voronoi_neighborhoods(&unit_box(), 40, 5, 0);
        let relaxed = voronoi_neighborhoods(&unit_box(), 40, 5, 4);
        let spread = |rs: &RegionSet| {
            let areas: Vec<f64> = rs.iter().map(|(_, _, m)| m.area()).collect();
            let mean = areas.iter().sum::<f64>() / areas.len() as f64;
            areas.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / areas.len() as f64
        };
        assert!(spread(&relaxed) < spread(&raw), "Lloyd should reduce area variance");
    }

    #[test]
    fn boroughs_partition_and_name() {
        let b = boroughs(&unit_box());
        assert_eq!(b.len(), 5);
        assert!(b.id_of("Manhattan").is_some());
        let total: f64 = b.iter().map(|(_, _, m)| m.area()).sum();
        assert!((total - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn stars_are_valid_and_complex() {
        let s = star_regions(&unit_box(), 10, 32, 9);
        assert_eq!(s.len(), 10);
        for (_, _, m) in s.iter() {
            assert_eq!(m.vertex_count(), 32);
            assert!(m.area() > 0.0);
            for p in m.polygons() {
                assert!(p.is_valid(), "star must be simple");
            }
        }
    }

    #[test]
    fn pyramid_has_three_levels() {
        let p = resolution_pyramid(&unit_box(), 16, 8, 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].len(), 5);
        assert_eq!(p[1].len(), 16);
        assert_eq!(p[2].len(), 64);
        // Increasing region counts = increasing resolution.
        assert!(p[0].len() < p[1].len() && p[1].len() < p[2].len());
    }

    #[test]
    fn halfplane_clip_basics() {
        let sq = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        // Keep x <= 1.
        let c = clip_halfplane(&sq, Point::new(1.0, 0.0), Point::new(1.0, 0.0)).unwrap();
        let ring = Ring::new(c).unwrap();
        assert!((ring.area() - 2.0).abs() < 1e-12);
        // Clip away everything.
        assert!(clip_halfplane(&sq, Point::new(-1.0, 0.0), Point::new(1.0, 0.0)).is_none());
    }
}
