//! Region sets — the `R(id, geometry)` relation of the paper's query.
//!
//! A region set bundles named multipolygon geometries at one resolution
//! (boroughs, neighborhoods, zip codes, census-tract grids…). Urbane's
//! resolution switcher just swaps the active region set.

use urbane_geom::{BoundingBox, MultiPolygon, Point, Polygon};

/// Dense region identifier: index into the region set.
pub type RegionId = u32;

/// A named collection of regions at one spatial resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSet {
    name: String,
    names: Vec<String>,
    geoms: Vec<MultiPolygon>,
    bbox: BoundingBox,
}

impl RegionSet {
    /// Build from `(name, geometry)` pairs.
    pub fn new<S: Into<String>>(name: S, regions: Vec<(String, MultiPolygon)>) -> Self {
        let mut names = Vec::with_capacity(regions.len());
        let mut geoms = Vec::with_capacity(regions.len());
        let mut bbox = BoundingBox::empty();
        for (n, g) in regions {
            bbox = bbox.union(&g.bbox());
            names.push(n);
            geoms.push(g);
        }
        RegionSet { name: name.into(), names, geoms, bbox }
    }

    /// Build from bare polygons with generated names `"{prefix}{i}"`.
    pub fn from_polygons<S: Into<String>>(name: S, prefix: &str, polys: Vec<Polygon>) -> Self {
        let regions = polys
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("{prefix}{i}"), MultiPolygon::from_polygon(p)))
            .collect();
        Self::new(name, regions)
    }

    /// Resolution-set name ("neighborhoods", "boroughs", …).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of regions.
    #[inline]
    pub fn len(&self) -> usize {
        self.geoms.len()
    }

    /// True when the set has no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.geoms.is_empty()
    }

    /// Region name by id.
    #[inline]
    pub fn region_name(&self, id: RegionId) -> &str {
        &self.names[id as usize]
    }

    /// Region geometry by id.
    #[inline]
    pub fn geometry(&self, id: RegionId) -> &MultiPolygon {
        &self.geoms[id as usize]
    }

    /// Iterate `(id, name, geometry)`.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &str, &MultiPolygon)> {
        self.geoms
            .iter()
            .enumerate()
            .map(|(i, g)| (i as RegionId, self.names[i].as_str(), g))
    }

    /// Bounding box over all regions.
    #[inline]
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Total vertex count (polygon-complexity metric for E3).
    pub fn total_vertices(&self) -> usize {
        self.geoms.iter().map(|g| g.vertex_count()).sum()
    }

    /// Exact point-in-region lookup by brute force — ground truth for tests;
    /// returns every region containing `p` (regions may overlap).
    pub fn regions_containing(&self, p: Point) -> Vec<RegionId> {
        self.iter()
            .filter_map(|(id, _, g)| g.contains(p).then_some(id))
            .collect()
    }

    /// Lookup id by region name.
    pub fn id_of(&self, name: &str) -> Option<RegionId> {
        self.names.iter().position(|n| n == name).map(|i| i as RegionId)
    }

    /// A copy of this set in which every region *not* listed in `keep` is
    /// replaced by an empty multipolygon. Ids, names, arity, and — crucially
    /// — the set-level bounding box are all preserved verbatim, so a canvas
    /// planned from the masked set is identical to one planned from the
    /// original. An empty geometry has an empty bbox and therefore joins
    /// nothing, which makes this the subset-evaluation primitive behind the
    /// block cache's residual passes: per-region aggregates of the kept
    /// regions are bit-identical to a whole-set pass.
    pub fn masked(&self, keep: &[RegionId]) -> RegionSet {
        let mut geoms = vec![MultiPolygon::new(vec![]); self.geoms.len()];
        for &id in keep {
            if let Some(g) = self.geoms.get(id as usize) {
                geoms[id as usize] = g.clone();
            }
        }
        RegionSet {
            name: self.name.clone(),
            names: self.names.clone(),
            geoms,
            bbox: self.bbox,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_squares() -> RegionSet {
        RegionSet::from_polygons(
            "test",
            "r",
            vec![
                Polygon::from_coords(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]).unwrap(),
                Polygon::from_coords(&[(3.0, 0.0), (5.0, 0.0), (5.0, 2.0), (3.0, 2.0)]).unwrap(),
            ],
        )
    }

    #[test]
    fn names_and_lookup() {
        let r = two_squares();
        assert_eq!(r.len(), 2);
        assert_eq!(r.region_name(0), "r0");
        assert_eq!(r.id_of("r1"), Some(1));
        assert_eq!(r.id_of("zzz"), None);
        assert_eq!(r.name(), "test");
    }

    #[test]
    fn bbox_spans_all() {
        let r = two_squares();
        assert_eq!(r.bbox(), BoundingBox::from_coords(0.0, 0.0, 5.0, 2.0));
    }

    #[test]
    fn point_lookup() {
        let r = two_squares();
        assert_eq!(r.regions_containing(Point::new(1.0, 1.0)), vec![0]);
        assert_eq!(r.regions_containing(Point::new(4.0, 1.0)), vec![1]);
        assert!(r.regions_containing(Point::new(2.5, 1.0)).is_empty());
    }

    #[test]
    fn overlapping_regions_both_reported() {
        let r = RegionSet::from_polygons(
            "overlap",
            "r",
            vec![
                Polygon::from_coords(&[(0.0, 0.0), (3.0, 0.0), (3.0, 3.0), (0.0, 3.0)]).unwrap(),
                Polygon::from_coords(&[(1.0, 1.0), (4.0, 1.0), (4.0, 4.0), (1.0, 4.0)]).unwrap(),
            ],
        );
        assert_eq!(r.regions_containing(Point::new(2.0, 2.0)), vec![0, 1]);
    }

    #[test]
    fn vertex_count() {
        assert_eq!(two_squares().total_vertices(), 8);
    }

    #[test]
    fn masked_preserves_arity_names_and_bbox() {
        let r = two_squares();
        let m = r.masked(&[1]);
        assert_eq!(m.len(), r.len());
        assert_eq!(m.region_name(0), "r0");
        assert_eq!(m.bbox(), r.bbox());
        // Kept geometry is intact; masked-out geometry joins nothing.
        assert_eq!(m.geometry(1), r.geometry(1));
        assert!(m.geometry(0).bbox().is_empty());
        assert!(m.regions_containing(Point::new(1.0, 1.0)).is_empty());
        assert_eq!(m.regions_containing(Point::new(4.0, 1.0)), vec![1]);
        // Out-of-range ids are ignored rather than panicking.
        let all = r.masked(&[0, 1, 99]);
        assert_eq!(all, r);
    }
}
