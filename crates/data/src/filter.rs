//! Ad-hoc filter conditions — the `[AND filterCondition]*` of the paper's
//! query template.
//!
//! These are exactly the constraints that break pre-aggregation: a data cube
//! can only answer queries whose predicates align with its materialized
//! dimensions, while Raster Join (and the index baselines) evaluate any
//! predicate row-by-row at query time.

use crate::table::PointTable;
use crate::time::TimeRange;
use crate::Result;
use urbane_geom::BoundingBox;

/// One filter condition over a point table.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Attribute in `[min, max]` (closed; NaN never matches).
    AttrRange { column: String, min: f32, max: f32 },
    /// Attribute equals a categorical code.
    AttrEquals { column: String, value: f32 },
    /// Timestamp within a half-open range.
    Time(TimeRange),
    /// Location within a closed box (viewport pre-filter).
    SpatialBox(BoundingBox),
}

impl Filter {
    /// Evaluate this filter for row `i` (column indexes pre-resolved by
    /// [`FilterSet::compile`]).
    fn matches(&self, table: &PointTable, col: Option<usize>, i: usize) -> bool {
        match self {
            Filter::AttrRange { min, max, .. } => {
                // lint: allow(panic-freedom) FilterSet::compile resolves a column for every attr filter before matches() runs
                let v = table.attr(i, col.expect("compiled"));
                v >= *min && v <= *max
            }
            Filter::AttrEquals { value, .. } => {
                // lint: allow(panic-freedom) FilterSet::compile resolves a column for every attr filter before matches() runs
                table.attr(i, col.expect("compiled")) == *value
            }
            Filter::Time(r) => r.contains(table.time(i)),
            Filter::SpatialBox(b) => b.contains(table.loc(i)),
        }
    }
}

/// A conjunction of filters, compiled against a table's schema for fast
/// row-at-a-time evaluation.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    filters: Vec<Filter>,
}

impl FilterSet {
    /// No filters — matches everything.
    pub fn none() -> Self {
        FilterSet { filters: Vec::new() }
    }

    /// Build from a list of conditions.
    pub fn new(filters: Vec<Filter>) -> Self {
        FilterSet { filters }
    }

    /// Add a condition (builder style).
    pub fn and(mut self, f: Filter) -> Self {
        self.filters.push(f);
        self
    }

    /// The conditions.
    pub fn filters(&self) -> &[Filter] {
        &self.filters
    }

    /// True when there are no conditions.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Resolve column names against `table`'s schema.
    ///
    /// # Errors
    /// Fails on unknown column names.
    pub fn compile<'t>(&self, table: &'t PointTable) -> Result<CompiledFilter<'t, '_>> {
        let mut cols = Vec::with_capacity(self.filters.len());
        for f in &self.filters {
            let col = match f {
                Filter::AttrRange { column, .. } | Filter::AttrEquals { column, .. } => {
                    Some(table.schema().index_of(column)?)
                }
                _ => None,
            };
            cols.push(col);
        }
        Ok(CompiledFilter { table, filters: &self.filters, cols })
    }

    /// Evaluate against a whole table, returning the selection mask.
    pub fn mask(&self, table: &PointTable) -> Result<Vec<bool>> {
        let c = self.compile(table)?;
        Ok((0..table.len()).map(|i| c.matches(i)).collect())
    }

    /// Fraction of rows selected (diagnostic for selectivity sweeps).
    pub fn selectivity(&self, table: &PointTable) -> Result<f64> {
        if table.is_empty() {
            return Ok(0.0);
        }
        let mask = self.mask(table)?;
        Ok(mask.iter().filter(|&&b| b).count() as f64 / table.len() as f64)
    }
}

/// A filter set bound to one table, ready for per-row probing.
pub struct CompiledFilter<'t, 'f> {
    table: &'t PointTable,
    filters: &'f [Filter],
    cols: Vec<Option<usize>>,
}

impl CompiledFilter<'_, '_> {
    /// Does row `i` satisfy every condition?
    #[inline]
    pub fn matches(&self, i: usize) -> bool {
        self.filters
            .iter()
            .zip(&self.cols)
            .all(|(f, &col)| f.matches(self.table, col, i))
    }

    /// Iterate the indices of matching rows.
    pub fn matching_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.table.len()).filter(move |&i| self.matches(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use urbane_geom::Point;

    fn table() -> PointTable {
        let schema =
            Schema::new([("fare", AttrType::Numeric), ("kind", AttrType::Categorical)]).unwrap();
        let mut t = PointTable::new(schema);
        t.push(Point::new(0.0, 0.0), 100, &[5.0, 1.0]).unwrap();
        t.push(Point::new(1.0, 1.0), 200, &[15.0, 2.0]).unwrap();
        t.push(Point::new(2.0, 2.0), 300, &[25.0, 1.0]).unwrap();
        t.push(Point::new(3.0, 3.0), 400, &[35.0, 3.0]).unwrap();
        t
    }

    #[test]
    fn empty_filter_matches_all() {
        let t = table();
        assert_eq!(FilterSet::none().mask(&t).unwrap(), vec![true; 4]);
        assert_eq!(FilterSet::none().selectivity(&t).unwrap(), 1.0);
    }

    #[test]
    fn attr_range() {
        let t = table();
        let f = FilterSet::none().and(Filter::AttrRange {
            column: "fare".into(),
            min: 10.0,
            max: 30.0,
        });
        assert_eq!(f.mask(&t).unwrap(), vec![false, true, true, false]);
        assert_eq!(f.selectivity(&t).unwrap(), 0.5);
    }

    #[test]
    fn attr_equals() {
        let t = table();
        let f = FilterSet::none().and(Filter::AttrEquals { column: "kind".into(), value: 1.0 });
        assert_eq!(f.mask(&t).unwrap(), vec![true, false, true, false]);
    }

    #[test]
    fn time_range_half_open() {
        let t = table();
        let f = FilterSet::none().and(Filter::Time(TimeRange::new(200, 400)));
        assert_eq!(f.mask(&t).unwrap(), vec![false, true, true, false]);
    }

    #[test]
    fn spatial_box() {
        let t = table();
        let f = FilterSet::none()
            .and(Filter::SpatialBox(BoundingBox::from_coords(0.5, 0.5, 2.5, 2.5)));
        assert_eq!(f.mask(&t).unwrap(), vec![false, true, true, false]);
    }

    #[test]
    fn conjunction() {
        let t = table();
        let f = FilterSet::none()
            .and(Filter::AttrEquals { column: "kind".into(), value: 1.0 })
            .and(Filter::Time(TimeRange::new(0, 250)));
        assert_eq!(f.mask(&t).unwrap(), vec![true, false, false, false]);
        let c = f.compile(&t).unwrap();
        assert_eq!(c.matching_indices().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        let f = FilterSet::none().and(Filter::AttrRange {
            column: "ghost".into(),
            min: 0.0,
            max: 1.0,
        });
        assert!(f.mask(&t).is_err());
    }

    #[test]
    fn empty_table_selectivity() {
        let t = PointTable::new(Schema::empty());
        assert_eq!(FilterSet::none().selectivity(&t).unwrap(), 0.0);
    }
}
