//! # urban-data — spatio-temporal point tables and synthetic urban data
//!
//! The data-management substrate of the Urbane reproduction:
//!
//! * columnar (structure-of-arrays) point tables with typed attribute
//!   columns ([`table`]),
//! * ad-hoc filter conditions over attributes and time — the query feature
//!   that defeats pre-aggregation and motivates Raster Join ([`filter`]),
//! * timestamps, ranges, and calendar bucketing ([`time`]),
//! * named region sets (neighborhoods, zips, boroughs…) ([`region`]),
//! * synthetic generators that stand in for the NYC open data sets the demo
//!   uses — taxi trips, 311 complaints, crime events — plus region-polygon
//!   generators (Voronoi neighborhoods, grids, borough outlines) ([`gen`]),
//! * CSV and binary I/O ([`csv`], [`binfmt`]).
//!
//! The generators reproduce the statistical properties the experiments
//! depend on (spatial hotspot skew, daily/weekly temporal rhythm, attribute
//! marginals, cardinalities) — see DESIGN.md §2 for the substitution
//! rationale.

#![forbid(unsafe_code)]

// Library paths must surface typed errors, not panic on malformed data;
// tests are exempt — an unwrap there *is* the assertion.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod binfmt;
pub mod binned;
pub mod csv;
pub mod filter;
pub mod gen;
pub mod hierarchy;
pub mod query;
pub mod region;
pub mod sampling;
pub mod schema;
pub mod stats;
pub mod table;
pub mod time;

pub use binned::BinnedPointTable;
pub use filter::{Filter, FilterSet};
pub use query::{AggKind, AggState, AggTable, SpatialAggQuery};
pub use region::{RegionId, RegionSet};
pub use schema::{AttrType, Schema};
pub use table::PointTable;
pub use time::{TimeBucket, TimeRange, Timestamp};

/// Errors from data-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Referenced a column that does not exist.
    UnknownColumn(String),
    /// Row/column arity or type mismatch.
    Schema(String),
    /// CSV / binary decode failure.
    Decode(String),
    /// Container magic/version mismatch: the bytes belong to a different
    /// format (e.g. a `.ubs` store handed to the legacy `.bin` decoder),
    /// not to a truncated or corrupted file of this one.
    Format { expected: &'static str, found: String },
    /// A parallel worker died mid-computation; carries the panic message so
    /// the failure surfaces as a diagnosable error instead of tearing down
    /// the caller.
    Worker(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DataError::Schema(m) => write!(f, "schema error: {m}"),
            DataError::Decode(m) => write!(f, "decode error: {m}"),
            DataError::Format { expected, found } => {
                write!(f, "format mismatch: expected {expected}, found {found}")
            }
            DataError::Worker(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

impl std::error::Error for DataError {}

/// Convenience alias for data results.
pub type Result<T> = std::result::Result<T, DataError>;
