//! Compact binary serialization for point tables.
//!
//! Columnar little-endian layout behind a magic/version header. Large urban
//! data sets (tens of millions of rows) round-trip through this far faster
//! than CSV, and the format doubles as the on-disk cache Urbane's session
//! layer uses between runs.
//!
//! Layout (format `UPT1`, the whole-table sibling of the chunked
//! out-of-core `UBS1` store in `urbane-store`):
//! ```text
//! magic "UPT1" | u32 n_cols | per col: u8 type, u16 name_len, name bytes
//! u64 n_rows | xs f64[n] | ys f64[n] | ts i64[n] | per col: f32[n]
//! ```
//!
//! Decoding is fully bounds-checked: every read goes through a cursor that
//! returns a typed `Decode` error on truncation, so corrupt or hostile input
//! can never panic or slice out of bounds. A wrong *container* — any first
//! four bytes other than `UPT1`, such as a `.ubs` store — is reported as
//! [`DataError::Format`] rather than a generic decode error, so callers can
//! tell "this is the other format" apart from "this file is damaged".

use crate::schema::{AttrType, Schema};
use crate::table::PointTable;
use crate::{DataError, Result};
use urbane_geom::Point;

const MAGIC: &[u8; 4] = b"UPT1";

/// Serialize a table to bytes.
pub fn encode(table: &PointTable) -> Vec<u8> {
    let n = table.len();
    let mut buf = Vec::with_capacity(32 + n * (8 + 8 + 8 + 4 * table.schema().len()));
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(table.schema().len() as u32).to_le_bytes());
    for (name, ty) in table.schema().iter() {
        buf.push(match ty {
            AttrType::Numeric => 0,
            AttrType::Categorical => 1,
        });
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
    }
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for &x in table.xs() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    for &y in table.ys() {
        buf.extend_from_slice(&y.to_le_bytes());
    }
    for &t in table.timestamps() {
        buf.extend_from_slice(&t.to_le_bytes());
    }
    for c in 0..table.schema().len() {
        for &v in table.column(c) {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DataError::Decode(format!("truncated reading {what}")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        match self.take(1, what)? {
            &[b] => Ok(b),
            _ => Err(DataError::Decode(format!("truncated reading {what}"))),
        }
    }

    fn u16_le(&mut self, what: &str) -> Result<u16> {
        match self.take(2, what)? {
            &[a, b] => Ok(u16::from_le_bytes([a, b])),
            _ => Err(DataError::Decode(format!("truncated reading {what}"))),
        }
    }

    fn u32_le(&mut self, what: &str) -> Result<u32> {
        match self.take(4, what)? {
            &[a, b, c, d] => Ok(u32::from_le_bytes([a, b, c, d])),
            _ => Err(DataError::Decode(format!("truncated reading {what}"))),
        }
    }

    fn u64_le(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64_le(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64_le(what)?))
    }

    fn i64_le(&mut self, what: &str) -> Result<i64> {
        Ok(self.u64_le(what)? as i64)
    }

    fn f32_le(&mut self, what: &str) -> Result<f32> {
        Ok(f32::from_bits(self.u32_le(what)?))
    }
}

/// Deserialize a table from bytes produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<PointTable> {
    let err = |m: &str| DataError::Decode(m.to_string());
    let mut cur = Cursor::new(buf);

    let magic = cur.take(4, "magic")?;
    if magic != MAGIC {
        return Err(DataError::Format {
            expected: "UPT1",
            found: String::from_utf8_lossy(magic).into_owned(),
        });
    }
    let n_cols = cur.u32_le("column count")? as usize;
    if n_cols > 4096 {
        return Err(err("implausible column count"));
    }
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let ty = match cur.u8("column type")? {
            0 => AttrType::Numeric,
            1 => AttrType::Categorical,
            other => return Err(DataError::Decode(format!("unknown column type {other}"))),
        };
        let name_len = cur.u16_le("column name length")? as usize;
        let name = cur.take(name_len, "column name")?;
        let name = String::from_utf8(name.to_vec()).map_err(|_| err("column name not UTF-8"))?;
        cols.push((name, ty));
    }
    let schema = Schema::new(cols)?;

    let n = cur.u64_le("row count")?;
    let n = usize::try_from(n).map_err(|_| err("row count overflow"))?;
    let payload = n
        .checked_mul(8 + 8 + 8 + 4 * schema.len())
        .ok_or_else(|| err("row count overflow"))?;
    if cur.remaining() < payload {
        return Err(err("truncated column data"));
    }

    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(cur.f64_le("x column")?);
    }
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        ys.push(cur.f64_le("y column")?);
    }
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        ts.push(cur.i64_le("t column")?);
    }
    let mut attr_cols: Vec<Vec<f32>> = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(cur.f32_le("attribute column")?);
        }
        attr_cols.push(col);
    }

    // Rebuild through the public API to recompute the bbox invariant.
    let mut table = PointTable::with_capacity(schema.clone(), n);
    let mut row = vec![0.0f32; schema.len()];
    for i in 0..n {
        for (r, col) in row.iter_mut().zip(&attr_cols) {
            *r = col[i];
        }
        table.push(Point::new(xs[i], ys[i]), ts[i], &row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointTable {
        let schema = Schema::new([
            ("fare", AttrType::Numeric),
            ("kind", AttrType::Categorical),
        ])
        .unwrap();
        let mut t = PointTable::new(schema);
        for i in 0..100 {
            t.push(
                Point::new(i as f64 * 0.5, -(i as f64)),
                1_000_000 + i,
                &[i as f32 * 1.5, (i % 4) as f32],
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = encode(&t);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.bbox(), t.bbox());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = PointTable::new(Schema::empty());
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.schema().is_empty());
    }

    #[test]
    fn rejects_corruption() {
        let t = sample();
        let bytes = encode(&t);
        assert!(decode(&bytes[..3]).is_err()); // truncated magic
        assert!(decode(&bytes[..20]).is_err()); // truncated header
        assert!(decode(&bytes[..bytes.len() - 8]).is_err()); // truncated data
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode(&bad).is_err()); // bad magic
    }

    #[test]
    fn every_prefix_errs_not_panics() {
        let t = sample();
        let bytes = encode(&t);
        // Any truncation point must produce Err, never a panic or Ok.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn magic_mismatch_is_a_format_error_not_truncation() {
        let t = sample();
        let mut bad = encode(&t);
        bad[..4].copy_from_slice(b"UBS1"); // a store file fed to the table decoder
        match decode(&bad) {
            Err(DataError::Format { expected, found }) => {
                assert_eq!(expected, "UPT1");
                assert_eq!(found, "UBS1");
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        // Truncation stays a Decode error — the two must be distinguishable.
        assert!(matches!(decode(&encode(&t)[..3]), Err(DataError::Decode(_))));
        assert!(matches!(decode(&encode(&t)[..20]), Err(DataError::Decode(_))));
    }

    #[test]
    fn size_is_compact() {
        let t = sample();
        let bytes = encode(&t);
        // 100 rows * (8+8+8+4+4) = 3200 + small header.
        assert!(bytes.len() < 3_400, "len {}", bytes.len());
        assert!(bytes.len() >= 3_200);
    }
}
