//! Compact binary serialization for point tables.
//!
//! Columnar little-endian layout behind a magic/version header. Large urban
//! data sets (tens of millions of rows) round-trip through this far faster
//! than CSV, and the format doubles as the on-disk cache Urbane's session
//! layer uses between runs.
//!
//! Layout:
//! ```text
//! magic "UPT1" | u32 n_cols | per col: u8 type, u16 name_len, name bytes
//! u64 n_rows | xs f64[n] | ys f64[n] | ts i64[n] | per col: f32[n]
//! ```

use crate::schema::{AttrType, Schema};
use crate::table::PointTable;
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use urbane_geom::Point;

const MAGIC: &[u8; 4] = b"UPT1";

/// Serialize a table to bytes.
pub fn encode(table: &PointTable) -> Bytes {
    let n = table.len();
    let mut buf = BytesMut::with_capacity(32 + n * (8 + 8 + 8 + 4 * table.schema().len()));
    buf.put_slice(MAGIC);
    buf.put_u32_le(table.schema().len() as u32);
    for (name, ty) in table.schema().iter() {
        buf.put_u8(match ty {
            AttrType::Numeric => 0,
            AttrType::Categorical => 1,
        });
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
    }
    buf.put_u64_le(n as u64);
    for &x in table.xs() {
        buf.put_f64_le(x);
    }
    for &y in table.ys() {
        buf.put_f64_le(y);
    }
    for &t in table.timestamps() {
        buf.put_i64_le(t);
    }
    for c in 0..table.schema().len() {
        for &v in table.column(c) {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialize a table from bytes produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> Result<PointTable> {
    let err = |m: &str| DataError::Decode(m.to_string());
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<()> {
        if buf.remaining() < n {
            Err(DataError::Decode(format!("truncated reading {what}")))
        } else {
            Ok(())
        }
    };

    need(&buf, 4, "magic")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic (not a UPT1 table)"));
    }
    need(&buf, 4, "column count")?;
    let n_cols = buf.get_u32_le() as usize;
    if n_cols > 4096 {
        return Err(err("implausible column count"));
    }
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        need(&buf, 3, "column header")?;
        let ty = match buf.get_u8() {
            0 => AttrType::Numeric,
            1 => AttrType::Categorical,
            other => return Err(DataError::Decode(format!("unknown column type {other}"))),
        };
        let name_len = buf.get_u16_le() as usize;
        need(&buf, name_len, "column name")?;
        let mut name = vec![0u8; name_len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8(name).map_err(|_| err("column name not UTF-8"))?;
        cols.push((name, ty));
    }
    let schema = Schema::new(cols)?;

    need(&buf, 8, "row count")?;
    let n = buf.get_u64_le() as usize;
    let payload = n
        .checked_mul(8 + 8 + 8 + 4 * schema.len())
        .ok_or_else(|| err("row count overflow"))?;
    if buf.remaining() < payload {
        return Err(err("truncated column data"));
    }

    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(buf.get_f64_le());
    }
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        ys.push(buf.get_f64_le());
    }
    let mut ts = Vec::with_capacity(n);
    for _ in 0..n {
        ts.push(buf.get_i64_le());
    }
    let mut attr_cols: Vec<Vec<f32>> = Vec::with_capacity(schema.len());
    for _ in 0..schema.len() {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(buf.get_f32_le());
        }
        attr_cols.push(col);
    }

    // Rebuild through the public API to recompute the bbox invariant.
    let mut table = PointTable::with_capacity(schema.clone(), n);
    let mut row = vec![0.0f32; schema.len()];
    for i in 0..n {
        for (r, col) in row.iter_mut().zip(&attr_cols) {
            *r = col[i];
        }
        table.push(Point::new(xs[i], ys[i]), ts[i], &row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointTable {
        let schema = Schema::new([
            ("fare", AttrType::Numeric),
            ("kind", AttrType::Categorical),
        ])
        .unwrap();
        let mut t = PointTable::new(schema);
        for i in 0..100 {
            t.push(
                Point::new(i as f64 * 0.5, -(i as f64)),
                1_000_000 + i,
                &[i as f32 * 1.5, (i % 4) as f32],
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = encode(&t);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.bbox(), t.bbox());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = PointTable::new(Schema::empty());
        let back = decode(&encode(&t)).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.schema().is_empty());
    }

    #[test]
    fn rejects_corruption() {
        let t = sample();
        let bytes = encode(&t);
        assert!(decode(&bytes[..3]).is_err()); // truncated magic
        assert!(decode(&bytes[..20]).is_err()); // truncated header
        assert!(decode(&bytes[..bytes.len() - 8]).is_err()); // truncated data
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode(&bad).is_err()); // bad magic
    }

    #[test]
    fn size_is_compact() {
        let t = sample();
        let bytes = encode(&t);
        // 100 rows * (8+8+8+4+4) = 3200 + small header.
        assert!(bytes.len() < 3_400, "len {}", bytes.len());
        assert!(bytes.len() >= 3_200);
    }
}
