//! Column summary statistics.
//!
//! The exploration view's tooltips and axis scales need per-column
//! summaries (count, mean, standard deviation, min/max, quantiles), and the
//! generators' tests use them to validate marginals. One streaming pass
//! computes the moments (Welford); quantiles sort a copy.

use crate::table::PointTable;
use crate::Result;

/// Summary of one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Non-NaN values observed.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Quantiles at the requested cut points.
    pub quantiles: Vec<(f64, f64)>,
}

/// Summarize a slice of values at the given quantile cut points
/// (linear-interpolated, type-7 like R/NumPy default). NaNs are skipped.
pub fn summarize(values: &[f32], quantile_cuts: &[f64]) -> Option<ColumnSummary> {
    let mut clean: Vec<f64> = values
        .iter()
        .filter(|v| !v.is_nan())
        .map(|&v| v as f64)
        .collect();
    if clean.is_empty() {
        return None;
    }

    // Welford's online moments.
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &v) in clean.iter().enumerate() {
        let delta = v - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (v - mean);
    }
    let n = clean.len();
    let std_dev = if n > 1 { (m2 / (n - 1) as f64).sqrt() } else { 0.0 };

    clean.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let quantiles = quantile_cuts
        .iter()
        .map(|&q| {
            let q = q.clamp(0.0, 1.0);
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            (q, clean[lo] + (clean[hi] - clean[lo]) * frac)
        })
        .collect();

    let (Some(&min), Some(&max)) = (clean.first(), clean.last()) else {
        return None;
    };
    Some(ColumnSummary { count: n, mean, std_dev, min, max, quantiles })
}

/// Summarize a table column by name (median/quartiles by default).
pub fn summarize_column(table: &PointTable, column: &str) -> Result<Option<ColumnSummary>> {
    let values = table.column_by_name(column)?;
    Ok(summarize(values, &[0.25, 0.5, 0.75]))
}

impl ColumnSummary {
    /// Lookup a computed quantile (must be one of the requested cuts).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantiles
            .iter()
            .find(|(cut, _)| (cut - q).abs() < 1e-12)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use urbane_geom::Point;

    #[test]
    fn known_values() {
        let s = summarize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0], &[0.5]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        // Sample std dev of this classic data set is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.quantile(0.5), Some(4.5));
    }

    #[test]
    fn quantile_interpolation() {
        let s = summarize(&[0.0, 10.0], &[0.0, 0.25, 0.5, 1.0]).unwrap();
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(0.25), Some(2.5));
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
        assert_eq!(s.quantile(0.33), None); // not requested
    }

    #[test]
    fn nan_skipped_and_empty() {
        let s = summarize(&[1.0, f32::NAN, 3.0], &[0.5]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.quantile(0.5), Some(2.0));
        assert!(summarize(&[], &[0.5]).is_none());
        assert!(summarize(&[f32::NAN], &[0.5]).is_none());
    }

    #[test]
    fn single_value() {
        let s = summarize(&[7.5], &[0.25, 0.75]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.quantile(0.25), Some(7.5));
    }

    #[test]
    fn table_column_summary() {
        let schema = Schema::new([("fare", AttrType::Numeric)]).unwrap();
        let mut t = PointTable::new(schema);
        for i in 1..=100 {
            t.push(Point::new(0.0, 0.0), 0, &[i as f32]).unwrap();
        }
        let s = summarize_column(&t, "fare").unwrap().unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, 50.5);
        assert_eq!(s.quantile(0.5), Some(50.5));
        assert!(summarize_column(&t, "ghost").is_err());
    }
}
