//! Spatially binned point store — the data layout behind fast multi-tile
//! point passes.
//!
//! A [`BinnedPointTable`] reorders a [`PointTable`]'s row indices by a
//! uniform grid cell key (row-major linearized), stored CSR-style: a
//! `offsets` array of `cells + 1` entries and a `permutation` array holding
//! the point indices of cell `c` at `permutation[offsets[c]..offsets[c+1]]`.
//! Each cell also carries the tight bounding box of its points, so a query
//! window prunes at cell granularity without touching the rows.
//!
//! This is the software analogue of keeping tile-resident geometry on the
//! GPU (raster-join style) and of Hashedcubes' linearized spatial ordering:
//! a canvas tile's point pass walks only the cells intersecting its
//! viewport instead of re-scanning the whole table, turning a multi-tile
//! frame from O(tiles × N) into O(N + matched).
//!
//! The structure never copies the columns — it is an index permutation over
//! the existing SoA storage, cheap to build (two counting-sort passes) and
//! cheap to keep per data set across frames.

use crate::table::PointTable;
use urbane_geom::{BoundingBox, Point};

/// Rough number of points a cell of the auto-sized grid should hold. Small
/// enough that a quarter-extent tile prunes most of the table, large enough
/// that the per-cell bookkeeping stays negligible next to the columns.
const TARGET_POINTS_PER_CELL: usize = 1024;

/// Largest auto-chosen grid side. 256×256 cells bound the offsets/bbox
/// arrays to a few MB no matter how large the table grows.
const MAX_AUTO_GRID_SIDE: u32 = 256;

/// A uniform-grid CSR index over a point table's rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedPointTable {
    /// The world box the grid covers (the table's bbox at build time).
    bbox: BoundingBox,
    /// Grid columns.
    gx: u32,
    /// Grid rows.
    gy: u32,
    /// Cell width in world units (positive even for degenerate extents).
    cell_w: f64,
    /// Cell height in world units.
    cell_h: f64,
    /// CSR offsets, `gx * gy + 1` entries.
    offsets: Vec<u32>,
    /// Point indices grouped by cell, ascending within each cell.
    permutation: Vec<u32>,
    /// Tight bbox of each cell's points (empty for empty cells).
    cell_bounds: Vec<BoundingBox>,
    /// Rows indexed (the table's length at build time).
    n_points: usize,
}

impl BinnedPointTable {
    /// Bin `table` on an automatically sized square grid
    /// (≈[`TARGET_POINTS_PER_CELL`] points per cell).
    pub fn build(table: &PointTable) -> Self {
        let n = table.len();
        let side = ((n as f64 / TARGET_POINTS_PER_CELL as f64).sqrt().ceil() as u32)
            .clamp(1, MAX_AUTO_GRID_SIDE);
        Self::with_grid(table, side, side)
    }

    /// Bin `table` on an explicit `gx × gy` grid.
    ///
    /// # Panics
    /// Panics when either dimension is zero — a caller bug, not a data
    /// condition.
    pub fn with_grid(table: &PointTable, gx: u32, gy: u32) -> Self {
        assert!(gx > 0 && gy > 0, "grid dimensions must be positive");
        let bbox = table.bbox();
        let n = table.len();
        let cells = (gx as usize) * (gy as usize);
        // Degenerate widths (empty table, or all points collinear) still get
        // a positive cell size so the coordinate→cell math stays finite.
        let cell_w = if bbox.is_empty() || bbox.width() <= 0.0 { 1.0 } else { bbox.width() / gx as f64 };
        let cell_h = if bbox.is_empty() || bbox.height() <= 0.0 { 1.0 } else { bbox.height() / gy as f64 };

        let mut this = BinnedPointTable {
            bbox,
            gx,
            gy,
            cell_w,
            cell_h,
            offsets: vec![0u32; cells + 1],
            permutation: vec![0u32; n],
            cell_bounds: vec![BoundingBox::empty(); cells],
            n_points: n,
        };

        // Counting sort, two passes. Pass 1: histogram into offsets[c + 1].
        for i in 0..n {
            let c = this.cell_of(table.loc(i));
            this.offsets[c + 1] += 1;
        }
        for c in 0..cells {
            this.offsets[c + 1] += this.offsets[c];
        }
        // Pass 2: place indices. Scanning i ascending keeps each cell's
        // slice ascending, which is what lets consumers rebuild a globally
        // index-ordered candidate list (bit-identical float accumulation
        // against the unbinned scan) with a plain sort.
        let mut cursor: Vec<u32> = this.offsets[..cells].to_vec();
        for i in 0..n {
            let p = table.loc(i);
            let c = this.cell_of(p);
            this.permutation[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
            this.cell_bounds[c].expand(p);
        }
        this
    }

    /// Bin a spatially pre-sorted `table` (rows in Hilbert/file order, as
    /// materialized from a `urbane-store` chunk stream) on an explicit
    /// `gx × gy` grid. Produces exactly the structure [`Self::with_grid`]
    /// builds — same offsets, permutation, and cell bounds — but computes
    /// each row's cell key once instead of twice: keys are staged into a
    /// scratch array during the histogram pass and replayed during
    /// placement. Sorted input additionally arrives in long same-cell runs,
    /// so the histogram increments and cursor writes stay cache-resident
    /// instead of striding the whole grid.
    ///
    /// # Panics
    /// Panics when either dimension is zero — a caller bug, not a data
    /// condition.
    pub fn with_grid_from_sorted(table: &PointTable, gx: u32, gy: u32) -> Self {
        assert!(gx > 0 && gy > 0, "grid dimensions must be positive");
        let bbox = table.bbox();
        let n = table.len();
        let cells = (gx as usize) * (gy as usize);
        let cell_w = if bbox.is_empty() || bbox.width() <= 0.0 { 1.0 } else { bbox.width() / gx as f64 };
        let cell_h = if bbox.is_empty() || bbox.height() <= 0.0 { 1.0 } else { bbox.height() / gy as f64 };

        let mut this = BinnedPointTable {
            bbox,
            gx,
            gy,
            cell_w,
            cell_h,
            offsets: vec![0u32; cells + 1],
            permutation: vec![0u32; n],
            cell_bounds: vec![BoundingBox::empty(); cells],
            n_points: n,
        };

        let mut keys: Vec<usize> = Vec::with_capacity(n);
        for i in 0..n {
            let c = this.cell_of(table.loc(i));
            keys.push(c);
            this.offsets[c + 1] += 1;
        }
        for c in 0..cells {
            this.offsets[c + 1] += this.offsets[c];
        }
        let mut cursor: Vec<u32> = this.offsets[..cells].to_vec();
        for (i, &c) in keys.iter().enumerate() {
            this.permutation[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
            this.cell_bounds[c].expand(table.loc(i));
        }
        this
    }

    /// The linearized (row-major) cell holding `p`. Out-of-box points clamp
    /// into the edge cells, so every row lands somewhere.
    #[inline]
    fn cell_of(&self, p: Point) -> usize {
        let cx = (((p.x - self.bbox.min.x) / self.cell_w).floor() as i64)
            .clamp(0, self.gx as i64 - 1) as usize;
        let cy = (((p.y - self.bbox.min.y) / self.cell_h).floor() as i64)
            .clamp(0, self.gy as i64 - 1) as usize;
        cy * self.gx as usize + cx
    }

    /// Rows indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// True when the underlying table had no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// The world box the grid covers.
    #[inline]
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Grid dimensions `(gx, gy)`.
    #[inline]
    pub fn grid_dims(&self) -> (u32, u32) {
        (self.gx, self.gy)
    }

    /// Number of grid cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        (self.gx as usize) * (self.gy as usize)
    }

    /// Point indices of cell `(cx, cy)`, ascending.
    pub fn cell_indices(&self, cx: u32, cy: u32) -> &[u32] {
        let c = cy as usize * self.gx as usize + cx as usize;
        &self.permutation[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Append the indices of every point that might fall inside `query`
    /// (conservative: cell-bbox granularity, so a superset of the true
    /// matches). Appended order is cell-major, *not* globally ascending —
    /// callers needing index order sort afterwards.
    pub fn candidates_into(&self, query: &BoundingBox, out: &mut Vec<u32>) {
        if query.is_empty() || !query.intersects(&self.bbox) {
            return;
        }
        let cx0 = (((query.min.x - self.bbox.min.x) / self.cell_w).floor() as i64)
            .clamp(0, self.gx as i64 - 1) as u32;
        let cx1 = (((query.max.x - self.bbox.min.x) / self.cell_w).floor() as i64)
            .clamp(0, self.gx as i64 - 1) as u32;
        let cy0 = (((query.min.y - self.bbox.min.y) / self.cell_h).floor() as i64)
            .clamp(0, self.gy as i64 - 1) as u32;
        let cy1 = (((query.max.y - self.bbox.min.y) / self.cell_h).floor() as i64)
            .clamp(0, self.gy as i64 - 1) as u32;
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy as usize * self.gx as usize + cx as usize;
                let lo = self.offsets[c] as usize;
                let hi = self.offsets[c + 1] as usize;
                if lo == hi || !self.cell_bounds[c].intersects(query) {
                    continue;
                }
                out.extend_from_slice(&self.permutation[lo..hi]);
            }
        }
    }

    /// True when `query` covers the whole grid — a consumer gains nothing
    /// from candidate pruning and should scan the table directly.
    pub fn covered_by(&self, query: &BoundingBox) -> bool {
        self.bbox.is_empty() || query.contains_box(&self.bbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn table(n: usize) -> PointTable {
        let schema = Schema::new([("v", AttrType::Numeric)]).unwrap();
        let mut t = PointTable::new(schema);
        for i in 0..n {
            // Deterministic scatter over [0, 100)².
            let x = (i.wrapping_mul(104_729) % 100_000) as f64 / 1_000.0;
            let y = (i.wrapping_mul(15_485_863) % 100_000) as f64 / 1_000.0;
            t.push(Point::new(x, y), i as i64, &[i as f32]).unwrap();
        }
        t
    }

    #[test]
    fn permutation_is_a_bijection() {
        let t = table(2_000);
        let b = BinnedPointTable::with_grid(&t, 8, 8);
        assert_eq!(b.len(), 2_000);
        let mut seen = vec![false; t.len()];
        for (gx, gy) in [(8u32, 8u32)] {
            for cy in 0..gy {
                for cx in 0..gx {
                    for &i in b.cell_indices(cx, cy) {
                        assert!(!seen[i as usize], "index {i} appears twice");
                        seen[i as usize] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every row must be binned");
    }

    #[test]
    fn cell_slices_are_ascending_and_spatially_tight() {
        let t = table(3_000);
        let b = BinnedPointTable::with_grid(&t, 10, 10);
        for cy in 0..10 {
            for cx in 0..10 {
                let idxs = b.cell_indices(cx, cy);
                assert!(idxs.windows(2).all(|w| w[0] < w[1]), "cell slice not ascending");
            }
        }
        // Every point lies inside its cell's recorded bounds.
        let mut out = Vec::new();
        b.candidates_into(&t.bbox(), &mut out);
        assert_eq!(out.len(), t.len());
    }

    #[test]
    fn candidates_superset_of_window_matches() {
        let t = table(5_000);
        let b = BinnedPointTable::build(&t);
        let window = BoundingBox::from_coords(20.0, 30.0, 45.0, 55.0);
        let mut cand = Vec::new();
        b.candidates_into(&window, &mut cand);
        cand.sort_unstable();
        // Superset: every true match is a candidate.
        for i in 0..t.len() {
            if window.contains(t.loc(i)) {
                assert!(cand.binary_search(&(i as u32)).is_ok(), "match {i} missing");
            }
        }
        // And pruning actually happened on a quarter-ish window.
        assert!(cand.len() < t.len(), "window candidates must prune");
    }

    #[test]
    fn disjoint_window_yields_nothing() {
        let t = table(500);
        let b = BinnedPointTable::build(&t);
        let mut cand = Vec::new();
        b.candidates_into(&BoundingBox::from_coords(500.0, 500.0, 600.0, 600.0), &mut cand);
        assert!(cand.is_empty());
        assert!(!b.covered_by(&BoundingBox::from_coords(0.0, 0.0, 1.0, 1.0)));
        assert!(b.covered_by(&t.bbox()));
    }

    #[test]
    fn degenerate_tables_bin_safely() {
        let schema = Schema::new([("v", AttrType::Numeric)]).unwrap();
        let empty = PointTable::new(schema.clone());
        let b = BinnedPointTable::build(&empty);
        assert!(b.is_empty());
        assert_eq!(b.cell_count(), 1);

        // All rows on one spot: zero-width bbox.
        let mut t = PointTable::new(schema);
        for i in 0..10 {
            t.push(Point::new(5.0, 5.0), i, &[0.0]).unwrap();
        }
        let b = BinnedPointTable::with_grid(&t, 4, 4);
        let mut cand = Vec::new();
        b.candidates_into(&BoundingBox::from_coords(0.0, 0.0, 10.0, 10.0), &mut cand);
        assert_eq!(cand.len(), 10);
    }

    #[test]
    fn from_sorted_fast_path_is_bit_identical() {
        // Identical on any input order (the fast path changes the key
        // staging, not the result)…
        let t = table(3_000);
        assert_eq!(
            BinnedPointTable::with_grid_from_sorted(&t, 12, 9),
            BinnedPointTable::with_grid(&t, 12, 9)
        );
        // …including degenerate shapes.
        let schema = Schema::new([("v", AttrType::Numeric)]).unwrap();
        let empty = PointTable::new(schema.clone());
        assert_eq!(
            BinnedPointTable::with_grid_from_sorted(&empty, 4, 4),
            BinnedPointTable::with_grid(&empty, 4, 4)
        );
        let mut flat = PointTable::new(schema);
        for i in 0..20 {
            flat.push(Point::new(i as f64, 5.0), i, &[0.0]).unwrap();
        }
        assert_eq!(
            BinnedPointTable::with_grid_from_sorted(&flat, 8, 8),
            BinnedPointTable::with_grid(&flat, 8, 8)
        );
    }

    #[test]
    fn auto_grid_scales_with_cardinality() {
        let small = BinnedPointTable::build(&table(100));
        let large = BinnedPointTable::build(&table(50_000));
        assert!(large.cell_count() > small.cell_count());
        assert_eq!(small.grid_dims().0, small.grid_dims().1);
    }
}
