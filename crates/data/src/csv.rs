//! CSV import/export for point tables.
//!
//! Real deployments would ingest the NYC open-data CSV dumps; this reader
//! accepts the same shape: a header row `x,y,t,<attr...>` followed by one
//! row per point. Quoting is supported for header names; data cells are
//! plain numbers.

use crate::schema::{AttrType, Schema};
use crate::table::PointTable;
use crate::{DataError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use urbane_geom::Point;

/// Write a table as CSV with an `x,y,t,<attrs>` header.
pub fn write_csv<W: Write>(w: &mut W, table: &PointTable) -> std::io::Result<()> {
    let mut header = String::from("x,y,t");
    for (name, _) in table.schema().iter() {
        header.push(',');
        header.push_str(&quote_if_needed(name));
    }
    writeln!(w, "{header}")?;
    for i in 0..table.len() {
        let p = table.loc(i);
        write!(w, "{},{},{}", p.x, p.y, table.time(i))?;
        for c in 0..table.schema().len() {
            write!(w, ",{}", table.attr(i, c))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

fn quote_if_needed(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV line respecting double-quoted cells.
fn split_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => out.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Read a CSV written by [`write_csv`] (or hand-made with the same header
/// convention). Attribute types default to `Numeric` unless the column name
/// ends in `_type`, `_code`, or equals `passengers`/`kind`/`offense`
/// (heuristic mirroring the generators' categorical columns).
pub fn read_csv<R: Read>(r: R) -> Result<PointTable> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| DataError::Decode("empty CSV".into()))?
        .map_err(|e| DataError::Decode(e.to_string()))?;
    let cols = split_line(header.trim_end());
    if !matches!(cols.get(..3), Some([a, b, c]) if a == "x" && b == "y" && c == "t") {
        return Err(DataError::Decode("header must start with x,y,t".into()));
    }
    let attr_cols: Vec<(String, AttrType)> = cols[3..]
        .iter()
        .map(|name| {
            let ty = if name.ends_with("_type")
                || name.ends_with("_code")
                || matches!(name.as_str(), "passengers" | "kind" | "offense")
            {
                AttrType::Categorical
            } else {
                AttrType::Numeric
            };
            (name.clone(), ty)
        })
        .collect();
    let n_attrs = attr_cols.len();
    let schema = Schema::new(attr_cols)?;
    let mut table = PointTable::new(schema);
    let mut attrs = vec![0.0f32; n_attrs];

    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| DataError::Decode(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_line(line.trim_end());
        if cells.len() != 3 + n_attrs {
            return Err(DataError::Decode(format!(
                "line {}: expected {} cells, got {}",
                lineno + 2,
                3 + n_attrs,
                cells.len()
            )));
        }
        let parse_f64 = |s: &str| {
            s.parse::<f64>()
                .map_err(|_| DataError::Decode(format!("line {}: bad number {s:?}", lineno + 2)))
        };
        let [cx, cy, ct, attr_cells @ ..] = cells.as_slice() else {
            return Err(DataError::Decode(format!("line {}: too few cells", lineno + 2)));
        };
        let x = parse_f64(cx)?;
        let y = parse_f64(cy)?;
        let t = ct
            .parse::<i64>()
            .map_err(|_| DataError::Decode(format!("line {}: bad timestamp", lineno + 2)))?;
        for (a, cell) in attrs.iter_mut().zip(attr_cells) {
            *a = parse_f64(cell)? as f32;
        }
        table.push(Point::new(x, y), t, &attrs)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointTable {
        let schema = Schema::new([
            ("fare", AttrType::Numeric),
            ("passengers", AttrType::Categorical),
        ])
        .unwrap();
        let mut t = PointTable::new(schema);
        t.push(Point::new(1.5, -2.25), 1000, &[12.5, 2.0]).unwrap();
        t.push(Point::new(0.0, 7.0), 2000, &[3.0, 1.0]).unwrap();
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &t).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.loc(0), Point::new(1.5, -2.25));
        assert_eq!(back.time(1), 2000);
        assert_eq!(back.column_by_name("fare").unwrap(), t.column_by_name("fare").unwrap());
        assert_eq!(back.schema().attr_type(1), AttrType::Categorical);
    }

    #[test]
    fn header_text() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample()).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("x,y,t,fare,passengers\n"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_csv(&b""[..]).is_err());
        assert!(read_csv(&b"a,b,c\n"[..]).is_err()); // wrong header
        assert!(read_csv(&b"x,y,t\n1,2\n"[..]).is_err()); // short row
        assert!(read_csv(&b"x,y,t\n1,2,zzz\n"[..]).is_err()); // bad timestamp
        assert!(read_csv(&b"x,y,t,f\n1,2,3,abc\n"[..]).is_err()); // bad attr
    }

    #[test]
    fn blank_lines_skipped() {
        let t = read_csv(&b"x,y,t\n1,2,3\n\n4,5,6\n"[..]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quoted_header_cells() {
        let t = read_csv(&b"x,y,t,\"odd,name\"\n1,2,3,4\n"[..]).unwrap();
        assert_eq!(t.schema().name(0), "odd,name");
        assert_eq!(t.attr(0, 0), 4.0);
    }
}
