//! Columnar point tables.
//!
//! `P(loc, a1, a2, …)` from the paper, stored structure-of-arrays: separate
//! dense vectors for x, y, timestamp, and each attribute. SoA is what both
//! the GPU implementation (vertex attribute buffers) and a scan-friendly CPU
//! implementation want: the point pass reads only `x, y` (+ filter columns),
//! never the full row.

use crate::schema::Schema;
use crate::time::{TimeRange, Timestamp};
use crate::{DataError, Result};
use urbane_geom::{BoundingBox, Point};

/// A spatio-temporal point data set with typed attribute columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointTable {
    schema: Schema,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ts: Vec<Timestamp>,
    attrs: Vec<Vec<f32>>,
    bbox: BoundingBox,
}

impl PointTable {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let attrs = (0..schema.len()).map(|_| Vec::new()).collect();
        PointTable { schema, xs: Vec::new(), ys: Vec::new(), ts: Vec::new(), attrs, bbox: BoundingBox::empty() }
    }

    /// Empty table, pre-allocating for `cap` rows.
    pub fn with_capacity(schema: Schema, cap: usize) -> Self {
        let attrs = (0..schema.len()).map(|_| Vec::with_capacity(cap)).collect();
        PointTable {
            schema,
            xs: Vec::with_capacity(cap),
            ys: Vec::with_capacity(cap),
            ts: Vec::with_capacity(cap),
            attrs,
            bbox: BoundingBox::empty(),
        }
    }

    /// The attribute schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Append one row.
    ///
    /// # Errors
    /// Fails when `attrs.len()` does not match the schema arity.
    pub fn push(&mut self, loc: Point, t: Timestamp, attrs: &[f32]) -> Result<()> {
        if attrs.len() != self.schema.len() {
            return Err(DataError::Schema(format!(
                "row has {} attributes, schema expects {}",
                attrs.len(),
                self.schema.len()
            )));
        }
        self.xs.push(loc.x);
        self.ys.push(loc.y);
        self.ts.push(t);
        for (col, &v) in self.attrs.iter_mut().zip(attrs) {
            col.push(v);
        }
        self.bbox.expand(loc);
        Ok(())
    }

    /// Location of row `i`.
    #[inline]
    pub fn loc(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Timestamp of row `i`.
    #[inline]
    pub fn time(&self, i: usize) -> Timestamp {
        self.ts[i]
    }

    /// Attribute value of row `i`, column `col`.
    #[inline]
    pub fn attr(&self, i: usize, col: usize) -> f32 {
        self.attrs[col][i]
    }

    /// Raw x column.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Raw y column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Raw timestamp column.
    #[inline]
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.ts
    }

    /// Attribute column by index.
    #[inline]
    pub fn column(&self, col: usize) -> &[f32] {
        &self.attrs[col]
    }

    /// Attribute column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[f32]> {
        Ok(&self.attrs[self.schema.index_of(name)?])
    }

    /// Tight bounding box over all point locations (empty when no rows).
    #[inline]
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// `[min, max)`-style time extent covering every row (`None` when empty).
    /// The end is the maximum timestamp + 1 so `contains` holds for it.
    pub fn time_extent(&self) -> Option<TimeRange> {
        let min = *self.ts.iter().min()?;
        let max = *self.ts.iter().max()?;
        Some(TimeRange::new(min, max + 1))
    }

    /// Iterate all point locations.
    pub fn locations(&self) -> impl Iterator<Item = Point> + '_ {
        self.xs.iter().zip(&self.ys).map(|(&x, &y)| Point::new(x, y))
    }

    /// Build a new table containing only the rows where `keep[i]` is true.
    pub fn filter_rows(&self, keep: &[bool]) -> PointTable {
        assert_eq!(keep.len(), self.len(), "selection mask must cover every row");
        let mut out = PointTable::new(self.schema.clone());
        for i in 0..self.len() {
            if keep[i] {
                out.xs.push(self.xs[i]);
                out.ys.push(self.ys[i]);
                out.ts.push(self.ts[i]);
                for (c, col) in self.attrs.iter().enumerate() {
                    out.attrs[c].push(col[i]);
                }
                out.bbox.expand(self.loc(i));
            }
        }
        out
    }

    /// Concatenate another table with the same schema.
    pub fn append(&mut self, other: &PointTable) -> Result<()> {
        if self.schema != other.schema {
            return Err(DataError::Schema("appending tables with different schemas".into()));
        }
        self.xs.extend_from_slice(&other.xs);
        self.ys.extend_from_slice(&other.ys);
        self.ts.extend_from_slice(&other.ts);
        for (dst, src) in self.attrs.iter_mut().zip(&other.attrs) {
            dst.extend_from_slice(src);
        }
        self.bbox = self.bbox.union(&other.bbox);
        Ok(())
    }

    /// Take the first `n` rows (prefix slice) — used by scalability sweeps
    /// to evaluate the same data set at several cardinalities.
    pub fn prefix(&self, n: usize) -> PointTable {
        let n = n.min(self.len());
        let mut out = PointTable::new(self.schema.clone());
        out.xs.extend_from_slice(&self.xs[..n]);
        out.ys.extend_from_slice(&self.ys[..n]);
        out.ts.extend_from_slice(&self.ts[..n]);
        for (dst, src) in out.attrs.iter_mut().zip(&self.attrs) {
            dst.extend_from_slice(&src[..n]);
        }
        out.bbox = BoundingBox::of_points(out.locations());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn sample() -> PointTable {
        let schema = Schema::new([("fare", AttrType::Numeric)]).unwrap();
        let mut t = PointTable::new(schema);
        t.push(Point::new(1.0, 2.0), 100, &[10.0]).unwrap();
        t.push(Point::new(3.0, 4.0), 200, &[20.0]).unwrap();
        t.push(Point::new(-1.0, 0.0), 50, &[30.0]).unwrap();
        t
    }

    #[test]
    fn push_and_access() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.loc(1), Point::new(3.0, 4.0));
        assert_eq!(t.time(2), 50);
        assert_eq!(t.attr(0, 0), 10.0);
        assert_eq!(t.column_by_name("fare").unwrap(), &[10.0, 20.0, 30.0]);
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        assert!(t.push(Point::ORIGIN, 0, &[]).is_err());
        assert!(t.push(Point::ORIGIN, 0, &[1.0, 2.0]).is_err());
        assert_eq!(t.len(), 3, "failed pushes must not mutate");
    }

    #[test]
    fn bbox_and_time_extent() {
        let t = sample();
        assert_eq!(t.bbox(), BoundingBox::from_coords(-1.0, 0.0, 3.0, 4.0));
        let ext = t.time_extent().unwrap();
        assert_eq!(ext.start, 50);
        assert!(ext.contains(200));
        assert!(!ext.contains(201));
        assert!(PointTable::new(Schema::empty()).time_extent().is_none());
    }

    #[test]
    fn filter_rows_preserves_columns() {
        let t = sample();
        let f = t.filter_rows(&[true, false, true]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.loc(1), Point::new(-1.0, 0.0));
        assert_eq!(f.column(0), &[10.0, 30.0]);
        assert_eq!(f.bbox(), BoundingBox::from_coords(-1.0, 0.0, 1.0, 2.0));
    }

    #[test]
    fn append_and_prefix() {
        let mut a = sample();
        let b = sample();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);
        let p = a.prefix(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.loc(3), Point::new(1.0, 2.0));
        assert_eq!(p.prefix(100).len(), 4);
        // Appending a different schema fails.
        let other = PointTable::new(Schema::empty());
        assert!(a.append(&other).is_err());
    }

    #[test]
    fn locations_iterator() {
        let t = sample();
        let pts: Vec<Point> = t.locations().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], Point::new(1.0, 2.0));
    }
}
