//! Timestamps, time ranges, and calendar bucketing.
//!
//! Urbane's temporal dimension: the time slider issues ad-hoc time-range
//! filters, and the data-exploration view buckets measurements per hour /
//! day / week / month. Timestamps are Unix epoch seconds (UTC); the
//! civil-calendar math is implemented here (days-from-epoch algorithm) so no
//! external time crate is needed.


/// Unix epoch seconds (UTC).
pub type Timestamp = i64;

/// Seconds per minute/hour/day/week.
pub const MINUTE: i64 = 60;
pub const HOUR: i64 = 3_600;
pub const DAY: i64 = 86_400;
pub const WEEK: i64 = 7 * DAY;

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    pub start: Timestamp,
    pub end: Timestamp,
}

impl TimeRange {
    /// Build `[start, end)`; normalizes a reversed pair.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        if start <= end {
            TimeRange { start, end }
        } else {
            TimeRange { start: end, end: start }
        }
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// Membership under half-open semantics.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Overlap of two ranges, or `None` when disjoint.
    pub fn intersection(&self, other: &TimeRange) -> Option<TimeRange> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        (s < e).then_some(TimeRange { start: s, end: e })
    }

    /// Split into consecutive buckets of `width` seconds (last may be short).
    pub fn buckets(&self, width: i64) -> Vec<TimeRange> {
        assert!(width > 0, "bucket width must be positive");
        let mut out = Vec::new();
        let mut s = self.start;
        while s < self.end {
            let e = (s + width).min(self.end);
            out.push(TimeRange { start: s, end: e });
            s = e;
        }
        out
    }
}

/// Calendar bucketing granularities used by the exploration view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeBucket {
    Hour,
    Day,
    Week,
    Month,
}

impl TimeBucket {
    /// Truncate `t` down to the start of its bucket.
    ///
    /// Hour/Day/Week truncate arithmetically (weeks anchored to Thursday
    /// 1970-01-01 being day 0 — consistent, though not ISO); Month uses the
    /// civil calendar.
    pub fn truncate(&self, t: Timestamp) -> Timestamp {
        match self {
            TimeBucket::Hour => t.div_euclid(HOUR) * HOUR,
            TimeBucket::Day => t.div_euclid(DAY) * DAY,
            TimeBucket::Week => t.div_euclid(WEEK) * WEEK,
            TimeBucket::Month => {
                let (y, m, _) = civil_from_days(t.div_euclid(DAY));
                days_from_civil(y, m, 1) * DAY
            }
        }
    }

    /// The bucket containing `t`, as a range.
    pub fn range_of(&self, t: Timestamp) -> TimeRange {
        let start = self.truncate(t);
        let end = match self {
            TimeBucket::Hour => start + HOUR,
            TimeBucket::Day => start + DAY,
            TimeBucket::Week => start + WEEK,
            TimeBucket::Month => {
                let (y, m, _) = civil_from_days(start.div_euclid(DAY));
                let (ny, nm) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
                days_from_civil(ny, nm, 1) * DAY
            }
        };
        TimeRange { start, end }
    }
}

/// Hour of day (0–23, UTC) — drives the generators' diurnal rhythm.
pub fn hour_of_day(t: Timestamp) -> u32 {
    (t.rem_euclid(DAY) / HOUR) as u32
}

/// Day of week, 0 = Monday … 6 = Sunday (1970-01-01 was a Thursday).
pub fn day_of_week(t: Timestamp) -> u32 {
    ((t.div_euclid(DAY) + 3).rem_euclid(7)) as u32
}

/// Howard Hinnant's `days_from_civil`: days since 1970-01-01 for a civil
/// date. Valid across the full proleptic Gregorian calendar.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: `(year, month, day)` from days-since-epoch.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Epoch timestamp for a UTC civil date-time.
pub fn timestamp(y: i64, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Timestamp {
    days_from_civil(y, m, d) * DAY + (hh as i64) * HOUR + (mm as i64) * MINUTE + ss as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2009, 1, 1), 14_245);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(14_245), (2009, 1, 1));
        // Leap-year boundary.
        assert_eq!(
            days_from_civil(2008, 3, 1) - days_from_civil(2008, 2, 28),
            2
        );
        assert_eq!(
            days_from_civil(2009, 3, 1) - days_from_civil(2009, 2, 28),
            1
        );
    }

    #[test]
    fn civil_roundtrip_sweep() {
        for z in (-200_000..200_000).step_by(373) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z, "roundtrip failed for day {z}");
        }
    }

    #[test]
    fn timestamp_composition() {
        assert_eq!(timestamp(1970, 1, 1, 0, 0, 0), 0);
        assert_eq!(timestamp(1970, 1, 2, 1, 2, 3), DAY + HOUR + 2 * MINUTE + 3);
        // 2009-01-01 00:00:00 UTC = 1230768000 (known value).
        assert_eq!(timestamp(2009, 1, 1, 0, 0, 0), 1_230_768_000);
    }

    #[test]
    fn dow_and_hour() {
        // 1970-01-01 was a Thursday → dow 3 (0 = Monday).
        assert_eq!(day_of_week(0), 3);
        assert_eq!(day_of_week(4 * DAY), 0); // Monday 1970-01-05
        assert_eq!(hour_of_day(timestamp(2009, 1, 15, 17, 30, 0)), 17);
        // Negative timestamps too.
        assert_eq!(day_of_week(-DAY), 2); // Wednesday 1969-12-31
    }

    #[test]
    fn range_semantics() {
        let r = TimeRange::new(100, 200);
        assert!(r.contains(100));
        assert!(r.contains(199));
        assert!(!r.contains(200));
        assert_eq!(r.duration(), 100);
        assert_eq!(TimeRange::new(200, 100), r); // normalized
    }

    #[test]
    fn range_intersection() {
        let a = TimeRange::new(0, 100);
        let b = TimeRange::new(50, 150);
        assert_eq!(a.intersection(&b), Some(TimeRange::new(50, 100)));
        assert_eq!(a.intersection(&TimeRange::new(100, 200)), None); // touching = disjoint
    }

    #[test]
    fn fixed_width_buckets() {
        let r = TimeRange::new(0, 250);
        let b = r.buckets(100);
        assert_eq!(b.len(), 3);
        assert_eq!(b[2], TimeRange::new(200, 250)); // short tail
        assert_eq!(b.iter().map(|x| x.duration()).sum::<i64>(), 250);
    }

    #[test]
    fn month_truncation() {
        let t = timestamp(2009, 3, 17, 12, 0, 0);
        let start = TimeBucket::Month.truncate(t);
        assert_eq!(start, timestamp(2009, 3, 1, 0, 0, 0));
        let r = TimeBucket::Month.range_of(t);
        assert_eq!(r.end, timestamp(2009, 4, 1, 0, 0, 0));
        // December rolls into the next year.
        let dec = TimeBucket::Month.range_of(timestamp(2009, 12, 31, 23, 0, 0));
        assert_eq!(dec.end, timestamp(2010, 1, 1, 0, 0, 0));
    }

    #[test]
    fn hour_day_truncation() {
        let t = timestamp(2009, 6, 5, 14, 45, 12);
        assert_eq!(TimeBucket::Hour.truncate(t), timestamp(2009, 6, 5, 14, 0, 0));
        assert_eq!(TimeBucket::Day.truncate(t), timestamp(2009, 6, 5, 0, 0, 0));
        assert_eq!(TimeBucket::Day.range_of(t).duration(), DAY);
    }
}
