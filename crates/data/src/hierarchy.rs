//! Region hierarchies — linking resolution levels for drill-down.
//!
//! Urbane's resolution switcher implies a containment hierarchy: every
//! neighborhood belongs to a borough, every tract to a neighborhood. The
//! mapping is derived geometrically (a child is assigned to the parent
//! containing its centroid, falling back to the parent overlapping it most
//! by sampled area), enabling drill-down/roll-up between levels: a parent's
//! aggregate is the sum of its children's for COUNT/SUM.

use crate::region::{RegionId, RegionSet};
use urbane_geom::Point;

/// A child → parent mapping between two region sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    /// `parent_of[child_id] = Some(parent_id)`, `None` when the child falls
    /// outside every parent.
    parent_of: Vec<Option<RegionId>>,
    n_parents: usize,
}

impl Hierarchy {
    /// Derive the mapping from geometry.
    ///
    /// Assignment rule: the parent containing the child's centroid; when no
    /// parent contains it (concave children, edge slivers), the parent
    /// containing the most of a `k × k` sample grid over the child's bbox
    /// (restricted to points inside the child).
    pub fn build(children: &RegionSet, parents: &RegionSet) -> Self {
        let k = 8;
        let parent_of = children
            .iter()
            .map(|(_, _, child)| {
                // Fast path: centroid containment.
                if let Some(c) = child.centroid() {
                    let owners = parents.regions_containing(c);
                    if let Some(&first) = owners.first() {
                        return Some(first);
                    }
                }
                // Fallback: sampled-area vote.
                let bbox = child.bbox();
                if bbox.is_empty() {
                    return None;
                }
                let mut votes = vec![0u32; parents.len()];
                let mut any = false;
                for i in 0..k {
                    for j in 0..k {
                        let p = Point::new(
                            bbox.min.x + (i as f64 + 0.5) / k as f64 * bbox.width(),
                            bbox.min.y + (j as f64 + 0.5) / k as f64 * bbox.height(),
                        );
                        if !child.contains(p) {
                            continue;
                        }
                        for owner in parents.regions_containing(p) {
                            votes[owner as usize] += 1;
                            any = true;
                        }
                    }
                }
                if !any {
                    return None;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(i, _)| i as RegionId)
            })
            .collect();
        Hierarchy { parent_of, n_parents: parents.len() }
    }

    /// Parent of a child (`None` = orphan).
    pub fn parent(&self, child: RegionId) -> Option<RegionId> {
        self.parent_of[child as usize]
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.parent_of.len()
    }

    /// True when there are no children.
    pub fn is_empty(&self) -> bool {
        self.parent_of.is_empty()
    }

    /// Children of a parent.
    pub fn children(&self, parent: RegionId) -> Vec<RegionId> {
        self.parent_of
            .iter()
            .enumerate()
            .filter_map(|(c, &p)| (p == Some(parent)).then_some(c as RegionId))
            .collect()
    }

    /// Children with no parent (outside every parent region).
    pub fn orphans(&self) -> Vec<RegionId> {
        self.parent_of
            .iter()
            .enumerate()
            .filter_map(|(c, &p)| p.is_none().then_some(c as RegionId))
            .collect()
    }

    /// Roll child values up to parents by summation (`None`s skipped) —
    /// exact for COUNT/SUM when children partition the parents.
    pub fn roll_up(&self, child_values: &[Option<f64>]) -> Vec<Option<f64>> {
        assert_eq!(child_values.len(), self.parent_of.len(), "value arity mismatch");
        let mut out: Vec<Option<f64>> = vec![None; self.n_parents];
        for (c, &p) in self.parent_of.iter().enumerate() {
            if let (Some(p), Some(v)) = (p, child_values[c]) {
                let slot = &mut out[p as usize];
                *slot = Some(slot.unwrap_or(0.0) + v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::regions::{grid_regions, voronoi_neighborhoods};
    use urbane_geom::BoundingBox;

    fn extent() -> BoundingBox {
        BoundingBox::from_coords(0.0, 0.0, 80.0, 80.0)
    }

    #[test]
    fn nested_grids_map_exactly() {
        let parents = grid_regions(&extent(), 2, 2);
        let children = grid_regions(&extent(), 8, 8);
        let h = Hierarchy::build(&children, &parents);
        assert_eq!(h.len(), 64);
        assert!(h.orphans().is_empty());
        // Every parent receives exactly 16 children.
        for p in 0..4 {
            assert_eq!(h.children(p).len(), 16, "parent {p}");
        }
        // Spot check: child cell (0,0) belongs to parent cell (0,0).
        assert_eq!(h.parent(0), Some(0));
        // Child cell (7,7) (last) belongs to parent (1,1) (last).
        assert_eq!(h.parent(63), Some(3));
    }

    #[test]
    fn voronoi_children_all_assigned() {
        let parents = grid_regions(&extent(), 2, 2);
        let children = voronoi_neighborhoods(&extent(), 40, 5, 2);
        let h = Hierarchy::build(&children, &parents);
        assert!(h.orphans().is_empty(), "every cell centroid lies in some quadrant");
        let total: usize = (0..4).map(|p| h.children(p).len()).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn roll_up_sums_children() {
        let parents = grid_regions(&extent(), 2, 2);
        let children = grid_regions(&extent(), 4, 4);
        let h = Hierarchy::build(&children, &parents);
        // Each child's value = its own id; parents get the sum of theirs.
        let child_values: Vec<Option<f64>> = (0..16).map(|i| Some(i as f64)).collect();
        let up = h.roll_up(&child_values);
        let total_up: f64 = up.iter().flatten().sum();
        assert_eq!(total_up, (0..16).sum::<usize>() as f64);
        // All four parents populated.
        assert!(up.iter().all(Option::is_some));
    }

    #[test]
    fn roll_up_skips_nulls_and_orphans() {
        let parents = grid_regions(&BoundingBox::from_coords(0.0, 0.0, 40.0, 80.0), 1, 2);
        // Children spanning beyond the parents' extent → orphans exist.
        let children = grid_regions(&extent(), 4, 4);
        let h = Hierarchy::build(&children, &parents);
        assert!(!h.orphans().is_empty());
        let values: Vec<Option<f64>> = (0..16)
            .map(|i| if i % 3 == 0 { None } else { Some(1.0) })
            .collect();
        let up = h.roll_up(&values);
        let assigned: f64 = up.iter().flatten().sum();
        // Only non-null values of non-orphan children are counted.
        let expected: f64 = (0..16)
            .filter(|&i| i % 3 != 0 && h.parent(i as RegionId).is_some())
            .count() as f64;
        assert_eq!(assigned, expected);
    }

    #[test]
    fn drill_down_roll_up_consistency_with_real_joins() {
        use crate::query::SpatialAggQuery;
        use crate::schema::Schema;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Points joined at child resolution, rolled up, must match the
        // parent-resolution join (grid partitions nest exactly).
        let parents = grid_regions(&extent(), 2, 2);
        let children = grid_regions(&extent(), 8, 8);
        let h = Hierarchy::build(&children, &parents);

        let mut t = crate::PointTable::new(Schema::empty());
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..2_000 {
            t.push(
                Point::new(rng.gen::<f64>() * 80.0, rng.gen::<f64>() * 80.0),
                i,
                &[],
            )
            .unwrap();
        }
        let q = SpatialAggQuery::count();
        // Brute-force joins at both levels.
        let child_vals: Vec<Option<f64>> = children
            .iter()
            .map(|(_, _, g)| {
                let n = t.locations().filter(|&p| g.contains(p)).count();
                (n > 0).then_some(n as f64)
            })
            .collect();
        let parent_vals: Vec<Option<f64>> = parents
            .iter()
            .map(|(_, _, g)| {
                let n = t.locations().filter(|&p| g.contains(p)).count();
                (n > 0).then_some(n as f64)
            })
            .collect();
        let rolled = h.roll_up(&child_vals);
        for p in 0..parents.len() {
            let (a, b) = (rolled[p].unwrap_or(0.0), parent_vals[p].unwrap_or(0.0));
            assert!((a - b).abs() < 1e-9, "parent {p}: rolled {a} vs direct {b}");
        }
        let _ = q;
    }
}
