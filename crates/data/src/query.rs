//! The spatial-aggregation query model — the paper's query template:
//!
//! ```sql
//! SELECT AGG(a_i) FROM P, R
//! WHERE P.loc INSIDE R.geometry [AND filterCondition]*
//! GROUP BY R.id
//! ```
//!
//! Defined in the data layer so every executor — Raster Join (bounded and
//! accurate), the index-join baselines, and the pre-aggregation cube — runs
//! the *same* query object and produces comparable [`AggTable`] results.

use crate::filter::FilterSet;
use crate::table::PointTable;
use crate::{DataError, Result};

/// The aggregate function over the joined points of each region.
#[derive(Debug, Clone, PartialEq)]
pub enum AggKind {
    /// `COUNT(*)`.
    Count,
    /// `SUM(column)`.
    Sum(String),
    /// `AVG(column)`.
    Avg(String),
    /// `MIN(column)`.
    Min(String),
    /// `MAX(column)`.
    Max(String),
}

impl AggKind {
    /// The attribute column this aggregate reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            AggKind::Count => None,
            AggKind::Sum(c) | AggKind::Avg(c) | AggKind::Min(c) | AggKind::Max(c) => Some(c),
        }
    }

    /// Resolve the column index against a table (`None` for COUNT).
    pub fn resolve(&self, table: &PointTable) -> Result<Option<usize>> {
        match self.column() {
            None => Ok(None),
            Some(c) => table.schema().index_of(c).map(Some),
        }
    }
}

/// Running aggregate state for one region. Supports merge (needed when
/// canvas tiles or worker threads each hold partial state).
///
/// Alongside the integral `count`, the state carries a `weight` channel:
/// executors that fold whole points keep `weight == count`, while the
/// *weighted* raster-join variant folds boundary pixels fractionally
/// (`weight` = expected points by area coverage). COUNT/SUM/AVG answers are
/// weight-based so both kinds of executor finish through the same code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggState {
    /// Number of points folded in (integral).
    pub count: u64,
    /// Total weight (== `count` for exact folds; fractional for coverage-
    /// weighted folds).
    pub weight: f64,
    /// Weighted sum of the aggregated attribute (0 for COUNT).
    pub sum: f64,
    /// Minimum attribute value seen (weights do not apply to extrema).
    pub min: f64,
    /// Maximum attribute value seen.
    pub max: f64,
}

impl Default for AggState {
    fn default() -> Self {
        AggState { count: 0, weight: 0.0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl AggState {
    /// Fold one point's attribute value (`0.0` for pure counts).
    #[inline]
    pub fn accumulate(&mut self, value: f64) {
        self.count += 1;
        self.weight += 1.0;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold an aggregate contribution with a fractional weight: `count`
    /// points whose combined attribute sum is `sum`, scaled by `w ∈ [0, 1]`
    /// (the fraction of their pixel the region covers). Extrema are folded
    /// unweighted — a fractionally-covered pixel may still hold the true
    /// min/max.
    #[inline]
    pub fn accumulate_weighted(&mut self, count: u64, sum: f64, min: f64, max: f64, w: f64) {
        self.count += count;
        self.weight += count as f64 * w;
        self.sum += sum * w;
        self.min = self.min.min(min);
        self.max = self.max.max(max);
    }

    /// Merge partial states (tiles / threads).
    #[inline]
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.weight += other.weight;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finish into the query's scalar answer; `None` when no points joined
    /// (SQL would return NULL for empty groups).
    pub fn finish(&self, agg: &AggKind) -> Option<f64> {
        if self.count == 0 || self.weight <= 0.0 {
            return None;
        }
        Some(match agg {
            AggKind::Count => self.weight,
            AggKind::Sum(_) => self.sum,
            AggKind::Avg(_) => self.sum / self.weight,
            AggKind::Min(_) => self.min,
            AggKind::Max(_) => self.max,
        })
    }
}

/// A complete spatial-aggregation query: aggregate + ad-hoc filters.
/// (The point table and region set are supplied to the executor.)
#[derive(Debug, Clone, Default)]
pub struct SpatialAggQuery {
    /// The aggregate; defaults to COUNT.
    pub agg: Option<AggKind>,
    /// Zero or more filter conditions.
    pub filters: FilterSet,
}

impl SpatialAggQuery {
    /// `SELECT COUNT(*) … GROUP BY R.id` with no filters.
    pub fn count() -> Self {
        SpatialAggQuery { agg: Some(AggKind::Count), filters: FilterSet::none() }
    }

    /// Query with the given aggregate.
    pub fn new(agg: AggKind) -> Self {
        SpatialAggQuery { agg: Some(agg), filters: FilterSet::none() }
    }

    /// Add a filter condition (builder style).
    pub fn filter(mut self, f: crate::filter::Filter) -> Self {
        self.filters = self.filters.and(f);
        self
    }

    /// The effective aggregate (COUNT when unset).
    pub fn agg_kind(&self) -> AggKind {
        self.agg.clone().unwrap_or(AggKind::Count)
    }
}

/// Per-region aggregation result: `result.values[region_id]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggTable {
    /// The aggregate the values answer.
    pub agg: AggKind,
    /// Raw per-region states (index = region id).
    pub states: Vec<AggState>,
}

impl AggTable {
    /// Zeroed table for `n` regions.
    pub fn new(agg: AggKind, n_regions: usize) -> Self {
        AggTable { agg, states: vec![AggState::default(); n_regions] }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when there are no regions.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Final scalar value for a region (`None` for empty groups).
    pub fn value(&self, region: usize) -> Option<f64> {
        self.states[region].finish(&self.agg)
    }

    /// Final values for all regions.
    pub fn values(&self) -> Vec<Option<f64>> {
        self.states.iter().map(|s| s.finish(&self.agg)).collect()
    }

    /// Merge another partial table (same aggregate, same arity).
    pub fn merge(&mut self, other: &AggTable) -> Result<()> {
        if self.agg != other.agg || self.states.len() != other.states.len() {
            return Err(DataError::Schema("merging incompatible aggregate tables".into()));
        }
        for (a, b) in self.states.iter_mut().zip(&other.states) {
            a.merge(b);
        }
        Ok(())
    }

    /// Largest absolute difference in finished values vs. another table,
    /// treating empty groups as 0 — the error metric for E4.
    pub fn max_abs_diff(&self, other: &AggTable) -> f64 {
        self.states
            .iter()
            .zip(&other.states)
            .map(|(a, b)| {
                let va = a.finish(&self.agg).unwrap_or(0.0);
                let vb = b.finish(&other.agg).unwrap_or(0.0);
                (va - vb).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Total joined points across regions (diagnostic).
    pub fn total_count(&self) -> u64 {
        self.states.iter().map(|s| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use crate::time::TimeRange;

    #[test]
    fn accumulate_and_finish() {
        let mut s = AggState::default();
        for v in [2.0, 8.0, 5.0] {
            s.accumulate(v);
        }
        assert_eq!(s.finish(&AggKind::Count), Some(3.0));
        assert_eq!(s.finish(&AggKind::Sum("x".into())), Some(15.0));
        assert_eq!(s.finish(&AggKind::Avg("x".into())), Some(5.0));
        assert_eq!(s.finish(&AggKind::Min("x".into())), Some(2.0));
        assert_eq!(s.finish(&AggKind::Max("x".into())), Some(8.0));
    }

    #[test]
    fn empty_group_is_null() {
        let s = AggState::default();
        assert_eq!(s.finish(&AggKind::Count), None);
        assert_eq!(s.finish(&AggKind::Avg("x".into())), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = AggState::default();
        let mut b = AggState::default();
        let mut whole = AggState::default();
        for (i, v) in [1.0, 9.0, 4.0, -2.0].iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.accumulate(*v);
            whole.accumulate(*v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn table_merge_and_diff() {
        let mut t1 = AggTable::new(AggKind::Count, 2);
        t1.states[0].accumulate(0.0);
        let mut t2 = AggTable::new(AggKind::Count, 2);
        t2.states[0].accumulate(0.0);
        t2.states[1].accumulate(0.0);
        assert_eq!(t1.max_abs_diff(&t2), 1.0);
        t1.merge(&t2).unwrap();
        assert_eq!(t1.value(0), Some(2.0));
        assert_eq!(t1.value(1), Some(1.0));
        assert_eq!(t1.total_count(), 3);
        // Incompatible merge rejected.
        let t3 = AggTable::new(AggKind::Count, 3);
        assert!(t1.merge(&t3).is_err());
    }

    #[test]
    fn query_builder() {
        let q = SpatialAggQuery::new(AggKind::Avg("fare".into()))
            .filter(Filter::Time(TimeRange::new(0, 100)));
        assert_eq!(q.agg_kind(), AggKind::Avg("fare".into()));
        assert_eq!(q.filters.filters().len(), 1);
        assert_eq!(SpatialAggQuery::default().agg_kind(), AggKind::Count);
    }

    #[test]
    fn resolve_column() {
        use crate::schema::{AttrType, Schema};
        let t = PointTable::new(Schema::new([("fare", AttrType::Numeric)]).unwrap());
        assert_eq!(AggKind::Count.resolve(&t).unwrap(), None);
        assert_eq!(AggKind::Sum("fare".into()).resolve(&t).unwrap(), Some(0));
        assert!(AggKind::Sum("ghost".into()).resolve(&t).is_err());
    }
}
