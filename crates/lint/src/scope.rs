//! Structural scopes recovered from the token stream.
//!
//! Three questions the rules keep asking, answered once per file:
//!
//! 1. **Is this token test code?** — inside a `#[cfg(test)]` item or a
//!    `#[test]` function. The panic-freedom rule exempts those.
//! 2. **Is this token inside an attribute?** — `#[derive(...)]` and friends
//!    mention identifiers that must not be mistaken for calls.
//! 3. **Which function body encloses this token?** — the `catch_unwind`
//!    pairing rule scans "the rest of the same function" for recovery code.
//!
//! All three are brace/bracket matching problems over the significant
//! (non-comment) tokens; no type information needed. The matcher is
//! deliberately forgiving: unbalanced input (mid-edit files, macro soup)
//! degrades to "no span", never to a panic.

use crate::lexer::{Token, TokenKind};

/// Half-open token-index span `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }
}

/// A `fn` item: `fn_idx` is the `fn` keyword token, `body` covers the tokens
/// strictly inside the `{ … }` body (or is empty for bodiless trait methods).
#[derive(Debug, Clone, Copy)]
pub struct FnSpan {
    pub fn_idx: usize,
    pub body: Span,
}

/// Per-file structural index; see module docs.
#[derive(Debug, Default)]
pub struct Scopes {
    test_spans: Vec<Span>,
    attr_spans: Vec<Span>,
    fns: Vec<FnSpan>,
}

impl Scopes {
    /// Is token `idx` inside test-only code (`#[cfg(test)]` / `#[test]`)?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(idx))
    }

    /// Is token `idx` inside an outer attribute `#[…]`?
    pub fn in_attr(&self, idx: usize) -> bool {
        self.attr_spans.iter().any(|s| s.contains(idx))
    }

    /// All `fn` items with bodies, in source order.
    pub fn fn_spans(&self) -> &[FnSpan] {
        &self.fns
    }

    /// Innermost function body containing token `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(idx))
            .min_by_key(|f| f.body.end - f.body.start)
            .copied()
    }
}

/// Indices of non-comment tokens, in order. Rules walk this so comments never
/// interrupt a pattern like `.` `unwrap` `(`.
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect()
}

/// Does an attribute's token text mark test-only code? Catches `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`; deliberately does NOT catch
/// `#[cfg(not(test))]` (that is production code). `#[cfg(any(test, …))]` is
/// treated as test code — conservative for an exemption that only relaxes
/// rules on code also compiled under `cargo test`.
fn is_test_attr(idents: &[&str]) -> bool {
    if idents == ["test"] {
        return true;
    }
    idents.first() == Some(&"cfg")
        && idents.contains(&"test")
        && !idents.contains(&"not")
}

/// Build the structural index for one token stream.
pub fn analyze(tokens: &[Token], sig: &[usize]) -> Scopes {
    let mut scopes = Scopes::default();
    let mut p = 0usize; // position within `sig`

    // Pass 1: attributes (also records which ones are test markers).
    let mut pending_test_attr: Vec<usize> = Vec::new(); // sig positions just past a test attr
    while p < sig.len() {
        let t = &tokens[sig[p]];
        // `#[...]` outer attribute or `#![...]` inner attribute.
        let bracket_off = if p + 1 < sig.len() && tokens[sig[p + 1]].is_punct('[') {
            Some(1)
        } else if p + 2 < sig.len()
            && tokens[sig[p + 1]].is_punct('!')
            && tokens[sig[p + 2]].is_punct('[')
        {
            Some(2)
        } else {
            None
        };
        if t.is_punct('#') && bracket_off.is_some() {
            // Scan to matching ']'.
            let open = p + bracket_off.unwrap_or(1);
            let mut depth = 0usize;
            let mut q = open;
            let mut idents: Vec<&str> = Vec::new();
            while q < sig.len() {
                let tq = &tokens[sig[q]];
                if tq.is_punct('[') {
                    depth += 1;
                } else if tq.is_punct(']') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                } else if tq.kind == TokenKind::Ident {
                    idents.push(tq.text.as_str());
                }
                q += 1;
            }
            let close = q.min(sig.len().saturating_sub(1));
            scopes.attr_spans.push(Span { start: sig[p], end: sig[close] + 1 });
            if is_test_attr(&idents) {
                pending_test_attr.push(close + 1);
            }
            p = close + 1;
        } else {
            p += 1;
        }
    }

    // Pass 2: for each test attribute, the attributed item's body becomes a
    // test span. Skip any further attributes/idents up to the first `{` at
    // paren depth 0 (or stop at `;` — a bodiless item has no span to mark).
    for &start in &pending_test_attr {
        let mut q = start;
        let mut paren = 0usize;
        let mut open_brace: Option<usize> = None;
        while q < sig.len() {
            let tq = &tokens[sig[q]];
            if tq.is_punct('(') {
                paren += 1;
            } else if tq.is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if tq.is_punct('{') && paren == 0 {
                open_brace = Some(q);
                break;
            } else if tq.is_punct(';') && paren == 0 {
                break;
            }
            q += 1;
        }
        if let Some(open) = open_brace {
            if let Some(close) = match_brace(tokens, sig, open) {
                scopes.test_spans.push(Span { start: sig[open], end: sig[close] + 1 });
            }
        }
    }

    // Pass 3: fn bodies. `fn` keyword → first `{` at paren depth 0 before a
    // top-level `;` is the body opener.
    for (pos, &ti) in sig.iter().enumerate() {
        if !tokens[ti].is_ident("fn") {
            continue;
        }
        let mut q = pos + 1;
        let mut paren = 0usize;
        let mut body: Option<Span> = None;
        while q < sig.len() {
            let tq = &tokens[sig[q]];
            if tq.is_punct('(') {
                paren += 1;
            } else if tq.is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if tq.is_punct('{') && paren == 0 {
                if let Some(close) = match_brace(tokens, sig, q) {
                    body = Some(Span { start: sig[q] + 1, end: sig[close] });
                }
                break;
            } else if tq.is_punct(';') && paren == 0 {
                break; // trait method without body
            }
            q += 1;
        }
        if let Some(b) = body {
            scopes.fns.push(FnSpan { fn_idx: ti, body: b });
        }
    }

    scopes
}

/// Given the sig-position of a `{`, return the sig-position of its matching
/// `}` (None when unbalanced).
fn match_brace(tokens: &[Token], sig: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (q, &ti) in sig.iter().enumerate().skip(open) {
        if tokens[ti].is_punct('{') {
            depth += 1;
        } else if tokens[ti].is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(q);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_of(src: &str) -> (Vec<Token>, Vec<usize>, Scopes) {
        let toks = lex(src);
        let sig = significant(&toks);
        let sc = analyze(&toks, &sig);
        (toks, sig, sc)
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let (toks, _sig, sc) = scopes_of(src);
        let unwraps: Vec<usize> =
            (0..toks.len()).filter(|&i| toks[i].is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!sc.in_test(unwraps[0]));
        assert!(sc.in_test(unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }";
        let (toks, _sig, sc) = scopes_of(src);
        let idx = (0..toks.len()).find(|&i| toks[i].is_ident("unwrap"));
        assert!(idx.is_some_and(|i| !sc.in_test(i)));
    }

    #[test]
    fn test_fn_attr() {
        let src = "#[test]\nfn check() { assert!(x.unwrap()); }\nfn prod() { y.unwrap(); }";
        let (toks, _sig, sc) = scopes_of(src);
        let unwraps: Vec<usize> =
            (0..toks.len()).filter(|&i| toks[i].is_ident("unwrap")).collect();
        assert!(sc.in_test(unwraps[0]));
        assert!(!sc.in_test(unwraps[1]));
    }

    #[test]
    fn enclosing_fn_finds_innermost() {
        let src = "fn outer() { fn inner() { marker(); } }";
        let (toks, _sig, sc) = scopes_of(src);
        let m = (0..toks.len()).find(|&i| toks[i].is_ident("marker"));
        let m = match m {
            Some(i) => i,
            None => panic!("marker not lexed"),
        };
        let f = sc.enclosing_fn(m);
        assert!(f.is_some());
        // Innermost body is the smaller one.
        let span = f.map(|f| f.body.end - f.body.start);
        assert!(span.is_some_and(|w| w < 15));
    }

    #[test]
    fn attr_spans_cover_derives() {
        let src = "#[derive(Debug, Clone)]\nstruct S;";
        let (toks, _sig, sc) = scopes_of(src);
        let d = (0..toks.len()).find(|&i| toks[i].is_ident("Debug"));
        assert!(d.is_some_and(|i| sc.in_attr(i)));
        let s = (0..toks.len()).find(|&i| toks[i].is_ident("S"));
        assert!(s.is_some_and(|i| !sc.in_attr(i)));
    }
}
