//! Workspace call graph recovered from tokens.
//!
//! The cross-procedural rules (cancel-poll reachability, lock ordering,
//! wire-input taint — see [`crate::dataflow`]) need to follow execution
//! across function boundaries. This module builds the graph they walk, from
//! nothing but the existing [`crate::lexer`] token stream and the
//! brace-matching [`crate::scope`] index — still std-only, no `syn`:
//!
//! 1. **Function index** — every `fn` item with a body, tagged with the type
//!    it is implemented on (recovered from an `impl … { … }` pass) so that
//!    `QueryBudget::check` and `Breaker::check` stay distinct nodes.
//! 2. **Call edges** — `.method(…)`, `free_call(…)`, and `Path::call(…)`
//!    sites inside each body, resolved by name against the function index.
//!    Resolution is deliberately over-approximate (a method call links to
//!    every method of that name); reachability analyses stay sound under
//!    extra edges, and the witness trace shows exactly which chain fired.
//!
//! Everything here works in *sig-position* space: indices into the
//! significant (non-comment) token list, so comments never split a pattern.

use std::collections::BTreeMap;

use crate::lexer::{lex, Token, TokenKind};
use crate::scope::{analyze, significant, Scopes, Span};

/// One parsed source file, shared by the per-file rules and the graph
/// analyses so each file is lexed and scope-indexed exactly once.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    pub tokens: Vec<Token>,
    /// Indices of non-comment tokens, in order.
    pub sig: Vec<usize>,
    pub scopes: Scopes,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let sig = significant(&tokens);
        let scopes = analyze(&tokens, &sig);
        SourceFile { rel: rel.to_string(), tokens, sig, scopes }
    }

    /// Token at sig-position `pos`.
    pub fn tok(&self, pos: usize) -> Option<&Token> {
        self.sig.get(pos).map(|&i| &self.tokens[i])
    }

    /// The crate name for `crates/<name>/src/…` paths (empty otherwise).
    pub fn crate_name(&self) -> &str {
        self.rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
    }
}

/// Sig-position of the closer matching the opener at sig-position `open`.
pub fn match_delim(sf: &SourceFile, open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for pos in open..sf.sig.len() {
        let t = sf.tok(pos)?;
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(pos);
            }
        }
    }
    None
}

/// The nearest receiver identifier before the `.` at sig-position `dot` —
/// for `self.shards[i].head.lock()` that is `head`.
pub fn receiver_name(sf: &SourceFile, dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        let t = sf.tok(j)?;
        if t.kind == TokenKind::Ident {
            return Some(t.text.clone());
        }
        if t.is_punct(']') || t.is_punct(')') {
            let (open_c, close_c) = if t.is_punct(']') { ('[', ']') } else { ('(', ')') };
            let mut depth = 0usize;
            loop {
                let u = sf.tok(j)?;
                if u.is_punct(close_c) {
                    depth += 1;
                } else if u.is_punct(open_c) {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        } else {
            return None;
        }
    }
}

/// A call site inside a function body, resolved to a graph node.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Index into [`CallGraph::fns`].
    pub callee: usize,
    pub line: u32,
    /// Sig-position of the callee name token (for ordering against lock
    /// acquisition spans).
    pub pos: usize,
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file set the graph was built from.
    pub file: usize,
    pub name: String,
    /// The `impl` type owning this method, when inside an `impl` block.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Body interior as a sig-position span within the owning file.
    pub body: Span,
    /// Parameter names in declaration order (`self` excluded).
    pub params: Vec<String>,
    pub calls: Vec<CallEdge>,
}

impl FnNode {
    /// Display name: `Owner::name` for methods, bare `name` otherwise.
    pub fn qual(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph. Node indices are stable for one build.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
}

/// Keywords that look like calls when followed by `(`.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "let" | "move" | "as"
    )
}

/// Method names so common on std containers that resolving a bare `.name(`
/// against our own impls is almost always a false edge (`.get(i)` on a Vec
/// is not `Buffer2D::get`). Calls to these resolve only through qualified
/// paths (`Buffer2D::get(…)`), never by bare method name.
fn is_ambient_method(s: &str) -> bool {
    matches!(
        s,
        "get" | "get_mut"
            | "insert"
            | "remove"
            | "push"
            | "pop"
            | "len"
            | "is_empty"
            | "iter"
            | "iter_mut"
            | "next"
            | "clone"
            | "new"
            | "clear"
            | "set"
            | "contains"
            | "contains_key"
            | "extend"
            | "write"
            | "read"
            | "send"
            | "recv"
    )
}

impl CallGraph {
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph::default();

        // Pass 1: function index. Test functions never serve a request, so
        // they are not graph nodes (fixture corpora contain no test spans).
        for (fi, sf) in files.iter().enumerate() {
            let impls = impl_spans(sf);
            for f in sf.scopes.fn_spans() {
                if sf.scopes.in_test(f.fn_idx) {
                    continue;
                }
                let Some(fn_pos) = sf.sig.binary_search(&f.fn_idx).ok() else { continue };
                let Some(name_tok) = sf.tok(fn_pos + 1) else { continue };
                if name_tok.kind != TokenKind::Ident {
                    continue;
                }
                let owner = impls
                    .iter()
                    .find(|(span, _)| span.contains(f.fn_idx))
                    .map(|(_, ty)| ty.clone());
                let body = token_span_to_sig(sf, f.body);
                // First `(` outside generic brackets opens the param list
                // (`fn f<F: Fn(u32)>(x: F)` must skip the `Fn(` paren).
                let mut angle = 0isize;
                let mut paren = None;
                for p in (fn_pos + 2)..body.start {
                    let Some(t) = sf.tok(p) else { break };
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle -= 1;
                    } else if t.is_punct('(') && angle <= 0 {
                        paren = Some(p);
                        break;
                    }
                }
                graph.fns.push(FnNode {
                    file: fi,
                    name: name_tok.text.clone(),
                    owner,
                    line: sf.tokens[f.fn_idx].line,
                    body,
                    params: paren.map(|p| param_names(sf, p)).unwrap_or_default(),
                    calls: Vec::new(),
                });
            }
        }

        // Name-resolution maps.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, f) in graph.fns.iter().enumerate() {
            match &f.owner {
                Some(o) => {
                    methods.entry(&f.name).or_default().push(id);
                    qualified.entry((o.as_str(), &f.name)).or_default().push(id);
                }
                None => free.entry(&f.name).or_default().push(id),
            }
        }

        // Pass 2: call edges.
        let mut all_calls: Vec<Vec<CallEdge>> = Vec::with_capacity(graph.fns.len());
        for f in &graph.fns {
            let sf = &files[f.file];
            let mut calls = Vec::new();
            for pos in f.body.start..f.body.end {
                let Some(t) = sf.tok(pos) else { break };
                if t.kind != TokenKind::Ident
                    || is_call_keyword(&t.text)
                    || !sf.tok(pos + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                let prev = pos.checked_sub(1).and_then(|p| sf.tok(p));
                let callees: Vec<usize> = if prev.is_some_and(|p| p.is_punct('.')) {
                    // Method call: every method of that name. A bare name
                    // can also be a closure-field call — acceptable noise.
                    if is_ambient_method(&t.text) {
                        Vec::new()
                    } else {
                        methods.get(t.text.as_str()).cloned().unwrap_or_default()
                    }
                } else if prev.is_some_and(|p| p.is_punct(':')) {
                    // `Path::call(…)` — qualifier is the ident before `::`.
                    let q = pos
                        .checked_sub(3)
                        .and_then(|p| sf.tok(p))
                        .filter(|q| q.kind == TokenKind::Ident)
                        .map(|q| q.text.as_str());
                    let q = match q {
                        // `Self::m` resolves against the enclosing impl.
                        Some("Self") => f.owner.as_deref(),
                        other => other,
                    };
                    match q.and_then(|q| qualified.get(&(q, t.text.as_str()))) {
                        Some(ids) => ids.clone(),
                        // Qualifier may be a module path (`exec::run`): fall
                        // back to free functions of that name.
                        None => free.get(t.text.as_str()).cloned().unwrap_or_default(),
                    }
                } else if prev.is_some_and(|p| p.is_ident("fn")) {
                    continue; // nested fn declaration, not a call
                } else {
                    // Free call: prefer same-file, then same-crate targets to
                    // keep same-named helpers in different crates apart.
                    let ids = free.get(t.text.as_str()).cloned().unwrap_or_default();
                    let same_file: Vec<usize> =
                        ids.iter().copied().filter(|&i| graph.fns[i].file == f.file).collect();
                    if same_file.is_empty() {
                        let same_crate: Vec<usize> = ids
                            .iter()
                            .copied()
                            .filter(|&i| {
                                files[graph.fns[i].file].crate_name() == sf.crate_name()
                            })
                            .collect();
                        if same_crate.is_empty() { ids } else { same_crate }
                    } else {
                        same_file
                    }
                };
                for callee in callees {
                    calls.push(CallEdge { callee, line: t.line, pos });
                }
            }
            all_calls.push(calls);
        }
        for (f, calls) in graph.fns.iter_mut().zip(all_calls) {
            f.calls = calls;
        }
        graph
    }
}

/// Convert a token-index span to the corresponding sig-position span.
fn token_span_to_sig(sf: &SourceFile, span: Span) -> Span {
    let start = sf.sig.partition_point(|&i| i < span.start);
    let end = sf.sig.partition_point(|&i| i < span.end);
    Span { start, end }
}

/// `(body token-span, type name)` for every `impl` block in the file.
/// Handles `impl Foo`, `impl Trait for Foo`, `impl<T> Foo<T> where …`.
fn impl_spans(sf: &SourceFile) -> Vec<(Span, String)> {
    let mut out = Vec::new();
    for pos in 0..sf.sig.len() {
        if !sf.tok(pos).is_some_and(|t| t.is_ident("impl")) {
            continue;
        }
        // Walk to the body `{`, tracking angle depth so generic bounds do
        // not confuse the type-name pick.
        let mut angle = 0isize;
        let mut idents: Vec<String> = Vec::new();
        let mut open = None;
        for q in pos + 1..sf.sig.len() {
            let Some(t) = sf.tok(q) else { break };
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_punct('{') && angle <= 0 {
                open = Some(q);
                break;
            } else if t.is_punct(';') && angle <= 0 {
                break;
            } else if t.kind == TokenKind::Ident && angle <= 0 {
                if t.text == "where" {
                    break; // `impl Foo where …` — type name already seen
                }
                if t.text == "for" {
                    idents.clear(); // keep only the implementing type
                    continue;
                }
                idents.push(t.text.clone());
            }
        }
        // `where` exits the ident loop before finding `{` — resume the walk.
        let open = match open {
            Some(o) => Some(o),
            None => ((pos + 1)..sf.sig.len())
                .find(|&q| sf.tok(q).is_some_and(|t| t.is_punct('{'))),
        };
        let (Some(open), Some(ty)) = (open, idents.last().cloned()) else { continue };
        let Some(close) = match_delim(sf, open, '{', '}') else { continue };
        let (Some(&s), Some(&e)) = (sf.sig.get(open), sf.sig.get(close)) else { continue };
        out.push((Span { start: s, end: e + 1 }, ty));
    }
    out
}

/// Parameter names from the `(` at sig-position `open` (skipping `self`):
/// idents immediately before a `:` at paren depth 1.
fn param_names(sf: &SourceFile, open: usize) -> Vec<String> {
    let mut params = Vec::new();
    if !sf.tok(open).is_some_and(|t| t.is_punct('(')) {
        return params;
    }
    let Some(close) = match_delim(sf, open, '(', ')') else { return params };
    let mut depth = 0usize;
    let mut angle = 0isize;
    for pos in open..close {
        let Some(t) = sf.tok(pos) else { break };
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.kind == TokenKind::Ident
            && t.text != "self"
            && depth == 1
            && angle <= 0
            && sf.tok(pos + 1).is_some_and(|n| n.is_punct(':'))
            && !sf.tok(pos + 2).is_some_and(|n| n.is_punct(':'))
        {
            params.push(t.text.clone());
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, src)| SourceFile::parse(rel, src)).collect();
        let g = CallGraph::build(&files);
        (files, g)
    }

    fn find<'g>(g: &'g CallGraph, qual: &str) -> &'g FnNode {
        g.fns
            .iter()
            .find(|f| f.qual() == qual)
            .unwrap_or_else(|| panic!("no fn {qual} in {:?}",
                g.fns.iter().map(|f| f.qual()).collect::<Vec<_>>()))
    }

    #[test]
    fn methods_get_impl_owners() {
        let src = "struct A;\nimpl A {\n    fn go(&self) {}\n}\nimpl Clone for A {\n    fn clone(&self) -> A { A }\n}\nfn free() {}\n";
        let (_, g) = graph_of(&[("crates/core/src/a.rs", src)]);
        assert_eq!(find(&g, "A::go").owner.as_deref(), Some("A"));
        assert_eq!(find(&g, "A::clone").owner.as_deref(), Some("A"));
        assert!(find(&g, "free").owner.is_none());
    }

    #[test]
    fn calls_resolve_across_files() {
        let a = "pub fn caller() { helper(); other::remote(); x.method_here(); }\nfn helper() {}\n";
        let b = "pub fn remote() {}\npub struct T;\nimpl T {\n    pub fn method_here(&self) {}\n}\n";
        let (_, g) = graph_of(&[("crates/core/src/a.rs", a), ("crates/core/src/b.rs", b)]);
        let caller = find(&g, "caller");
        let quals: Vec<String> =
            caller.calls.iter().map(|c| g.fns[c.callee].qual()).collect();
        assert!(quals.contains(&"helper".to_string()), "{quals:?}");
        assert!(quals.contains(&"remote".to_string()), "{quals:?}");
        assert!(quals.contains(&"T::method_here".to_string()), "{quals:?}");
    }

    #[test]
    fn self_calls_resolve_to_enclosing_impl() {
        let src = "struct S;\nimpl S {\n    fn a(&self) { Self::b(); }\n    fn b() {}\n}\n";
        let (_, g) = graph_of(&[("crates/core/src/s.rs", src)]);
        let a = find(&g, "S::a");
        assert_eq!(a.calls.len(), 1);
        assert_eq!(g.fns[a.calls[0].callee].qual(), "S::b");
    }

    #[test]
    fn params_and_test_fns() {
        let src = "fn f(a: u32, mut b: &str, c: Vec<(u32, u32)>) {}\n#[cfg(test)]\nmod t {\n    fn hidden() {}\n}\n";
        let (_, g) = graph_of(&[("crates/core/src/p.rs", src)]);
        assert_eq!(find(&g, "f").params, vec!["a", "b", "c"]);
        assert!(!g.fns.iter().any(|f| f.name == "hidden"));
    }
}
