//! The rule catalog and the per-file scanner.
//!
//! Each rule encodes one project invariant the last three PRs established by
//! convention (DESIGN.md §8–§10) and nothing previously enforced:
//!
//! | rule                  | invariant                                                        |
//! |-----------------------|------------------------------------------------------------------|
//! | `panic-freedom`       | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/ literal indexing in non-test library code |
//! | `relaxed-ordering`    | every `Ordering::Relaxed` carries `// lint: relaxed-ok <reason>` |
//! | `release-acquire`     | every `store(…, Release)` has a matching `Acquire` load somewhere |
//! | `catch-unwind-pairing`| every `catch_unwind` is followed, in the same function, by poison recovery or abort-flag propagation |
//! | `bounded-growth`      | `push`/`insert` into `self.*` state on request paths carries `// lint: bounded-by <cap>` |
//! | `determinism`         | no `Instant::now`/`SystemTime` in merge/answer paths             |
//! | `bounded-retry`       | every retry loop visibly references an attempt cap or budget     |
//! | `directive-syntax`    | every `// lint:` comment parses                                  |
//!
//! Three further rules are *cross-procedural* — they run over the workspace
//! call graph (see [`crate::callgraph`] / [`crate::dataflow`]) and report a
//! witness trace with every violation:
//!
//! | rule                       | invariant                                                   |
//! |----------------------------|-------------------------------------------------------------|
//! | `cancel-poll-reachability` | loops over points/chunks/tiles/batches reachable from a request entry point must reach a budget/cancel poll |
//! | `lock-order`               | the interprocedural lock acquisition graph is acyclic       |
//! | `wire-taint`               | request-derived sizes are capped before sizing allocations  |
//!
//! Suppression grammar (line comments only, applies to its own line, or —
//! when the comment stands alone — to the next code line):
//!
//! ```text
//! // lint: allow(<rule>) <justification>
//! // lint: relaxed-ok <reason>          (shorthand for allow(relaxed-ordering))
//! // lint: bounded-by <cap>             (shorthand for allow(bounded-growth))
//! // lint: capped-by <bound>            (shorthand for allow(wire-taint))
//! ```
//!
//! Evidence directives feed the graph analyses instead of suppressing:
//!
//! ```text
//! // lint: entrypoint <why>             (next fn is a request entry point)
//! // lint: polls-budget <why>           (this loop/fn polls the budget in a
//! //                                     way the token scanner cannot see)
//! ```
//!
//! The justification/reason/cap is mandatory: a suppression without a *why*
//! is itself a `directive-syntax` violation.

use crate::callgraph::SourceFile;
use crate::lexer::{Token, TokenKind};
use crate::scope::Scopes;

/// Identity of a lint rule; `as_str` gives the kebab-case name used in
/// suppressions, baselines, and output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    PanicFreedom,
    RelaxedOrdering,
    ReleaseAcquire,
    CatchUnwindPairing,
    BoundedGrowth,
    Determinism,
    BoundedRetry,
    DirectiveSyntax,
    CancelPollReachability,
    LockOrder,
    WireTaint,
}

impl RuleId {
    pub const ALL: [RuleId; 11] = [
        RuleId::PanicFreedom,
        RuleId::RelaxedOrdering,
        RuleId::ReleaseAcquire,
        RuleId::CatchUnwindPairing,
        RuleId::BoundedGrowth,
        RuleId::Determinism,
        RuleId::BoundedRetry,
        RuleId::DirectiveSyntax,
        RuleId::CancelPollReachability,
        RuleId::LockOrder,
        RuleId::WireTaint,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::PanicFreedom => "panic-freedom",
            RuleId::RelaxedOrdering => "relaxed-ordering",
            RuleId::ReleaseAcquire => "release-acquire",
            RuleId::CatchUnwindPairing => "catch-unwind-pairing",
            RuleId::BoundedGrowth => "bounded-growth",
            RuleId::Determinism => "determinism",
            RuleId::BoundedRetry => "bounded-retry",
            RuleId::DirectiveSyntax => "directive-syntax",
            RuleId::CancelPollReachability => "cancel-poll-reachability",
            RuleId::LockOrder => "lock-order",
            RuleId::WireTaint => "wire-taint",
        }
    }

    #[allow(clippy::should_implement_trait)] // Option-returning name lookup, not FromStr
    pub fn from_str(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.as_str() == s)
    }
}

/// One step of a witness trace: a source location plus what happens there
/// (entry point, call, lock acquisition, taint source, sink…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    pub file: String,
    pub line: u32,
    pub note: String,
}

/// One rule violation at a source location. `file` is repo-relative with
/// forward slashes. Cross-procedural rules attach the `trace` proving the
/// violation (call chain, lock chain, taint path); per-line rules leave it
/// empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub rule: RuleId,
    pub message: String,
    pub trace: Vec<TraceStep>,
}

impl Violation {
    pub fn new(file: &str, line: u32, rule: RuleId, message: String) -> Violation {
        Violation { file: file.to_string(), line, rule, message, trace: Vec::new() }
    }

    pub fn render(&self) -> String {
        format!("{}:{} [{}] {}", self.file, self.line, self.rule.as_str(), self.message)
    }

    /// Human rendering of the witness trace, one indented line per step.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("      {}. {}:{} {}", i + 1, s.file, s.line, s.note));
        }
        out
    }
}

/// A `Release` store or `Acquire` load on an atomic, keyed by the nearest
/// receiver identifier (the field/variable name).
#[derive(Debug, Clone)]
pub struct AtomicSite {
    pub name: String,
    pub file: String,
    pub line: u32,
}

/// Result of scanning one file. Release/Acquire sites are resolved
/// cross-file by the engine.
#[derive(Debug, Default)]
pub struct FileScan {
    pub violations: Vec<Violation>,
    pub release_stores: Vec<AtomicSite>,
    pub acquire_loads: Vec<AtomicSite>,
}

/// How path-based rule scoping is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Real workspace scan: rules apply only where the invariant lives
    /// (see [`rule_in_scope`]).
    Workspace,
    /// Fixture/corpus scan: every rule applies to every file.
    AllRules,
}

/// Path scoping for [`ScanMode::Workspace`]. `rel` uses forward slashes and
/// is rooted at the repo (e.g. `crates/core/src/executor.rs`).
pub fn rule_in_scope(rule: RuleId, rel: &str) -> bool {
    let bench = rel.starts_with("crates/bench/");
    match rule {
        // The bench harness is measurement code: panics abort an experiment,
        // not a query, and timing calls are its whole point.
        RuleId::PanicFreedom => !bench,
        RuleId::RelaxedOrdering
        | RuleId::ReleaseAcquire
        | RuleId::CatchUnwindPairing
        | RuleId::DirectiveSyntax => true,
        // "Reachable from request handling": the server crate, the
        // session-facing state holders in `urbane` (including the additive
        // block store, which admits an entry per query), and the
        // out-of-core store (readers buffer chunk payloads on query paths).
        RuleId::BoundedGrowth => {
            rel.starts_with("crates/server/src")
                || rel.starts_with("crates/store/src")
                || matches!(
                    rel,
                    "crates/urbane/src/service.rs"
                        | "crates/urbane/src/cache.rs"
                        | "crates/urbane/src/session.rs"
                        | "crates/urbane/src/batch.rs"
                        | "crates/urbane/src/blockcache.rs"
                )
        }
        // Merge/answer paths only. Budget (deadlines), fault (seeded clock
        // skew), guard (ladder timing), and metrics are wall-clock by design;
        // the server crate is transport (read timeouts), not an answer path.
        RuleId::Determinism => {
            const ALLOWLISTED: [&str; 4] = [
                "crates/core/src/budget.rs",
                "crates/core/src/fault.rs",
                "crates/urbane/src/guard.rs",
                "crates/server/src/metrics.rs",
            ];
            let crate_in_scope = ["core", "urbane", "raster", "index", "data", "geometry", "store"]
                .iter()
                .any(|c| rel.starts_with(&format!("crates/{c}/src")));
            crate_in_scope && !rel.contains("/src/bin/") && !ALLOWLISTED.contains(&rel)
        }
        // Retry loops live where calls leave the process: the serving layer
        // (shard transport, supervisor restarts) and the guard ladder.
        RuleId::BoundedRetry => {
            rel.starts_with("crates/server/src")
                || matches!(
                    rel,
                    "crates/urbane/src/service.rs" | "crates/urbane/src/guard.rs"
                )
        }
        // Loops on the request path live in the engine crates. The bench
        // harness, the linter itself, and the offline verifier never serve a
        // request, so a missing poll there cannot stall a query.
        RuleId::CancelPollReachability => {
            !bench && !rel.starts_with("crates/lint/") && !rel.starts_with("crates/verify/")
        }
        // Lock graphs span every serving crate; the bench harness and the
        // linter run single-purpose processes where an inversion cannot
        // deadlock a query.
        RuleId::LockOrder => !bench && !rel.starts_with("crates/lint/"),
        // Wire bytes enter through the server crate only; everything else
        // sees sizes already validated at the boundary.
        RuleId::WireTaint => rel.starts_with("crates/server/src"),
    }
}

/// A parsed `// lint:` directive and the code line it governs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Directive {
    Allow(RuleId),
    RelaxedOk,
    BoundedBy,
    /// `capped-by <bound>` — evidence a request-derived size is bounded;
    /// suppresses `wire-taint` on its target line.
    CappedBy,
    /// `entrypoint <why>` — the next `fn` is a request entry point; seeds
    /// the cancel-poll reachability analysis.
    Entrypoint,
    /// `polls-budget <why>` — evidence this loop/function polls the budget
    /// in a way the token scanner cannot see (e.g. through a trait object).
    PollsBudget,
}

#[derive(Debug, Clone)]
pub(crate) struct Annotation {
    pub(crate) directive: Directive,
    /// The code line this annotation suppresses on.
    pub(crate) target_line: u32,
}

/// Annotations of a file, without directive-syntax reporting — for the graph
/// analyses, which consume evidence directives (`entrypoint`, `polls-budget`,
/// `capped-by`) the per-file scanner has already syntax-checked.
pub(crate) fn annotations_of(tokens: &[Token]) -> Vec<Annotation> {
    collect_annotations("", tokens, false).0
}

/// Extract annotations (and malformed-directive violations) from the token
/// stream. A trailing comment targets its own line; a standalone comment
/// targets the next line bearing a significant token.
fn collect_annotations(
    rel: &str,
    tokens: &[Token],
    emit_syntax: bool,
) -> (Vec<Annotation>, Vec<Violation>) {
    let mut anns = Vec::new();
    let mut viols = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim();
        let code_before = tokens[..i].iter().any(|p| !p.is_comment() && p.line == t.line);
        let target_line = if code_before {
            t.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|p| !p.is_comment())
                .map(|p| p.line)
                .unwrap_or(t.line)
        };
        match parse_directive(rest) {
            Ok(directive) => anns.push(Annotation { directive, target_line }),
            Err(why) => {
                if emit_syntax {
                    viols.push(Violation::new(
                        rel,
                        t.line,
                        RuleId::DirectiveSyntax,
                        format!("malformed `// lint:` directive: {why}"),
                    ));
                }
            }
        }
    }
    (anns, viols)
}

fn parse_directive(rest: &str) -> Result<Directive, String> {
    if let Some(after) = rest.strip_prefix("allow(") {
        let Some(close) = after.find(')') else {
            return Err("missing `)` in `allow(<rule>)`".to_string());
        };
        let (name, justification) = (after[..close].trim(), after[close + 1..].trim());
        let Some(rule) = RuleId::from_str(name) else {
            return Err(format!("unknown rule `{name}`"));
        };
        if justification.is_empty() {
            return Err(format!("`allow({name})` needs a justification"));
        }
        Ok(Directive::Allow(rule))
    } else if let Some(reason) = rest.strip_prefix("relaxed-ok") {
        if reason.trim().is_empty() {
            Err("`relaxed-ok` needs a reason".to_string())
        } else {
            Ok(Directive::RelaxedOk)
        }
    } else if let Some(cap) = rest.strip_prefix("bounded-by") {
        if cap.trim().is_empty() {
            Err("`bounded-by` needs a cap".to_string())
        } else {
            Ok(Directive::BoundedBy)
        }
    } else if let Some(bound) = rest.strip_prefix("capped-by") {
        if bound.trim().is_empty() {
            Err("`capped-by` needs a bound".to_string())
        } else {
            Ok(Directive::CappedBy)
        }
    } else if let Some(why) = rest.strip_prefix("entrypoint") {
        if why.trim().is_empty() {
            Err("`entrypoint` needs a why".to_string())
        } else {
            Ok(Directive::Entrypoint)
        }
    } else if let Some(why) = rest.strip_prefix("polls-budget") {
        if why.trim().is_empty() {
            Err("`polls-budget` needs a why".to_string())
        } else {
            Ok(Directive::PollsBudget)
        }
    } else {
        Err(format!(
            "expected `allow(<rule>) <why>`, `relaxed-ok <reason>`, `bounded-by <cap>`, \
             `capped-by <bound>`, `entrypoint <why>`, or `polls-budget <why>`, got `{rest}`"
        ))
    }
}

pub(crate) fn suppressed(anns: &[Annotation], rule: RuleId, line: u32) -> bool {
    anns.iter().any(|a| {
        a.target_line == line
            && match a.directive {
                Directive::Allow(r) => r == rule,
                Directive::RelaxedOk => rule == RuleId::RelaxedOrdering,
                Directive::BoundedBy => rule == RuleId::BoundedGrowth,
                Directive::CappedBy => rule == RuleId::WireTaint,
                // `polls-budget` is primarily evidence, but targeting a loop
                // line it also vouches for that loop directly.
                Directive::PollsBudget => rule == RuleId::CancelPollReachability,
                Directive::Entrypoint => false,
            }
    })
}

/// Atomic RMW/store operations that publish with Release semantics, and
/// loads that observe with Acquire semantics. `AcqRel` counts on both sides;
/// `SeqCst` implies Acquire on the load side.
const STORE_OPS: [&str; 8] = [
    "store", "swap", "fetch_or", "fetch_and", "fetch_add", "fetch_sub", "fetch_update",
    "compare_exchange",
];
const LOAD_OPS: [&str; 9] = [
    "load", "swap", "fetch_or", "fetch_and", "fetch_add", "fetch_sub", "fetch_update",
    "compare_exchange", "compare_exchange_weak",
];

/// Evidence that a `catch_unwind` result is actually handled: poison
/// recovery, error propagation, or abort-flag traffic later in the function.
const UNWIND_EVIDENCE: [&str; 12] = [
    "clear_poison",
    "Err",
    "is_err",
    "map_err",
    "unwrap_or",
    "unwrap_or_else",
    "abort",
    "poisoned",
    "PoisonError",
    "into_inner",
    "cancel",
    "store",
];

struct FileCtx<'a> {
    rel: &'a str,
    tokens: &'a [Token],
    sig: &'a [usize],
    scopes: &'a Scopes,
    anns: Vec<Annotation>,
    mode: ScanMode,
}

impl FileCtx<'_> {
    fn tok(&self, pos: usize) -> Option<&Token> {
        self.sig.get(pos).map(|&i| &self.tokens[i])
    }

    fn active(&self, rule: RuleId) -> bool {
        self.mode == ScanMode::AllRules || rule_in_scope(rule, self.rel)
    }

    /// Skip test code and attribute interiors for code rules.
    fn skip(&self, pos: usize) -> bool {
        self.sig
            .get(pos)
            .is_none_or(|&i| self.scopes.in_test(i) || self.scopes.in_attr(i))
    }

    fn violation(&self, out: &mut Vec<Violation>, rule: RuleId, line: u32, message: String) {
        if !suppressed(&self.anns, rule, line) {
            out.push(Violation::new(self.rel, line, rule, message));
        }
    }

    /// Sig-position of the `}` matching the `{` at sig-position `open`.
    fn match_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for pos in open..self.sig.len() {
            let t = self.tok(pos)?;
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(pos);
                }
            }
        }
        None
    }

    /// Sig-position of the `)` matching the `(` at sig-position `open`.
    fn match_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for pos in open..self.sig.len() {
            let t = self.tok(pos)?;
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(pos);
                }
            }
        }
        None
    }

    /// The nearest receiver identifier before the `.` at sig-position
    /// `dot` — for `self.shards[i].head.store(…)` that is `head`.
    fn receiver_name(&self, dot: usize) -> Option<String> {
        let mut j = dot.checked_sub(1)?;
        loop {
            let t = self.tok(j)?;
            if t.kind == TokenKind::Ident {
                return Some(t.text.clone());
            }
            if t.is_punct(']') || t.is_punct(')') {
                let (open_c, close_c) =
                    if t.is_punct(']') { ('[', ']') } else { ('(', ')') };
                let mut depth = 0usize;
                loop {
                    let u = self.tok(j)?;
                    if u.is_punct(close_c) {
                        depth += 1;
                    } else if u.is_punct(open_c) {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            } else {
                return None;
            }
        }
    }

    /// Is the `.`-chain receiver before the call at sig-position `dot`
    /// rooted at `self`?
    fn rooted_at_self(&self, dot: usize) -> bool {
        let mut j = match dot.checked_sub(1) {
            Some(j) => j,
            None => return false,
        };
        loop {
            let Some(t) = self.tok(j) else { return false };
            if t.is_ident("self") {
                // `self` must begin the chain: the token before it must not
                // be a `.` (which would make it a field named self — not a
                // thing — or a different expression).
                return true;
            }
            if t.kind == TokenKind::Ident {
                match j.checked_sub(2) {
                    Some(prev) if self.tok(j - 1).is_some_and(|p| p.is_punct('.')) => j = prev,
                    _ => return false,
                }
            } else if t.is_punct(']') {
                let mut depth = 0usize;
                loop {
                    let Some(u) = self.tok(j) else { return false };
                    if u.is_punct(']') {
                        depth += 1;
                    } else if u.is_punct('[') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(nj) = j.checked_sub(1) else { return false };
                    j = nj;
                }
                let Some(nj) = j.checked_sub(1) else { return false };
                j = nj;
            } else {
                return false;
            }
        }
    }

    /// Do the call arguments starting at the `(` at sig-position `open`
    /// mention one of `orderings` (as `Ordering::X` path segments)?
    fn args_mention(&self, open: usize, orderings: &[&str]) -> bool {
        let Some(close) = self.match_paren(open) else { return false };
        (open..close).any(|p| {
            self.tok(p)
                .is_some_and(|t| t.kind == TokenKind::Ident && orderings.contains(&t.text.as_str()))
        })
    }
}

/// Scan one file's source. `rel` must be the repo-relative path (used both
/// for output and for path-scoped rules). Convenience wrapper over
/// [`scan_file`] for callers holding raw source.
pub fn scan_source(rel: &str, src: &str, mode: ScanMode) -> FileScan {
    scan_file(&SourceFile::parse(rel, src), mode)
}

/// Run the per-file rules over an already-parsed [`SourceFile`]. The graph
/// rules run separately in [`crate::dataflow`] over the whole file set.
pub fn scan_file(sf: &SourceFile, mode: ScanMode) -> FileScan {
    let rel = sf.rel.as_str();
    let emit_syntax = mode == ScanMode::AllRules || rule_in_scope(RuleId::DirectiveSyntax, rel);
    let (anns, mut violations) = collect_annotations(rel, &sf.tokens, emit_syntax);
    let ctx =
        FileCtx { rel, tokens: &sf.tokens, sig: &sf.sig, scopes: &sf.scopes, anns, mode };

    let mut scan = FileScan::default();

    for pos in 0..ctx.sig.len() {
        let Some(t) = ctx.tok(pos) else { break };
        if t.kind == TokenKind::Ident && !ctx.skip(pos) {
            scan_ident(&ctx, pos, t, &mut violations, &mut scan);
        }
        if t.is_punct('[') && !ctx.skip(pos) {
            scan_index(&ctx, pos, &mut violations);
        }
    }

    scan.violations = violations;
    scan
}

fn scan_ident(
    ctx: &FileCtx<'_>,
    pos: usize,
    t: &Token,
    violations: &mut Vec<Violation>,
    scan: &mut FileScan,
) {
    let prev_dot = pos > 0 && ctx.tok(pos - 1).is_some_and(|p| p.is_punct('.'));
    let next_paren = ctx.tok(pos + 1).is_some_and(|n| n.is_punct('('));
    let next_bang = ctx.tok(pos + 1).is_some_and(|n| n.is_punct('!'));

    // panic-freedom: method-style panics.
    if ctx.active(RuleId::PanicFreedom) {
        if prev_dot && next_paren && (t.text == "unwrap" || t.text == "expect") {
            ctx.violation(
                violations,
                RuleId::PanicFreedom,
                t.line,
                format!(
                    "`.{}()` in library code — return a typed error or add `// lint: allow(panic-freedom) <why>`",
                    t.text
                ),
            );
        }
        if next_bang
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
        {
            ctx.violation(
                violations,
                RuleId::PanicFreedom,
                t.line,
                format!("`{}!` in library code — return a typed error instead", t.text),
            );
        }
    }

    // relaxed-ordering: `Ordering::Relaxed` without a relaxed-ok reason.
    if ctx.active(RuleId::RelaxedOrdering)
        && t.text == "Relaxed"
        && pos >= 3
        && ctx.tok(pos - 1).is_some_and(|p| p.is_punct(':'))
        && ctx.tok(pos - 2).is_some_and(|p| p.is_punct(':'))
        && ctx.tok(pos - 3).is_some_and(|p| p.is_ident("Ordering"))
    {
        ctx.violation(
            violations,
            RuleId::RelaxedOrdering,
            t.line,
            "`Ordering::Relaxed` without `// lint: relaxed-ok <reason>` — pure counters only; \
             cross-thread flags need Acquire/Release"
                .to_string(),
        );
    }

    // release-acquire: collect candidate publish/observe sites.
    if ctx.active(RuleId::ReleaseAcquire) && prev_dot && next_paren {
        let name = || ctx.receiver_name(pos - 1).unwrap_or_else(|| "<expr>".to_string());
        if STORE_OPS.contains(&t.text.as_str())
            && ctx.args_mention(pos + 1, &["Release", "AcqRel"])
            && !suppressed(&ctx.anns, RuleId::ReleaseAcquire, t.line)
        {
            scan.release_stores.push(AtomicSite {
                name: name(),
                file: ctx.rel.to_string(),
                line: t.line,
            });
        }
        if LOAD_OPS.contains(&t.text.as_str())
            && ctx.args_mention(pos + 1, &["Acquire", "AcqRel", "SeqCst"])
        {
            scan.acquire_loads.push(AtomicSite {
                name: name(),
                file: ctx.rel.to_string(),
                line: t.line,
            });
        }
        // A zero-argument `load()` cannot happen (Ordering is mandatory), so
        // argument scanning is sufficient.
    }

    // catch-unwind-pairing.
    if ctx.active(RuleId::CatchUnwindPairing) && t.text == "catch_unwind" && next_paren {
        let sig_idx = ctx.sig.get(pos).copied().unwrap_or(0);
        let end_tok = ctx
            .scopes
            .enclosing_fn(sig_idx)
            .map(|f| f.body.end)
            .unwrap_or(ctx.tokens.len());
        let has_evidence = ((pos + 1)..ctx.sig.len())
            .take_while(|&p| ctx.sig.get(p).is_some_and(|&i| i < end_tok))
            .any(|p| {
                ctx.tok(p).is_some_and(|u| {
                    u.kind == TokenKind::Ident && UNWIND_EVIDENCE.contains(&u.text.as_str())
                })
            });
        if !has_evidence {
            ctx.violation(
                violations,
                RuleId::CatchUnwindPairing,
                t.line,
                "`catch_unwind` result is not visibly handled in this function — recover \
                 poisoned state or propagate an abort flag"
                    .to_string(),
            );
        }
    }

    // bounded-growth: push/insert into self-rooted state.
    if ctx.active(RuleId::BoundedGrowth)
        && prev_dot
        && next_paren
        && matches!(t.text.as_str(), "push" | "insert")
        && ctx.rooted_at_self(pos - 1)
    {
        ctx.violation(
            violations,
            RuleId::BoundedGrowth,
            t.line,
            format!(
                "`.{}()` into request-path state without `// lint: bounded-by <cap>` — \
                 unbounded growth under load",
                t.text
            ),
        );
    }

    // bounded-retry: a `loop`/`while` whose body retries must show a cap.
    if ctx.active(RuleId::BoundedRetry) && matches!(t.text.as_str(), "loop" | "while") {
        scan_retry_loop(ctx, pos, t, violations);
    }

    // determinism: wall-clock reads in merge/answer paths.
    if ctx.active(RuleId::Determinism) {
        let instant_now = t.text == "Instant"
            && ctx.tok(pos + 1).is_some_and(|p| p.is_punct(':'))
            && ctx.tok(pos + 2).is_some_and(|p| p.is_punct(':'))
            && ctx.tok(pos + 3).is_some_and(|p| p.is_ident("now"));
        if instant_now || t.text == "SystemTime" {
            let what = if instant_now { "Instant::now" } else { "SystemTime" };
            ctx.violation(
                violations,
                RuleId::Determinism,
                t.line,
                format!(
                    "`{what}` in a merge/answer path — answers must not depend on wall-clock; \
                     thread time through QueryBudget or annotate `// lint: allow(determinism) <why>`"
                ),
            );
        }
    }
}

/// Identifiers that mark a loop as a retry loop.
const RETRY_MARKERS: [&str; 2] = ["retry", "backoff"];
/// Identifiers that count as visible evidence the loop is bounded.
const CAP_EVIDENCE: [&str; 6] = ["max", "budget", "deadline", "cap", "attempt", "remaining"];

/// bounded-retry: a `loop`/`while` at sig-position `pos` whose body mentions
/// retry/backoff identifiers must also mention a cap (attempt limit, budget,
/// deadline) in its condition or body — an unbounded retry loop turns a dead
/// dependency into a livelock.
fn scan_retry_loop(ctx: &FileCtx<'_>, pos: usize, t: &Token, violations: &mut Vec<Violation>) {
    // The body is the first `{` after the keyword up to its matching `}`.
    // A `while` condition cannot contain a bare struct literal, so the
    // first brace opens the body.
    let Some(open) =
        ((pos + 1)..ctx.sig.len()).find(|&p| ctx.tok(p).is_some_and(|u| u.is_punct('{')))
    else {
        return;
    };
    let Some(close) = ctx.match_brace(open) else { return };
    let mentions = |p: usize, needles: &[&str]| {
        ctx.tok(p).is_some_and(|u| {
            u.kind == TokenKind::Ident && {
                let low = u.text.to_ascii_lowercase();
                needles.iter().any(|n| low.contains(n))
            }
        })
    };
    if !(open..close).any(|p| mentions(p, &RETRY_MARKERS)) {
        return;
    }
    // Cap evidence may live in the loop condition (`while attempt < max`)
    // or in the body (`if attempt >= max_attempts { break }`).
    if !(pos..close).any(|p| mentions(p, &CAP_EVIDENCE)) {
        ctx.violation(
            violations,
            RuleId::BoundedRetry,
            t.line,
            "retry loop without a visible attempt cap or budget — bound it (max attempts, \
             remaining deadline) or add `// lint: allow(bounded-retry) <why>`"
                .to_string(),
        );
    }
}

/// panic-freedom: indexing by an integer literal (`xs[0]`).
fn scan_index(ctx: &FileCtx<'_>, pos: usize, violations: &mut Vec<Violation>) {
    if !ctx.active(RuleId::PanicFreedom) || pos == 0 {
        return;
    }
    let prev_is_place = ctx.tok(pos - 1).is_some_and(|p| {
        (p.kind == TokenKind::Ident && !is_keyword(&p.text)) || p.is_punct(')') || p.is_punct(']')
    });
    let lit_inside = ctx.tok(pos + 1).is_some_and(|n| n.kind == TokenKind::Int)
        && ctx.tok(pos + 2).is_some_and(|n| n.is_punct(']'));
    if prev_is_place && lit_inside {
        if let Some(t) = ctx.tok(pos + 1) {
            ctx.violation(
                violations,
                RuleId::PanicFreedom,
                t.line,
                format!(
                    "indexing by literal `[{}]` in library code — use `.get({})` or prove \
                     bounds and add `// lint: allow(panic-freedom) <why>`",
                    t.text, t.text
                ),
            );
        }
    }
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `match x { … }` arms are brace-side).
fn is_keyword(s: &str) -> bool {
    matches!(s, "let" | "mut" | "ref" | "in" | "return" | "box" | "const" | "static" | "as")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viols(rel: &str, src: &str) -> Vec<(RuleId, u32)> {
        scan_source(rel, src, ScanMode::AllRules)
            .violations
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn unwrap_fires_and_suppression_works() {
        let src = "fn f() {\n    x.unwrap();\n    y.unwrap(); // lint: allow(panic-freedom) proven nonempty\n}\n";
        assert_eq!(viols("lib.rs", src), vec![(RuleId::PanicFreedom, 2)]);
    }

    #[test]
    fn standalone_comment_targets_next_line() {
        let src = "fn f() {\n    // lint: allow(panic-freedom) fixture\n    x.unwrap();\n    y.unwrap();\n}\n";
        assert_eq!(viols("lib.rs", src), vec![(RuleId::PanicFreedom, 4)]);
    }

    #[test]
    fn malformed_directive_is_a_violation() {
        let src = "// lint: allow(panic-freedom)\nfn f() {}\n";
        assert_eq!(viols("lib.rs", src), vec![(RuleId::DirectiveSyntax, 1)]);
    }

    #[test]
    fn relaxed_needs_reason() {
        let src = "fn f(a: &AtomicU64) {\n    a.fetch_add(1, Ordering::Relaxed);\n    a.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok pure counter\n}\n";
        assert_eq!(viols("lib.rs", src), vec![(RuleId::RelaxedOrdering, 2)]);
    }

    #[test]
    fn index_literal() {
        let src = "fn f(xs: &[u32]) -> u32 {\n    let a = [0u8; 4];\n    let _ = &a;\n    xs[0]\n}\n";
        assert_eq!(viols("lib.rs", src), vec![(RuleId::PanicFreedom, 4)]);
    }

    #[test]
    fn self_push_needs_bound() {
        let src = "impl S {\n    fn add(&mut self, v: u32) {\n        self.items.push(v);\n        self.capped.push(v); // lint: bounded-by MAX_ITEMS\n        local.push(v);\n    }\n}\nfn g(local: &mut Vec<u32>) { local.push(1); }\n";
        assert_eq!(viols("lib.rs", src), vec![(RuleId::BoundedGrowth, 3)]);
    }

    #[test]
    fn workspace_scoping_applies() {
        let src = "fn f() { self.items.push(1); }";
        // bounded-growth is out of scope for a geometry file.
        let fs = scan_source("crates/geometry/src/hull.rs", src, ScanMode::Workspace);
        assert!(fs.violations.is_empty());
    }

    #[test]
    fn store_crate_is_in_scope_for_growth_and_determinism() {
        // The out-of-core store sits on query paths: unbounded chunk
        // caching and wall-clock reads in its library code must fire.
        let growth = "impl S {\n    fn f(&mut self) { self.chunks.push(1); }\n}\n";
        let fs = scan_source("crates/store/src/reader.rs", growth, ScanMode::Workspace);
        assert_eq!(
            fs.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec![RuleId::BoundedGrowth]
        );
        let clock = "fn merge() { let _ = Instant::now(); }\n";
        let fs = scan_source("crates/store/src/packed.rs", clock, ScanMode::Workspace);
        assert_eq!(
            fs.violations.iter().map(|v| v.rule).collect::<Vec<_>>(),
            vec![RuleId::Determinism]
        );
    }

    #[test]
    fn block_store_is_in_scope_for_growth() {
        // The additive block cache admits an entry per query; an uncapped
        // insert there is exactly the growth this rule exists for, and the
        // `bounded-by` note on the byte-budgeted path must suppress it.
        let src = "impl BlockStore {\n    fn admit(&mut self, k: u64, v: u32) {\n        self.map.insert(k, v);\n        // lint: bounded-by budget_bytes (LRU evicts)\n        self.map.insert(k, v);\n    }\n}\n";
        let fs = scan_source("crates/urbane/src/blockcache.rs", src, ScanMode::Workspace);
        assert_eq!(
            fs.violations.iter().map(|v| (v.rule, v.line)).collect::<Vec<_>>(),
            vec![(RuleId::BoundedGrowth, 3)]
        );
    }
}
