//! Workspace walking and cross-file rule resolution.
//!
//! The engine owns everything above a single file: discovering which files
//! are project code (crate `src/` trees — not `vendor/`, not `target/`, not
//! the deliberately-bad `fixtures/`), parsing each file once into a
//! [`SourceFile`], running the per-file scanner, resolving the cross-file
//! `release-acquire` pairing, and running the call-graph dataflow analyses
//! (`cancel-poll-reachability`, `lock-order`, `wire-taint`) over the whole
//! set.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraph, SourceFile};
use crate::dataflow;
use crate::rules::{scan_file, AtomicSite, RuleId, ScanMode, Violation};

/// Walk up from `start` to the workspace root: the first ancestor holding
/// both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Repo-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Every `.rs` file under `crates/*/src`, sorted, skipping fixture corpora.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    let mut files = Vec::new();
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("cannot read {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.retain(|p| !p.components().any(|c| c.as_os_str() == "fixtures"));
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan a set of files as one unit: per-file rules, cross-file
/// release/acquire resolution, and the call-graph dataflow analyses.
/// `root` anchors the repo-relative names.
pub fn scan_files(root: &Path, files: &[PathBuf], mode: ScanMode) -> Result<Vec<Violation>, String> {
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = rel_path(root, path);
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        sources.push(SourceFile::parse(&rel, &src));
    }

    let mut violations = Vec::new();
    let mut stores: Vec<AtomicSite> = Vec::new();
    let mut load_names: BTreeSet<String> = BTreeSet::new();

    for sf in &sources {
        let scan = scan_file(sf, mode);
        violations.extend(scan.violations);
        stores.extend(scan.release_stores);
        load_names.extend(scan.acquire_loads.into_iter().map(|s| s.name));
    }

    for s in stores {
        if !load_names.contains(&s.name) {
            violations.push(Violation::new(
                &s.file,
                s.line,
                RuleId::ReleaseAcquire,
                format!(
                    "`{}` is stored with Release but never loaded with Acquire anywhere in \
                     the scanned set — the release has nothing to synchronize with",
                    s.name
                ),
            ));
        }
    }

    let graph = CallGraph::build(&sources);
    violations.extend(dataflow::run(&sources, &graph, mode));

    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    Ok(violations)
}

/// Full workspace scan under path-based rule scoping.
pub fn scan_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let files = collect_workspace_files(root)?;
    scan_files(root, &files, ScanMode::Workspace)
}

/// Scan a fixture corpus: every rule applies to every file, paths are
/// reported relative to `dir` (so expectations are stable).
pub fn scan_fixtures(dir: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    walk_rs(dir, &mut files)?;
    files.sort();
    scan_files(dir, &files, ScanMode::AllRules)
}
