//! The ratcheting debt baseline.
//!
//! `lint-baseline.json` is a committed ledger of violations the project has
//! accepted *for now*. `check` compares the live scan against it with
//! ratchet semantics: for every `(file, rule)` pair the live count may be at
//! most the baselined count. New debt anywhere — a new file, a new rule hit,
//! one more unwrap in an already-indebted file — fails the build; paying
//! debt down never does (it just prints a nudge to re-run `baseline` so the
//! ledger shrinks and stays shrunk).
//!
//! Line numbers are recorded for humans but deliberately NOT matched: an
//! unrelated edit that shifts a baselined violation by ten lines must not
//! break CI. Counts per `(file, rule)` are what ratchets.
//!
//! The JSON reader/writer is hand-rolled (std-only workspace; the tree is
//! offline), tolerant on input and canonical on output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::{self, Json};
use crate::rules::Violation;

/// One accepted violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

/// The committed ledger.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        Baseline {
            entries: violations
                .iter()
                .map(|v| Entry {
                    file: v.file.clone(),
                    line: v.line,
                    rule: v.rule.as_str().to_string(),
                    message: v.message.clone(),
                })
                .collect(),
        }
    }

    /// Canonical JSON: stable field order, one entry per line, trailing
    /// newline — friendly to diffs and to `git blame`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}",
                json::escape(&e.file),
                e.line,
                json::escape(&e.rule),
                json::escape(&e.message),
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = json::parse(text)?;
        let entries_json = root
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| "baseline: missing `entries` array".to_string())?;
        let mut entries = Vec::with_capacity(entries_json.len());
        for (i, e) in entries_json.iter().enumerate() {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i}: missing string `{k}`"))
            };
            let line = e
                .get("line")
                .and_then(Json::as_u32)
                .ok_or_else(|| format!("baseline entry {i}: missing numeric `line`"))?;
            entries.push(Entry {
                file: field("file")?,
                line,
                rule: field("rule")?,
                message: field("message")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Load from disk; a missing file is an empty baseline (a fresh checkout
    /// with zero accepted debt), any other error is fatal.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    pub fn save(&self, path: &Path) -> Result<(), String> {
        fs::write(path, self.to_json()).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// Per-`(file, rule)` count table, sorted for deterministic iteration.
fn counts<'a, I: Iterator<Item = (&'a str, &'a str)>>(items: I) -> Vec<((String, String), usize)> {
    let mut v: Vec<((String, String), usize)> = Vec::new();
    for (file, rule) in items {
        let key = (file.to_string(), rule.to_string());
        match v.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => v.push((key, 1)),
        }
    }
    v.sort();
    v
}

/// One `(file, rule)` bucket that regressed past its baselined count.
#[derive(Debug, Clone)]
pub struct Regression {
    pub file: String,
    pub rule: String,
    pub baselined: usize,
    pub found: usize,
    /// Every live violation in the bucket (lines drift, so the new one
    /// cannot be singled out — humans triage from the full list).
    pub violations: Vec<Violation>,
}

/// Outcome of `check`: ratchet verdict plus bookkeeping for output.
#[derive(Debug, Default)]
pub struct CheckReport {
    pub regressions: Vec<Regression>,
    pub current_total: usize,
    pub baseline_total: usize,
    /// Buckets where debt was paid down (live < baselined): a nudge to
    /// re-run `baseline` and shrink the ledger.
    pub improved: Vec<(String, String, usize, usize)>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Ratchet comparison; see module docs for semantics.
pub fn check(current: &[Violation], baseline: &Baseline) -> CheckReport {
    let cur = counts(current.iter().map(|v| (v.file.as_str(), v.rule.as_str())));
    let base = counts(baseline.entries.iter().map(|e| (e.file.as_str(), e.rule.as_str())));
    let base_count = |key: &(String, String)| {
        base.iter().find(|(k, _)| k == key).map(|(_, n)| *n).unwrap_or(0)
    };

    let mut report = CheckReport {
        current_total: current.len(),
        baseline_total: baseline.entries.len(),
        ..CheckReport::default()
    };

    for (key, found) in &cur {
        let allowed = base_count(key);
        if *found > allowed {
            report.regressions.push(Regression {
                file: key.0.clone(),
                rule: key.1.clone(),
                baselined: allowed,
                found: *found,
                violations: current
                    .iter()
                    .filter(|v| v.file == key.0 && v.rule.as_str() == key.1)
                    .cloned()
                    .collect(),
            });
        } else if *found < allowed {
            report.improved.push((key.0.clone(), key.1.clone(), allowed, *found));
        }
    }
    // Buckets fully paid off: present in the baseline, absent live.
    for (key, allowed) in &base {
        if !cur.iter().any(|(k, _)| k == key) {
            report.improved.push((key.0.clone(), key.1.clone(), *allowed, 0));
        }
    }
    report.improved.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn v(file: &str, line: u32, rule: RuleId) -> Violation {
        Violation::new(file, line, rule, format!("m{line}"))
    }

    #[test]
    fn json_round_trip() {
        let vs = vec![
            v("crates/a/src/lib.rs", 3, RuleId::PanicFreedom),
            v("crates/b/src/x.rs", 9, RuleId::RelaxedOrdering),
        ];
        let b = Baseline::from_violations(&vs);
        let parsed = match Baseline::parse(&b.to_json()) {
            Ok(p) => p,
            Err(e) => panic!("parse failed: {e}"),
        };
        assert_eq!(parsed.entries, b.entries);
    }

    #[test]
    fn ratchet_blocks_new_debt_and_allows_drift() {
        let base = Baseline::from_violations(&[v("f.rs", 10, RuleId::PanicFreedom)]);
        // Same count, different line: fine.
        let drifted = [v("f.rs", 42, RuleId::PanicFreedom)];
        assert!(check(&drifted, &base).ok());
        // One more in the same bucket: regression.
        let grown = [v("f.rs", 10, RuleId::PanicFreedom), v("f.rs", 11, RuleId::PanicFreedom)];
        let rep = check(&grown, &base);
        assert!(!rep.ok());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions.first().map(|r| (r.baselined, r.found)), Some((1, 2)));
        // New bucket entirely: regression.
        let new_file = [v("g.rs", 1, RuleId::Determinism)];
        assert!(!check(&new_file, &base).ok());
        // Paid off: ok, and flagged as improvable.
        let rep = check(&[], &base);
        assert!(rep.ok());
        assert_eq!(rep.improved.len(), 1);
    }
}
