//! A lightweight Rust lexer — just enough structure for invariant linting.
//!
//! The rule engine needs to tell *code* apart from *prose*: an `unwrap` inside
//! a string literal or a doc comment is not a panic site, and a `// lint:`
//! suppression must only be read from a real line comment. A full parse
//! (`syn`) is overkill and unavailable offline, so this module tokenizes raw
//! source into identifiers, literals, punctuation, and comments, with enough
//! care around the awkward corners — raw strings (`r#"…"#`), raw identifiers
//! (`r#fn`), byte strings, nested block comments, lifetimes vs. char
//! literals — that downstream rules can pattern-match token sequences without
//! false hits from text.
//!
//! The lexer is lossless about position (every token carries its 1-based
//! line) and deliberately lossy about everything rules never look at:
//! numeric suffixes stay glued to their literal, multi-char operators are
//! emitted as single-char [`TokenKind::Punct`] tokens (`::` is `:`,`:`), and
//! keywords are plain [`TokenKind::Ident`]s.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `Ordering`, `r#match`).
    Ident,
    /// Lifetime such as `'a` (including `'_` and `'static`).
    Lifetime,
    /// Integer literal, possibly suffixed (`0`, `1_000`, `0xFF`, `2u32`).
    Int,
    /// Float literal (`1.0`, `6e4`, `2.5f32`).
    Float,
    /// String or byte-string literal, cooked or raw.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` comment (doc comments `///`/`//!` included), text kept.
    LineComment,
    /// `/* … */` comment (nesting-aware), text kept, line = opening line.
    BlockComment,
    /// Any other single character (`.`, `(`, `!`, `:`…).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Is this token a comment (and therefore invisible to code rules)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Is this exactly the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer { chars: src.chars().collect(), i: 0, line: 1, out: Vec::new() }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn text_between(&self, start: usize, end: usize) -> String {
        self.chars[start..end.min(self.chars.len())].iter().collect()
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.cooked_string(line),
                '\'' => self.char_or_lifetime(line),
                'r' | 'b' if self.string_prefix() => {
                    // `string_prefix` already established which literal form
                    // starts here; re-dispatch on its shape.
                    self.prefixed_literal(line);
                }
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text = self.text_between(start, self.i);
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate, we are a linter
            }
        }
        let text = self.text_between(start, self.i);
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Consume a cooked (escaped) string body starting at the opening quote.
    fn cooked_string(&mut self, line: u32) {
        let start = self.i;
        self.bump(); // opening '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let text = self.text_between(start, self.i);
        self.push(TokenKind::Str, text, line);
    }

    /// Does the source at `i` start a prefixed literal (`r"`, `r#"`, `b"`,
    /// `b'`, `br"`, `br#"`)? Raw identifiers (`r#fn`) return false.
    fn string_prefix(&self) -> bool {
        let mut j = 1; // past the leading r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            j = 2;
        }
        if self.peek(0) == Some('b') && self.peek(j) == Some('\'') {
            return true;
        }
        let mut k = j;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        // Raw identifier `r#ident` has exactly one '#' then an ident char.
        self.peek(k) == Some('"')
    }

    fn prefixed_literal(&mut self, line: u32) {
        let start = self.i;
        if self.peek(0) == Some('b') && self.peek(1) == Some('\'') {
            // Byte char literal b'x'.
            self.bump(); // b
            self.consume_char_literal();
            let text = self.text_between(start, self.i);
            self.push(TokenKind::Char, text, line);
            return;
        }
        // r / b / br prefix.
        let mut raw = false;
        while let Some(c @ ('r' | 'b')) = self.peek(0) {
            raw |= c == 'r';
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek(0) == Some('"') {
            self.bump();
            if hashes == 0 {
                // b"…" is cooked (escapes active); r"…" is raw (backslash is a
                // literal character and cannot precede the terminator).
                while let Some(c) = self.bump() {
                    match c {
                        '\\' if !raw => {
                            self.bump();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            } else {
                // Scan for '"' followed by `hashes` hashes.
                loop {
                    match self.bump() {
                        None => break,
                        Some('"') => {
                            let mut seen = 0usize;
                            while seen < hashes && self.peek(0) == Some('#') {
                                self.bump();
                                seen += 1;
                            }
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
            let text = self.text_between(start, self.i);
            self.push(TokenKind::Str, text, line);
        } else {
            // Defensive: `string_prefix` said literal but shape changed —
            // fall back to lexing an identifier from the start position.
            self.i = start;
            self.ident(line);
        }
    }

    /// Consume a char-literal body starting at `'` (caller handled prefixes).
    fn consume_char_literal(&mut self) {
        self.bump(); // opening '
        if self.bump() == Some('\\') {
            // Escape: simple (\n, \', \\) or \u{…}.
            if self.bump() == Some('u') && self.peek(0) == Some('{') {
                while let Some(c) = self.bump() {
                    if c == '}' {
                        break;
                    }
                }
            }
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` lifetime vs `'a'` char vs `'\n'` char.
        let start = self.i;
        let next = self.peek(1);
        let is_char = match next {
            Some('\\') => true,
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => self.peek(2) == Some('\''),
            Some(_) => true, // '(' etc. can only be a char literal like '('
            None => false,
        };
        if is_char {
            self.consume_char_literal();
            let text = self.text_between(start, self.i);
            self.push(TokenKind::Char, text, line);
        } else {
            self.bump(); // '
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = self.text_between(start, self.i);
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn ident(&mut self, line: u32) {
        let start = self.i;
        // Raw identifier prefix r#.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        let text = self.text_between(start, self.i);
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let start = self.i;
        let mut is_float = false;
        // Integer part (covers 0x/0b/0o bodies and suffixes: alnum + '_').
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part only when '.' is followed by a digit ('0..1' and
        // '1.max(2)' must not swallow the dot).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump(); // '.'
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let text = self.text_between(start, self.i);
        // `6e4`-style floats lex as one alnum run; classify by exponent marker
        // on decimal literals.
        if !is_float
            && !text.starts_with("0x")
            && !text.starts_with("0b")
            && !text.starts_with("0o")
            && (text.contains('e') || text.contains('E'))
        {
            is_float = true;
        }
        self.push(if is_float { TokenKind::Float } else { TokenKind::Int }, text, line);
    }
}

/// Tokenize `src`. Never fails: malformed input degrades to punctuation
/// tokens rather than errors — a linter must survive any file it is pointed
/// at.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "x.unwrap()"; y.unwrap();"#);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "y", "unwrap"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds("let a = r#\"panic!()\"#; let r#fn = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("panic")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "panic"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = lex("/* a /* b */ c */ x\ny");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text, "x");
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn numbers() {
        let toks = kinds("a[0]; 1_000; 0xFF; 1.5; 0..10; 1.max(2)");
        assert!(toks.contains(&(TokenKind::Int, "0".to_string())));
        assert!(toks.contains(&(TokenKind::Int, "1_000".to_string())));
        assert!(toks.contains(&(TokenKind::Int, "0xFF".to_string())));
        assert!(toks.contains(&(TokenKind::Float, "1.5".to_string())));
        // Range and method call keep their dots as punctuation.
        assert!(toks.contains(&(TokenKind::Int, "10".to_string())));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r#"let a = b"bytes.unwrap()"; let c = b'\n';"#);
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }
}
