//! Cross-procedural dataflow rules over the workspace call graph.
//!
//! Three analyses, each producing violations with a **witness trace** — the
//! call chain, lock chain, or taint path that proves the finding:
//!
//! 1. **`cancel-poll-reachability`** — starting from functions marked
//!    `// lint: entrypoint <why>`, walk the call graph; any reachable loop
//!    over points/chunks/tiles/batches (named by its loop variable or
//!    iterated expression) must poll the query budget inside the loop —
//!    directly (`is_cancelled`, `is_exhausted`, `cancel_flag`,
//!    `budget.check()`) or through a callee that transitively polls. A loop
//!    that cannot reach a poll escapes the §8 degradation ladder: a slow
//!    query keeps burning CPU after its deadline.
//! 2. **`lock-order`** — every empty-argument `.lock()`/`.read()`/`.write()`
//!    (and `.get_or_init(`) is an acquisition of the lock named by its
//!    receiver. While a guard is live (let-bound: until `drop(guard)` or the
//!    end of its block; temporary: until the end of the statement), further
//!    acquisitions — in the same function or transitively through calls —
//!    impose an order edge. A cycle in the resulting order graph is a
//!    deadlock waiting for the right interleaving.
//! 3. **`wire-taint`** — identifiers derived from HTTP request bytes
//!    (headers, body, content_length, query params) are tainted; taint
//!    propagates through `let` bindings and call arguments, and is cleared
//!    by a visible bounds check (`.min(`/`.clamp(`, an explicit `<`/`>`
//!    comparison, or `// lint: capped-by <bound>`). Tainted values must not
//!    reach `Vec::with_capacity`, `vec![_; n]`, slice indexing, `.chunks(`,
//!    `.reserve(`, or `.div_ceil(` unchecked — a forged Content-Length must
//!    not size an allocation.
//!
//! All three are over-approximate in their graph (extra call edges from
//! name-based resolution) and under-approximate in their evidence
//! (annotations assert what tokens cannot show); the witness trace makes
//! every finding checkable by a human.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{match_delim, receiver_name, CallGraph, SourceFile};
use crate::lexer::TokenKind;
use crate::rules::{
    annotations_of, rule_in_scope, suppressed, Annotation, Directive, RuleId, ScanMode, TraceStep,
    Violation,
};

/// Run all graph analyses over a parsed file set.
pub fn run(files: &[SourceFile], graph: &CallGraph, mode: ScanMode) -> Vec<Violation> {
    let anns: Vec<Vec<Annotation>> = files.iter().map(|f| annotations_of(&f.tokens)).collect();
    let cx = Cx { files, graph, anns, mode };
    let mut out = Vec::new();
    cancel_poll(&cx, &mut out);
    lock_order(&cx, &mut out);
    wire_taint(&cx, &mut out);
    out
}

struct Cx<'a> {
    files: &'a [SourceFile],
    graph: &'a CallGraph,
    anns: Vec<Vec<Annotation>>,
    mode: ScanMode,
}

impl Cx<'_> {
    fn sf(&self, fid: usize) -> &SourceFile {
        &self.files[self.graph.fns[fid].file]
    }

    fn in_scope(&self, rule: RuleId, file_idx: usize) -> bool {
        self.mode == ScanMode::AllRules || rule_in_scope(rule, &self.files[file_idx].rel)
    }

    fn suppressed(&self, file_idx: usize, rule: RuleId, line: u32) -> bool {
        suppressed(&self.anns[file_idx], rule, line)
    }

    /// First/last source line of a function body.
    fn body_lines(&self, fid: usize) -> (u32, u32) {
        let f = &self.graph.fns[fid];
        let sf = self.sf(fid);
        let first = sf.tok(f.body.start).map(|t| t.line).unwrap_or(f.line);
        let last = f
            .body
            .end
            .checked_sub(1)
            .and_then(|p| sf.tok(p))
            .map(|t| t.line)
            .unwrap_or(first);
        (first, last)
    }
}

fn step(file: &str, line: u32, note: String) -> TraceStep {
    TraceStep { file: file.to_string(), line, note }
}

// ---------------------------------------------------------------------------
// cancel-poll-reachability
// ---------------------------------------------------------------------------

/// Loop-variable / iterated-expression name segments that mark a loop as
/// iterating request work items.
const LOOP_SUBJECTS: [&str; 12] = [
    "point", "points", "chunk", "chunks", "tile", "tiles", "batch", "batches", "row", "rows",
    "bin", "bins",
];

/// Identifiers whose presence is a budget/cancel poll.
const POLL_IDENTS: [&str; 3] = ["is_cancelled", "is_exhausted", "cancel_flag"];

/// Is the token at sig-position `pos` a budget/cancel poll?
fn polls_at(sf: &SourceFile, pos: usize) -> bool {
    let Some(t) = sf.tok(pos) else { return false };
    if t.kind != TokenKind::Ident {
        return false;
    }
    if POLL_IDENTS.contains(&t.text.as_str()) {
        return true;
    }
    // `budget.check()` / `self.budget.check(n)` — a `.check(` whose receiver
    // names the budget.
    t.text == "check"
        && pos > 0
        && sf.tok(pos - 1).is_some_and(|p| p.is_punct('.'))
        && sf.tok(pos + 1).is_some_and(|n| n.is_punct('('))
        && receiver_name(sf, pos - 1)
            .is_some_and(|r| r.to_ascii_lowercase().contains("budget"))
}

fn cancel_poll(cx: &Cx<'_>, out: &mut Vec<Violation>) {
    let g = cx.graph;
    let n = g.fns.len();

    // Direct polls: a poll token in the body, or a `polls-budget` evidence
    // directive targeting the fn or any line of its body.
    let mut polls: Vec<bool> = (0..n)
        .map(|fid| {
            let f = &g.fns[fid];
            let sf = cx.sf(fid);
            if (f.body.start..f.body.end).any(|p| polls_at(sf, p)) {
                return true;
            }
            let (lo, hi) = cx.body_lines(fid);
            cx.anns[f.file].iter().any(|a| {
                a.directive == Directive::PollsBudget
                    && (a.target_line == f.line || (a.target_line >= lo && a.target_line <= hi))
            })
        })
        .collect();

    // Transitive closure: a fn polls if any callee polls.
    loop {
        let mut changed = false;
        for fid in 0..n {
            if !polls[fid] && g.fns[fid].calls.iter().any(|c| polls[c.callee]) {
                polls[fid] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Entry points: fns targeted by `// lint: entrypoint <why>`.
    let entries: Vec<usize> = (0..n)
        .filter(|&fid| {
            let f = &g.fns[fid];
            cx.anns[f.file]
                .iter()
                .any(|a| a.directive == Directive::Entrypoint && a.target_line == f.line)
        })
        .collect();

    // BFS with parent pointers for the witness chain.
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut seen: Vec<bool> = vec![false; n];
    let mut origin: Vec<usize> = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for &e in &entries {
        if !seen[e] {
            seen[e] = true;
            origin[e] = e;
            queue.push_back(e);
        }
    }
    while let Some(fid) = queue.pop_front() {
        for c in &g.fns[fid].calls {
            if !seen[c.callee] {
                seen[c.callee] = true;
                parent[c.callee] = Some((fid, c.line));
                origin[c.callee] = origin[fid];
                queue.push_back(c.callee);
            }
        }
    }

    for fid in 0..n {
        if !seen[fid] || !cx.in_scope(RuleId::CancelPollReachability, g.fns[fid].file) {
            continue;
        }
        let f = &g.fns[fid];
        let sf = cx.sf(fid);
        for pos in f.body.start..f.body.end {
            if !sf.tok(pos).is_some_and(|t| t.is_ident("for")) {
                continue;
            }
            // Header: `for <pat> in <expr> {` — subject idents live between
            // the keyword and the body `{`.
            let Some(open) = ((pos + 1)..f.body.end)
                .find(|&p| sf.tok(p).is_some_and(|t| t.is_punct('{')))
            else {
                continue;
            };
            let subject = ((pos + 1)..open).find_map(|p| {
                sf.tok(p).and_then(|t| {
                    (t.kind == TokenKind::Ident
                        && t.text
                            .to_ascii_lowercase()
                            .split('_')
                            .any(|seg| LOOP_SUBJECTS.contains(&seg)))
                    .then(|| t.text.clone())
                })
            });
            let Some(subject) = subject else { continue };
            let Some(close) = match_delim(sf, open, '{', '}') else { continue };
            let loop_line = sf.tok(pos).map(|t| t.line).unwrap_or(f.line);

            let polled = (pos..close).any(|p| polls_at(sf, p))
                || f.calls.iter().any(|c| c.pos > pos && c.pos < close && polls[c.callee]);
            if polled
                || cx.suppressed(f.file, RuleId::CancelPollReachability, loop_line)
            {
                continue;
            }

            // Witness: entry -> … -> this fn -> the loop.
            let entry = origin[fid];
            let mut chain = Vec::new();
            let mut cur = fid;
            while let Some((p, call_line)) = parent[cur] {
                chain.push(step(
                    &cx.sf(p).rel,
                    call_line,
                    format!("calls `{}`", g.fns[cur].qual()),
                ));
                cur = p;
            }
            chain.push(step(
                &cx.sf(entry).rel,
                g.fns[entry].line,
                format!("entry point `{}`", g.fns[entry].qual()),
            ));
            chain.reverse();
            chain.push(step(
                &sf.rel,
                loop_line,
                format!("loop over `{subject}` never reaches a budget/cancel poll"),
            ));

            out.push(Violation {
                file: sf.rel.clone(),
                line: loop_line,
                rule: RuleId::CancelPollReachability,
                message: format!(
                    "loop over `{subject}` in `{}` is reachable from entry point `{}` but \
                     never reaches a budget/cancel poll — poll QueryBudget in the loop or \
                     annotate `// lint: polls-budget <why>`",
                    f.qual(),
                    g.fns[entry].qual()
                ),
                trace: chain,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Acq {
    lock: String,
    recv: String,
    line: u32,
    pos: usize,
    hold_end: usize,
}

/// All lock acquisitions in a function body, with the sig-span over which
/// each guard is (over-approximately) held.
fn acquisitions(cx: &Cx<'_>, fid: usize) -> Vec<Acq> {
    let f = &cx.graph.fns[fid];
    let sf = cx.sf(fid);
    let mut out = Vec::new();
    for pos in f.body.start..f.body.end {
        let Some(t) = sf.tok(pos) else { break };
        if t.kind != TokenKind::Ident
            || pos == 0
            || !sf.tok(pos - 1).is_some_and(|p| p.is_punct('.'))
            || !sf.tok(pos + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        // `.lock()` / `.read()` / `.write()` take no arguments on
        // Mutex/RwLock — an argument means I/O, not a lock. `get_or_init`
        // takes its init closure.
        let bare = sf.tok(pos + 2).is_some_and(|n| n.is_punct(')'));
        let is_acq = (bare && matches!(t.text.as_str(), "lock" | "read" | "write"))
            || t.text == "get_or_init";
        if !is_acq {
            continue;
        }
        let Some(recv) = receiver_name(sf, pos - 1) else { continue };
        let lock = format!("{}:{}", sf.crate_name(), recv);

        // Statement start: just past the previous `;`/`{`/`}`.
        let stmt_start = (f.body.start..pos)
            .rev()
            .find(|&p| {
                sf.tok(p).is_some_and(|u| {
                    u.is_punct(';') || u.is_punct('{') || u.is_punct('}')
                })
            })
            .map(|p| p + 1)
            .unwrap_or(f.body.start);
        let let_bound = (stmt_start..pos).any(|p| sf.tok(p).is_some_and(|u| u.is_ident("let")));

        let hold_end = if let_bound {
            // Guard lives until `drop(name)` or the end of its block.
            let guard = (stmt_start..pos)
                .skip_while(|&p| !sf.tok(p).is_some_and(|u| u.is_ident("let")))
                .skip(1)
                .find_map(|p| {
                    sf.tok(p).and_then(|u| {
                        (u.kind == TokenKind::Ident
                            && !matches!(u.text.as_str(), "mut" | "Ok" | "Some" | "Err"))
                        .then(|| u.text.clone())
                    })
                });
            let dropped = guard.as_ref().and_then(|gname| {
                (pos..f.body.end).find(|&p| {
                    sf.tok(p).is_some_and(|u| u.is_ident("drop"))
                        && sf.tok(p + 1).is_some_and(|u| u.is_punct('('))
                        && sf.tok(p + 2).is_some_and(|u| u.is_ident(gname))
                })
            });
            dropped.unwrap_or_else(|| enclosing_block_end(sf, pos, f.body.end))
        } else {
            // Temporary guard: dropped at the end of the statement.
            let mut depth = 0usize;
            let mut end = f.body.end;
            for p in pos..f.body.end {
                let Some(u) = sf.tok(p) else { break };
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    if depth == 0 {
                        end = p;
                        break;
                    }
                    depth -= 1;
                } else if u.is_punct(';') && depth == 0 {
                    end = p;
                    break;
                }
            }
            end
        };
        out.push(Acq { lock, recv, line: t.line, pos, hold_end });
    }
    out
}

/// Sig-position of the `}` closing the innermost block containing `pos`.
fn enclosing_block_end(sf: &SourceFile, pos: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    for p in pos..limit {
        let Some(u) = sf.tok(p) else { break };
        if u.is_punct('{') {
            depth += 1;
        } else if u.is_punct('}') {
            if depth == 0 {
                return p;
            }
            depth -= 1;
        }
    }
    limit
}

fn lock_order(cx: &Cx<'_>, out: &mut Vec<Violation>) {
    let g = cx.graph;
    let n = g.fns.len();
    let acqs: Vec<Vec<Acq>> = (0..n)
        .map(|fid| if cx.in_scope(RuleId::LockOrder, g.fns[fid].file) { acquisitions(cx, fid) } else { Vec::new() })
        .collect();

    // Transitive acquisition summaries with a representative witness path.
    let mut acq_paths: Vec<BTreeMap<String, Vec<TraceStep>>> = (0..n)
        .map(|fid| {
            let mut m = BTreeMap::new();
            for a in &acqs[fid] {
                m.entry(a.lock.clone()).or_insert_with(|| {
                    vec![step(&cx.sf(fid).rel, a.line, format!("acquires `{}`", a.lock))]
                });
            }
            m
        })
        .collect();
    loop {
        let mut changed = false;
        for fid in 0..n {
            for c in g.fns[fid].calls.clone() {
                if c.callee == fid {
                    continue;
                }
                let callee_paths = acq_paths[c.callee].clone();
                for (lock, path) in callee_paths {
                    if !acq_paths[fid].contains_key(&lock) {
                        let mut p = vec![step(
                            &cx.sf(fid).rel,
                            c.line,
                            format!("calls `{}`", g.fns[c.callee].qual()),
                        )];
                        p.extend(path);
                        acq_paths[fid].insert(lock, p);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: lock A held while lock B is acquired (directly or through
    // a call). Keyed (from, to); first witness wins (deterministic order).
    type EdgeInfo = (Vec<TraceStep>, usize, u32); // witness, report file, line
    let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    for (fid, facqs) in acqs.iter().enumerate() {
        let f = &g.fns[fid];
        let sf = cx.sf(fid);
        for a in facqs {
            let astep = step(&sf.rel, a.line, format!("acquires `{}` (`{}`)", a.lock, a.recv));
            for b in facqs {
                if b.pos > a.pos && b.pos < a.hold_end && b.lock != a.lock {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert_with(|| {
                            (
                                vec![
                                    astep.clone(),
                                    step(
                                        &sf.rel,
                                        b.line,
                                        format!("then acquires `{}` while holding it", b.lock),
                                    ),
                                ],
                                f.file,
                                a.line,
                            )
                        });
                }
            }
            for c in &f.calls {
                if c.pos <= a.pos || c.pos >= a.hold_end {
                    continue;
                }
                for (lock, path) in &acq_paths[c.callee] {
                    if *lock == a.lock {
                        continue;
                    }
                    edges.entry((a.lock.clone(), lock.clone())).or_insert_with(|| {
                        let mut w = vec![
                            astep.clone(),
                            step(
                                &sf.rel,
                                c.line,
                                format!(
                                    "calls `{}` while holding `{}`",
                                    g.fns[c.callee].qual(),
                                    a.lock
                                ),
                            ),
                        ];
                        w.extend(path.clone());
                        (w, f.file, a.line)
                    });
                }
            }
        }
    }

    // Cycle detection: an edge (a, b) with a path b ~> a closes a cycle.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for ((a, b), (witness, file_idx, line)) in &edges {
        // BFS b ~> a with parents.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = VecDeque::from([b.as_str()]);
        let mut found = false;
        while let Some(node) = queue.pop_front() {
            if node == a.as_str() {
                found = true;
                break;
            }
            for &next in adj.get(node).into_iter().flatten() {
                if next != b.as_str() && !parent.contains_key(next) {
                    parent.insert(next, node);
                    queue.push_back(next);
                }
            }
        }
        if !found {
            continue;
        }
        // Path b -> … -> a from the parent map.
        let mut path = vec![a.as_str()];
        let mut cur = a.as_str();
        while let Some(&p) = parent.get(cur) {
            path.push(p);
            cur = p;
        }
        path.push(b.as_str());
        path.reverse(); // b, …, a
        let key: BTreeSet<String> = path.iter().map(|s| s.to_string()).collect();
        let key = {
            let mut k = key;
            k.insert(a.clone());
            k.insert(b.clone());
            k
        };
        if !reported.insert(key) {
            continue;
        }
        if cx.suppressed(*file_idx, RuleId::LockOrder, *line) {
            continue;
        }
        let cycle: Vec<&str> = std::iter::once(a.as_str()).chain(path.iter().copied()).collect();
        let mut trace = witness.clone();
        // Append the witnesses of the return path's edges.
        for pair in path.windows(2) {
            if let [from, to] = pair {
                if let Some((w, _, _)) = edges.get(&(from.to_string(), to.to_string())) {
                    trace.extend(w.clone());
                }
            }
        }
        out.push(Violation {
            file: cx.files[*file_idx].rel.clone(),
            line: *line,
            rule: RuleId::LockOrder,
            message: format!(
                "lock order cycle `{}` — these locks are acquired in inconsistent order and \
                 can deadlock; pick one order or annotate `// lint: allow(lock-order) <why>`",
                cycle.join("` -> `")
            ),
            trace,
        });
    }
}

// ---------------------------------------------------------------------------
// wire-taint
// ---------------------------------------------------------------------------

/// Identifiers that carry request-derived bytes/sizes wherever they appear.
const WIRE_SOURCES: [&str; 10] = [
    "headers", "header", "body", "content_length", "params", "param", "query", "payload", "req",
    "request",
];

/// One tainted flow into a sink; `steps` ends at the sink site.
#[derive(Debug, Clone)]
struct Flow {
    var: String,
    steps: Vec<TraceStep>,
}

/// Scan one function body for taint flows. `seed` names identifiers tainted
/// on entry (parameter summaries); `implicit` additionally treats
/// [`WIRE_SOURCES`] identifiers as tainted (top-level scan of the wire
/// boundary). `vuln` holds per-(fn, param) sink summaries for call edges.
fn flows_in(
    cx: &Cx<'_>,
    fid: usize,
    seed: &BTreeSet<String>,
    implicit: bool,
    vuln: &[BTreeMap<usize, Vec<TraceStep>>],
) -> Vec<Flow> {
    let f = &cx.graph.fns[fid];
    let sf = cx.sf(fid);
    let mut flows = Vec::new();
    let mut tainted: BTreeMap<String, usize> = BTreeMap::new();
    let mut capped: BTreeMap<String, usize> = BTreeMap::new();

    let is_tainted = |name: &str,
                      pos: usize,
                      tainted: &BTreeMap<String, usize>,
                      capped: &BTreeMap<String, usize>| {
        let sourced = seed.contains(name)
            || (implicit && WIRE_SOURCES.contains(&name))
            || tainted.get(name).is_some_and(|&tp| tp <= pos);
        sourced && capped.get(name).is_none_or(|&cp| cp >= pos)
    };

    let sink = |flows: &mut Vec<Flow>, var: &str, line: u32, what: &str| {
        flows.push(Flow {
            var: var.to_string(),
            steps: vec![step(&sf.rel, line, format!("request-derived `{var}` sizes {what}"))],
        });
    };

    for pos in f.body.start..f.body.end {
        let Some(t) = sf.tok(pos) else { break };

        // Cap events: comparisons and `.min(`/`.clamp(` clear taint forward.
        if t.kind == TokenKind::Ident {
            let cmp_next = sf.tok(pos + 1).is_some_and(|u| u.is_punct('<') || u.is_punct('>'));
            let cmp_prev = pos > 0
                && sf.tok(pos - 1).is_some_and(|u| u.is_punct('<') || u.is_punct('>'));
            let capped_call = sf.tok(pos + 1).is_some_and(|u| u.is_punct('.'))
                && sf
                    .tok(pos + 2)
                    .is_some_and(|u| u.is_ident("min") || u.is_ident("clamp"));
            if cmp_next || cmp_prev || capped_call {
                capped.entry(t.text.clone()).or_insert(pos);
            }
        }

        // `let <pat> = <rhs>;` — taint propagates from rhs to the binding.
        if t.is_ident("let") {
            let mut eq = None;
            for q in (pos + 1)..f.body.end {
                let Some(u) = sf.tok(q) else { break };
                if u.is_punct('=')
                    && !sf.tok(q + 1).is_some_and(|v| v.is_punct('='))
                    && !sf.tok(q.wrapping_sub(1)).is_some_and(|v| {
                        v.is_punct('=') || v.is_punct('!') || v.is_punct('<') || v.is_punct('>')
                    })
                {
                    eq = Some(q);
                    break;
                }
                if u.is_punct(';') || u.is_punct('{') {
                    break;
                }
            }
            let Some(eq) = eq else { continue };
            let binding = ((pos + 1)..eq).find_map(|q| {
                sf.tok(q).and_then(|u| {
                    (u.kind == TokenKind::Ident
                        && !matches!(u.text.as_str(), "mut" | "Ok" | "Some" | "Err"))
                    .then(|| u.text.clone())
                })
            });
            let Some(binding) = binding else { continue };
            // RHS extends to the `;` at depth 0.
            let mut depth = 0usize;
            let mut rhs_end = f.body.end;
            for q in (eq + 1)..f.body.end {
                let Some(u) = sf.tok(q) else { break };
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if u.is_punct(';') && depth == 0 {
                    rhs_end = q;
                    break;
                }
            }
            let rhs_capped = ((eq + 1)..rhs_end).any(|q| {
                sf.tok(q).is_some_and(|u| u.is_ident("min") || u.is_ident("clamp"))
                    && sf.tok(q.wrapping_sub(1)).is_some_and(|u| u.is_punct('.'))
            });
            let rhs_tainted = ((eq + 1)..rhs_end).any(|q| {
                sf.tok(q).is_some_and(|u| {
                    u.kind == TokenKind::Ident && is_tainted(&u.text, q, &tainted, &capped)
                })
            });
            if rhs_tainted && !rhs_capped {
                tainted.insert(binding, rhs_end);
            }
            continue;
        }

        // Sinks.
        let next_paren = sf.tok(pos + 1).is_some_and(|u| u.is_punct('('));
        let prev_dot = pos > 0 && sf.tok(pos - 1).is_some_and(|u| u.is_punct('.'));
        let alloc_sink = t.kind == TokenKind::Ident
            && next_paren
            && (t.text == "with_capacity"
                || (prev_dot && matches!(t.text.as_str(), "reserve" | "chunks" | "div_ceil")));
        if alloc_sink {
            if let Some(close) = match_delim(sf, pos + 1, '(', ')') {
                for q in (pos + 2)..close {
                    let Some(u) = sf.tok(q) else { break };
                    if u.kind == TokenKind::Ident && is_tainted(&u.text, q, &tainted, &capped) {
                        let what = match t.text.as_str() {
                            "with_capacity" => "`with_capacity`".to_string(),
                            m => format!("`.{m}(…)`"),
                        };
                        sink(&mut flows, &u.text, t.line, &what);
                        break;
                    }
                }
            }
            continue;
        }

        // `vec![elem; n]` — the length expression after `;`.
        if t.is_ident("vec")
            && sf.tok(pos + 1).is_some_and(|u| u.is_punct('!'))
            && sf.tok(pos + 2).is_some_and(|u| u.is_punct('['))
        {
            if let Some(close) = match_delim(sf, pos + 2, '[', ']') {
                if let Some(semi) =
                    ((pos + 3)..close).find(|&q| sf.tok(q).is_some_and(|u| u.is_punct(';')))
                {
                    for q in (semi + 1)..close {
                        let Some(u) = sf.tok(q) else { break };
                        if u.kind == TokenKind::Ident && is_tainted(&u.text, q, &tainted, &capped)
                        {
                            sink(&mut flows, &u.text, t.line, "`vec![_; n]`");
                            break;
                        }
                    }
                }
            }
            continue;
        }

        // Slice indexing `xs[n]` by a tainted n (a `%` inside bounds it).
        if t.is_punct('[')
            && pos > 0
            && sf.tok(pos - 1).is_some_and(|u| {
                (u.kind == TokenKind::Ident && u.text != "vec") || u.is_punct(')') || u.is_punct(']')
            })
        {
            if let Some(close) = match_delim(sf, pos, '[', ']') {
                let bounded =
                    ((pos + 1)..close).any(|q| sf.tok(q).is_some_and(|u| u.is_punct('%')));
                if !bounded {
                    for q in (pos + 1)..close {
                        let Some(u) = sf.tok(q) else { break };
                        if u.kind == TokenKind::Ident && is_tainted(&u.text, q, &tainted, &capped)
                        {
                            sink(&mut flows, &u.text, t.line, "a slice index");
                            break;
                        }
                    }
                }
            }
            continue;
        }
    }

    // Call edges: a tainted, uncapped argument in a position the callee's
    // summary marks as flowing to a sink.
    for c in &f.calls {
        if vuln[c.callee].is_empty() {
            continue;
        }
        let Some(close) = match_delim(sf, c.pos + 1, '(', ')') else { continue };
        let mut arg = 0usize;
        let mut depth = 0usize;
        // Method calls shift positional args by one vs the declared params
        // only when the callee takes self — the param list already skips
        // `self`, so positions line up.
        for q in (c.pos + 2)..close {
            let Some(u) = sf.tok(q) else { break };
            if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if u.is_punct(',') && depth == 0 {
                arg += 1;
            } else if u.kind == TokenKind::Ident && is_tainted(&u.text, q, &tainted, &capped) {
                if let Some(path) = vuln[c.callee].get(&arg) {
                    let mut steps = vec![step(
                        &sf.rel,
                        c.line,
                        format!(
                            "passes request-derived `{}` to `{}`",
                            u.text,
                            cx.graph.fns[c.callee].qual()
                        ),
                    )];
                    steps.extend(path.clone());
                    flows.push(Flow { var: u.text.clone(), steps });
                }
            }
        }
    }

    flows
}

fn wire_taint(cx: &Cx<'_>, out: &mut Vec<Violation>) {
    let g = cx.graph;
    let n = g.fns.len();

    // Parameter summaries: does param `i` of fn `f` reach a sink uncapped?
    let mut vuln: Vec<BTreeMap<usize, Vec<TraceStep>>> = vec![BTreeMap::new(); n];
    for _round in 0..8 {
        let mut changed = false;
        for fid in 0..n {
            for (i, pname) in g.fns[fid].params.clone().into_iter().enumerate() {
                if vuln[fid].contains_key(&i) {
                    continue;
                }
                let seed: BTreeSet<String> = std::iter::once(pname).collect();
                let flows = flows_in(cx, fid, &seed, false, &vuln);
                if let Some(fl) = flows.first() {
                    vuln[fid].insert(i, fl.steps.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Top-level: wire sources are implicit taint in boundary files.
    let rel_index: BTreeMap<&str, usize> =
        cx.files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();
    let mut seen_sinks: BTreeSet<(String, u32)> = BTreeSet::new();
    let empty = BTreeSet::new();
    for fid in 0..n {
        let f = &g.fns[fid];
        if !cx.in_scope(RuleId::WireTaint, f.file) {
            continue;
        }
        let sf = cx.sf(fid);
        for fl in flows_in(cx, fid, &empty, true, &vuln) {
            let Some(last) = fl.steps.last().cloned() else { continue };
            if !seen_sinks.insert((last.file.clone(), last.line)) {
                continue;
            }
            let first_line = fl.steps.first().map(|s| s.line).unwrap_or(last.line);
            let sink_file_idx = rel_index.get(last.file.as_str()).copied().unwrap_or(f.file);
            if cx.suppressed(sink_file_idx, RuleId::WireTaint, last.line)
                || cx.suppressed(f.file, RuleId::WireTaint, first_line)
            {
                continue;
            }
            let mut trace = vec![step(
                &sf.rel,
                first_line,
                format!("`{}` derives from request bytes in `{}`", fl.var, f.qual()),
            )];
            trace.extend(fl.steps.clone());
            out.push(Violation {
                file: last.file.clone(),
                line: last.line,
                rule: RuleId::WireTaint,
                message: format!(
                    "request-derived `{}` flows into an allocation/index size without a \
                     bounds check — cap it (`.min(cap)`, explicit compare) or annotate \
                     `// lint: capped-by <bound>`",
                    fl.var
                ),
                trace,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run_on(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, src)| SourceFile::parse(rel, src)).collect();
        let graph = CallGraph::build(&files);
        run(&files, &graph, ScanMode::AllRules)
    }

    #[test]
    fn cancel_poll_fires_through_a_call_chain() {
        let src = "\
// lint: entrypoint fixture
pub fn handle() { middle(); }
fn middle() { hot(); }
fn hot(points: &[u32]) {
    for p in points {
        let _ = p;
    }
}
fn fine(points: &[u32], budget: &B) {
    for p in points {
        budget.check(1);
        let _ = p;
    }
}
";
        let v = run_on(&[("crates/core/src/x.rs", src)]);
        let cp: Vec<&Violation> =
            v.iter().filter(|v| v.rule == RuleId::CancelPollReachability).collect();
        assert_eq!(cp.len(), 1, "{v:?}");
        assert_eq!(cp[0].line, 5);
        assert!(cp[0].trace.len() >= 3, "{:?}", cp[0].trace);
        assert!(cp[0].trace[0].note.contains("entry point"));
    }

    #[test]
    fn lock_order_cycle_and_clean_order() {
        let src = "\
struct S;
impl S {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
    fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
";
        let v = run_on(&[("crates/core/src/l.rs", src)]);
        let lo: Vec<&Violation> = v.iter().filter(|v| v.rule == RuleId::LockOrder).collect();
        assert_eq!(lo.len(), 1, "{v:?}");
        assert!(!lo[0].trace.is_empty());

        let clean = "\
struct S;
impl S {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
    fn ab2(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
}
";
        let v = run_on(&[("crates/core/src/l.rs", clean)]);
        assert!(v.iter().all(|v| v.rule != RuleId::LockOrder), "{v:?}");
    }

    #[test]
    fn wire_taint_flags_uncapped_and_respects_guard() {
        let src = "\
fn read(headers: &[String]) -> Vec<u8> {
    let n = headers.len();
    let buf = vec![0u8; n];
    buf
}
fn guarded(headers: &[String], max: usize) -> Vec<u8> {
    let n = headers.len();
    if n > max { return Vec::new(); }
    vec![0u8; n]
}
";
        let v = run_on(&[("crates/server/src/h.rs", src)]);
        let wt: Vec<&Violation> = v.iter().filter(|v| v.rule == RuleId::WireTaint).collect();
        assert_eq!(wt.len(), 1, "{v:?}");
        assert_eq!(wt[0].line, 3);
        assert!(!wt[0].trace.is_empty());
    }

    #[test]
    fn wire_taint_interprocedural() {
        let src = "\
fn boundary(body: &str) {
    let size = body.len();
    alloc_for(size);
}
fn alloc_for(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}
";
        let v = run_on(&[("crates/server/src/i.rs", src)]);
        let wt: Vec<&Violation> = v.iter().filter(|v| v.rule == RuleId::WireTaint).collect();
        assert_eq!(wt.len(), 1, "{v:?}");
        assert_eq!(wt[0].line, 6, "{wt:?}");
        assert!(wt[0].trace.iter().any(|s| s.note.contains("alloc_for")), "{:?}", wt[0].trace);
    }
}
