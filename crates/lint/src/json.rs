//! Minimal JSON reader/writer for the baseline file and `--json` output.
//!
//! The workspace is std-only and offline, so this mirrors what
//! `urbane-serve` does for its wire format: a small recursive-descent parser
//! covering exactly the JSON subset we emit, plus a string escaper. Parsing
//! never panics — malformed input returns `Err` with a byte offset.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= u32::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }
}

/// Escape `s` as a JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = Parser { chars: bytes, i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.chars.len() {
        return Err(format!("trailing junk at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.i += 1;
        }
    }

    fn expect_ch(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.i))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.chars[self.i..].starts_with(&lit.chars().collect::<Vec<_>>()[..]) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Json::Str),
            Some('t') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some('f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some('n') if self.eat_lit("null") => Ok(Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_ch('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_ch(':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_ch('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_ch('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some('"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                self.i += 1;
                                let d = self
                                    .peek()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| format!("bad \\u escape at {}", self.i))?;
                                code = code * 16 + d;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_escapes() {
        let s = "a\"b\\c\nd\te";
        let parsed = parse(&escape(s));
        assert_eq!(parsed, Ok(Json::Str(s.to_string())));
    }

    #[test]
    fn parses_nested() {
        let doc = r#"{"version": 1, "entries": [{"file": "x.rs", "line": 3}]}"#;
        let v = match parse(doc) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(v.get("version").and_then(Json::as_u32), Some(1));
        let line = v
            .get("entries")
            .and_then(Json::as_array)
            .and_then(|a| a.first())
            .and_then(|e| e.get("line"))
            .and_then(Json::as_u32);
        assert_eq!(line, Some(3));
    }

    #[test]
    fn rejects_junk() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
    }
}
