#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
//! # urbane-lint — workspace invariant checker with a ratcheting baseline
//!
//! The reproduction's correctness story (bit-identical answers regardless of
//! thread count, the §8 degradation ladder, poison-recovering panic
//! isolation) rests on conventions that `rustc` cannot see. This crate makes
//! them mechanical: a lightweight Rust [`lexer`] (string/char/comment/
//! raw-string aware — no `syn`, the tree is offline), a structural [`scope`]
//! index (test spans, attributes, fn bodies), a [`rules`] catalog of eleven
//! project invariants, a whole-workspace [`callgraph`] feeding the
//! [`dataflow`] analyses (cancel-poll reachability, lock ordering,
//! wire-input taint — each finding carries a witness trace), an [`engine`]
//! that walks every `crates/*/src` file, and a committed ratcheting
//! [`baseline`] so existing debt is frozen while new debt fails CI.
//!
//! Two entry points:
//!
//! ```text
//! cargo run -p urbane-lint -- check      # fail on any violation beyond lint-baseline.json
//! cargo run -p urbane-lint -- baseline   # regenerate the ledger (ratchet down)
//! ```
//!
//! See DESIGN.md §11 for the rule catalog and suppression grammar, and §16
//! for the call-graph analyses and the evidence-directive vocabulary.

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use baseline::{check, Baseline, CheckReport};
pub use callgraph::{CallGraph, SourceFile};
pub use engine::{
    collect_workspace_files, find_workspace_root, scan_files, scan_fixtures, scan_workspace,
};
pub use rules::{scan_source, RuleId, ScanMode, TraceStep, Violation};
