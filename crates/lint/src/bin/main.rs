#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
//! `urbane-lint` CLI.
//!
//! ```text
//! urbane-lint check    [--root DIR] [--baseline FILE] [--json] [--trace FILE:LINE]
//! urbane-lint baseline [--root DIR] [--baseline FILE]
//! ```
//!
//! `--trace crates/x/src/y.rs:42` prints the full witness path of the
//! violation at that location (call chain / lock chain / taint path) and
//! nothing else.
//!
//! Exit codes: 0 clean (or within baseline), 1 ratchet regression,
//! 2 usage or I/O error.

use std::env;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use urbane_lint::baseline::{check, Baseline};
use urbane_lint::engine::{find_workspace_root, scan_workspace};
use urbane_lint::{json, RuleId};

const USAGE: &str =
    "usage: urbane-lint <check|baseline> [--root DIR] [--baseline FILE] [--json] [--trace FILE:LINE]";

struct Opts {
    command: String,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    trace: Option<(String, u32)>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut it = args.iter();
    let command = it.next().cloned().ok_or_else(|| USAGE.to_string())?;
    if command != "check" && command != "baseline" {
        return Err(format!("unknown command `{command}`\n{USAGE}"));
    }
    let mut opts = Opts { command, root: None, baseline: None, json: false, trace: None };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--baseline" => {
                opts.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--json" => opts.json = true,
            "--trace" => {
                let spec = it.next().ok_or("--trace needs FILE:LINE")?;
                let (file, line) =
                    spec.rsplit_once(':').ok_or("--trace needs FILE:LINE")?;
                let line: u32 =
                    line.parse().map_err(|_| format!("--trace: bad line in `{spec}`"))?;
                opts.trace = Some((file.to_string(), line));
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    let root = match opts.root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root (Cargo.toml + crates/) above cwd; pass --root")?
        }
    };
    let baseline_path = opts.baseline.unwrap_or_else(|| root.join("lint-baseline.json"));

    let violations = scan_workspace(&root)?;

    if opts.command == "baseline" {
        let b = Baseline::from_violations(&violations);
        b.save(&baseline_path)?;
        println!(
            "urbane-lint: wrote {} entr{} to {}",
            b.entries.len(),
            if b.entries.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some((file, line)) = opts.trace {
        let matches: Vec<_> =
            violations.iter().filter(|v| v.file == file && v.line == line).collect();
        if matches.is_empty() {
            println!("urbane-lint: no violation at {file}:{line}");
            return Ok(ExitCode::FAILURE);
        }
        for v in matches {
            println!("{}", v.render());
            if v.trace.is_empty() {
                println!("  (per-line rule — no witness trace)");
            } else {
                println!("  witness:\n{}", v.render_trace());
            }
        }
        return Ok(ExitCode::SUCCESS);
    }

    let base = Baseline::load(&baseline_path)?;
    let report = check(&violations, &base);

    if opts.json {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"ok\": {}, \"current_total\": {}, \"baseline_total\": {}, \"rules\": [",
            report.ok(),
            report.current_total,
            report.baseline_total
        );
        for (i, r) in RuleId::ALL.iter().enumerate() {
            let comma = if i + 1 == RuleId::ALL.len() { "" } else { ", " };
            let _ = write!(out, "{}{}", json::escape(r.as_str()), comma);
        }
        out.push_str("], \"violations\": [");
        for (i, v) in violations.iter().enumerate() {
            let comma = if i + 1 == violations.len() { "" } else { ", " };
            let mut trace = String::from("[");
            for (j, s) in v.trace.iter().enumerate() {
                let tc = if j + 1 == v.trace.len() { "" } else { ", " };
                let _ = write!(
                    trace,
                    "{{\"file\": {}, \"line\": {}, \"note\": {}}}{}",
                    json::escape(&s.file),
                    s.line,
                    json::escape(&s.note),
                    tc
                );
            }
            trace.push(']');
            let _ = write!(
                out,
                "{{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"trace\": {}}}{}",
                json::escape(&v.file),
                v.line,
                json::escape(v.rule.as_str()),
                json::escape(&v.message),
                trace,
                comma
            );
        }
        out.push_str("], \"regressions\": [");
        for (i, r) in report.regressions.iter().enumerate() {
            let comma = if i + 1 == report.regressions.len() { "" } else { ", " };
            let _ = write!(
                out,
                "{{\"file\": {}, \"rule\": {}, \"baselined\": {}, \"found\": {}}}{}",
                json::escape(&r.file),
                json::escape(&r.rule),
                r.baselined,
                r.found,
                comma
            );
        }
        out.push_str("]}");
        println!("{out}");
    } else if report.ok() {
        println!(
            "urbane-lint: OK — {} violation(s), all within the {}-entry baseline",
            report.current_total, report.baseline_total
        );
        if !report.improved.is_empty() {
            println!(
                "urbane-lint: {} bucket(s) improved — run `urbane-lint baseline` to ratchet down:",
                report.improved.len()
            );
            for (file, rule, was, now) in &report.improved {
                println!("  {file} [{rule}]: {was} -> {now}");
            }
        }
    } else {
        println!("urbane-lint: FAILED — new debt beyond the ratchet baseline:");
        for r in &report.regressions {
            println!(
                "  {} [{}]: baseline allows {}, found {}:",
                r.file, r.rule, r.baselined, r.found
            );
            for v in &r.violations {
                println!("    {}", v.render());
                if !v.trace.is_empty() {
                    println!("{}", v.render_trace());
                }
            }
        }
        println!(
            "fix the new violation(s), add an inline `// lint: allow(<rule>) <why>`, or — for \
             deliberate new debt — regenerate with `cargo run -p urbane-lint -- baseline`"
        );
    }

    Ok(if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("urbane-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
