//! Fixture: wall-clock reads in answer paths, one annotated as
//! metrics-only.

pub fn merge_badly() -> u64 {
    let t = std::time::Instant::now(); //~ determinism
    t.elapsed().as_nanos() as u64
}

pub fn stamp_badly() -> bool {
    std::time::SystemTime::now().elapsed().is_ok() //~ determinism
}

pub fn merge_with_metrics() -> u64 {
    // lint: allow(determinism) fixture: elapsed feeds only a latency metric, never the answer
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
