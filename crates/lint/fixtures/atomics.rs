//! Fixture: relaxed-ordering annotations and a correctly paired
//! Release store / Acquire load (which must not fire).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Flags {
    done: AtomicBool,
    count: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        self.done.store(true, Ordering::Release);
    }

    pub fn observe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    pub fn bump_bad(&self) {
        self.count.fetch_add(1, Ordering::Relaxed); //~ relaxed-ordering
    }

    pub fn bump_ok(&self) {
        // lint: relaxed-ok fixture: a pure monotone counter needs no ordering
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}
