//! Fixture: catch_unwind whose result vanishes, next to one that is
//! visibly handled.

pub fn swallowed(job: Box<dyn FnOnce()>) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)); //~ catch-unwind-pairing
    log_done();
}

pub fn handled(job: Box<dyn FnOnce()>) -> bool {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    !outcome.is_err()
}

fn log_done() {}
