//! Fixture: lock acquisition order. Two code paths taking the same pair of
//! locks in opposite orders can deadlock; consistent order is clean.

use std::sync::Mutex;

pub struct LoShared {
    lo_alpha: Mutex<u64>,
    lo_beta: Mutex<u64>,
    lo_gamma: Mutex<u64>,
}

impl LoShared {
    pub fn lo_alpha_then_beta(&self) -> u64 {
        let a = self.lo_alpha.lock();
        //~^ lock-order
        let b = self.lo_beta.lock();
        let out = a.is_ok() as u64 + b.is_ok() as u64;
        drop(b);
        drop(a);
        out
    }

    pub fn lo_beta_then_alpha(&self) -> u64 {
        let b = self.lo_beta.lock();
        let a = self.lo_alpha.lock();
        let out = a.is_ok() as u64 + b.is_ok() as u64;
        drop(a);
        drop(b);
        out
    }

    /// Same pair through a call: holding gamma while the callee takes beta
    /// is fine as long as no path takes them the other way round.
    pub fn lo_gamma_then_beta(&self) -> u64 {
        let g = self.lo_gamma.lock();
        let out = self.lo_take_beta() + g.is_ok() as u64;
        drop(g);
        out
    }

    fn lo_take_beta(&self) -> u64 {
        let b = self.lo_beta.lock();
        b.is_ok() as u64
    }
}
