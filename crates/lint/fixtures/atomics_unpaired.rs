//! Fixture: a Release store whose flag is never loaded with Acquire
//! anywhere in the corpus — the release has nothing to synchronize with.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Orphan {
    ready: AtomicBool,
}

impl Orphan {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release); //~ release-acquire
    }

    pub fn peek(&self) -> bool {
        self.ready.load(Ordering::Relaxed) //~ relaxed-ordering
    }
}
