//! Fixture: cancel-poll reachability. Loops over points reached from an
//! annotated entry point must transitively hit a budget/cancel poll.

pub struct CpBudget {
    cancelled: bool,
}

impl CpBudget {
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

// lint: entrypoint fixture request dispatch
pub fn cp_handle(points: &[u64], budget: &CpBudget) -> u64 {
    cp_route(points, budget)
}

fn cp_route(points: &[u64], budget: &CpBudget) -> u64 {
    cp_scan_unpolled(points) + cp_scan_polled(points, budget) + cp_scan_waived(points)
}

fn cp_scan_unpolled(points: &[u64]) -> u64 {
    let mut acc = 0;
    for p in points {
        //~^ cancel-poll-reachability
        acc += *p;
    }
    acc
}

fn cp_scan_polled(points: &[u64], budget: &CpBudget) -> u64 {
    let mut acc = 0;
    for p in points {
        if budget.is_cancelled() {
            return acc;
        }
        acc += *p;
    }
    acc
}

fn cp_scan_waived(points: &[u64]) -> u64 {
    let mut acc = 0;
    // lint: allow(cancel-poll-reachability) fixture: bounded preview slice
    for p in points {
        acc += *p;
    }
    acc
}

/// Not reachable from any entry point: silent even without a poll.
pub fn cp_offline_rebuild(points: &[u64]) -> u64 {
    let mut acc = 0;
    for p in points {
        acc ^= *p;
    }
    acc
}
