//! Fixture: raw identifiers (`r#type`, `r#match`) must lex as single ident
//! tokens. A mislexed `r#` would desync the brace-matched scope index and
//! misplace every finding below it — the marker here pins the alignment.

pub struct RawCfg {
    pub r#type: Option<u32>,
    pub r#match: u32,
}

pub fn raw_read_type(cfg: &RawCfg) -> u32 {
    cfg.r#type.unwrap() //~ panic-freedom
}

pub fn raw_read_checked(cfg: &RawCfg) -> u32 {
    match cfg.r#type {
        Some(v) => v + cfg.r#match,
        None => cfg.r#match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Inside a test span the unwrap is exempt: if raw idents split into
    // `r # type` the scope index would drift and this would fire.
    #[test]
    fn raw_idents_keep_test_spans_aligned() {
        let cfg = RawCfg { r#type: Some(1), r#match: 2 };
        assert_eq!(cfg.r#type.unwrap(), 1);
    }
}
