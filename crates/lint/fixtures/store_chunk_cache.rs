//! Fixture: out-of-core store patterns — chunk caching must be capped and
//! chunk merges must stay wall-clock free.

use std::collections::HashMap;
use std::time::Instant;

pub struct ChunkCache {
    resident: HashMap<u32, Vec<u8>>,
    order: Vec<u32>,
}

impl ChunkCache {
    pub fn admit(&mut self, id: u32, payload: Vec<u8>) {
        self.resident.insert(id, payload); //~ bounded-growth
        self.order.push(id); //~ bounded-growth
    }

    pub fn admit_capped(&mut self, id: u32, payload: Vec<u8>) {
        if self.resident.len() < 64 {
            // lint: bounded-by 64 resident chunks (one per worker, LRU evicts)
            self.resident.insert(id, payload);
        }
    }

    pub fn merge_partials(&self, partials: &[u64]) -> u64 {
        let started = Instant::now(); //~ determinism
        let sum: u64 = partials.iter().sum();
        let _ = started;
        sum
    }

    pub fn merge_is_pure(&self, partials: &[u64]) -> u64 {
        partials.iter().sum()
    }
}
