//! Fixture: batching-planner admission queues. Group state admits members
//! on the request path, so every push must show its cap — the planner seals
//! a group at `max_size`, and the group map is bounded by the number of
//! concurrently open groups (sealing removes the entry).

use std::collections::HashMap;

pub struct Planner {
    open_groups: HashMap<String, u64>,
    members: Vec<u64>,
    max_size: usize,
}

impl Planner {
    pub fn admit_unbounded(&mut self, q: u64) {
        self.members.push(q); //~ bounded-growth
    }

    pub fn open_group_unbounded(&mut self, key: String, q: u64) {
        self.open_groups.insert(key, q); //~ bounded-growth
    }

    pub fn admit(&mut self, key: String, q: u64) {
        // lint: bounded-by the number of concurrently open groups (sealing removes the entry)
        self.open_groups.insert(key, q);
        if self.members.len() < self.max_size {
            // lint: bounded-by max_size (the member that fills the group seals it)
            self.members.push(q);
        }
    }
}
