//! Fixture: retry loops with and without a visible attempt cap.

pub struct Transport {
    ok: bool,
    backoff_ms: u64,
    retry_count: u64,
}

impl Transport {
    fn try_send(&mut self) -> bool {
        self.ok
    }

    fn retry(&mut self) {
        self.retry_count += 1;
    }

    fn step(&mut self) -> bool {
        self.ok
    }

    fn stopping(&self) -> bool {
        !self.ok
    }

    fn note(&self, _msg: &str) {}

    pub fn naive_forever(&mut self) {
        loop { //~ bounded-retry
            if self.try_send() {
                break;
            }
            self.retry_count += 1;
        }
    }

    pub fn spin_with_backoff(&mut self) {
        while !self.ok { //~ bounded-retry
            self.backoff_ms *= 2;
            self.retry();
        }
    }

    pub fn bounded_by_attempts(&mut self, max_attempts: u32) {
        let mut attempt = 0;
        while attempt < max_attempts {
            if self.try_send() {
                break;
            }
            self.retry();
            attempt += 1;
        }
    }

    pub fn bounded_by_deadline(&mut self, deadline_ms: u64) {
        loop {
            if self.try_send() || self.backoff_ms > deadline_ms {
                break;
            }
            self.retry();
        }
    }

    pub fn supervised(&mut self) {
        // lint: allow(bounded-retry) supervisor loop runs until shutdown; each retry is delayed
        loop {
            if self.stopping() {
                break;
            }
            self.retry();
        }
    }

    pub fn drain_is_not_a_retry_loop(&mut self) {
        loop {
            if !self.step() {
                break;
            }
        }
    }

    pub fn strings_are_not_identifiers(&mut self) {
        loop {
            if self.step() {
                break;
            }
            self.note("will retry");
            return;
        }
    }
}
