//! Fixture: malformed `// lint:` directives are themselves violations.

// lint: allow(panic-freedom)
//~^ directive-syntax
pub fn missing_justification() {}

// lint: allow(made-up-rule) with a reason
//~^ directive-syntax
pub fn unknown_rule() {}

// lint: relaxed-ok
//~^ directive-syntax
pub fn missing_reason() {}

// lint: bounded-by
//~^ directive-syntax
pub fn missing_cap() {}

// lint: frobnicate the widget
//~^ directive-syntax
pub fn unknown_directive() {}
