//! Fixture: malformed `// lint:` directives are themselves violations.

// lint: allow(panic-freedom)
//~^ directive-syntax
pub fn missing_justification() {}

// lint: allow(made-up-rule) with a reason
//~^ directive-syntax
pub fn unknown_rule() {}

// lint: relaxed-ok
//~^ directive-syntax
pub fn missing_reason() {}

// lint: bounded-by
//~^ directive-syntax
pub fn missing_cap() {}

// lint: frobnicate the widget
//~^ directive-syntax
pub fn unknown_directive() {}

// lint: capped-by
//~^ directive-syntax
pub fn missing_capped_bound() {}

// lint: entrypoint
//~^ directive-syntax
pub fn entrypoint_missing_reason() {}

// lint: polls-budget
//~^ directive-syntax
pub fn polls_budget_missing_reason() {}
