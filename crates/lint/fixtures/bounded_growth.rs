//! Fixture: growth into self-rooted state with and without a cap note.

use std::collections::HashMap;

pub struct Session {
    items: Vec<u64>,
    lookup: HashMap<u64, u64>,
}

impl Session {
    pub fn record(&mut self, v: u64) {
        self.items.push(v); //~ bounded-growth
    }

    pub fn remember(&mut self, k: u64, v: u64) {
        self.lookup.insert(k, v); //~ bounded-growth
    }

    pub fn record_capped(&mut self, v: u64) {
        if self.items.len() < 1024 {
            // lint: bounded-by 1024 entries per session
            self.items.push(v);
        }
    }

    pub fn local_growth_is_fine(&self) -> Vec<u64> {
        let mut out = Vec::new();
        out.push(self.items.len() as u64);
        out
    }
}
