//! Fixture: wire-input taint. Request-derived sizes must pass a bounds
//! check (or carry a `capped-by` directive) before sizing an allocation.

pub fn wt_uncapped(body: &str) -> Vec<u8> {
    let n = body.len();
    let mut out = Vec::with_capacity(n);
    //~^ wire-taint
    out.push(0);
    out
}

pub fn wt_guarded(body: &str, max: usize) -> Vec<u8> {
    let n = body.len();
    if n > max {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

pub fn wt_clamped(body: &str) -> Vec<u8> {
    let n = body.len().min(4096);
    Vec::with_capacity(n)
}

pub fn wt_annotated(body: &str) -> Vec<u8> {
    let n = body.len();
    // lint: capped-by fixture: the framing layer rejects bodies over 1 MiB
    Vec::with_capacity(n)
}

pub fn wt_boundary(headers: &[String]) -> Vec<u8> {
    let n = headers.len();
    wt_alloc_helper(n)
}

fn wt_alloc_helper(n: usize) -> Vec<u8> {
    vec![0u8; n]
    //~^ wire-taint
}
