//! Fixture: additive block-cache patterns — per-query block admission must
//! be byte-budgeted, and the LRU bookkeeping that makes the budget real
//! (recency list, byte counter) is state too.

use std::collections::HashMap;

pub struct BlockStore {
    blocks: HashMap<u64, Vec<u8>>,
    recency: Vec<u64>,
    bytes: usize,
    budget_bytes: usize,
}

impl BlockStore {
    /// Every query that misses admits a block: without a cap this grows by
    /// one entry per distinct viewport forever.
    pub fn admit(&mut self, key: u64, block: Vec<u8>) {
        self.blocks.insert(key, block); //~ bounded-growth
        self.recency.push(key); //~ bounded-growth
    }

    /// The real pattern: admit under a byte budget and evict the coldest
    /// entries until the budget holds again.
    pub fn admit_budgeted(&mut self, key: u64, block: Vec<u8>) {
        let cost = block.len();
        if cost > self.budget_bytes {
            return;
        }
        // lint: bounded-by budget_bytes (evict-while-over-budget below)
        self.blocks.insert(key, block);
        // lint: bounded-by budget_bytes (one recency slot per resident block)
        self.recency.push(key);
        self.bytes += cost;
        while self.bytes > self.budget_bytes {
            let Some(coldest) = self.recency.first().copied() else { break };
            self.recency.retain(|&k| k != coldest);
            if let Some(evicted) = self.blocks.remove(&coldest) {
                self.bytes -= evicted.len();
            }
        }
    }

    /// Composing an answer from resident blocks only reads; scratch state
    /// local to the call is not request-path growth.
    pub fn compose(&self, keys: &[u64]) -> Vec<u8> {
        let mut out = Vec::new();
        for k in keys {
            if let Some(b) = self.blocks.get(k) {
                out.extend_from_slice(b);
            }
        }
        out
    }
}
