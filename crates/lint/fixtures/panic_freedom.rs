//! Fixture: every panic-freedom pattern, plus exemptions that must not fire.

pub fn naked_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() //~ panic-freedom
}

pub fn naked_expect(x: Option<u32>) -> u32 {
    x.expect("present") //~ panic-freedom
}

pub fn explicit_panic(flag: bool) {
    if flag {
        panic!("boom"); //~ panic-freedom
    }
}

pub fn unreachable_arm(v: u8) -> u8 {
    match v {
        0 => 1,
        _ => unreachable!(), //~ panic-freedom
    }
}

pub fn todo_stub() {
    todo!() //~ panic-freedom
}

pub fn literal_index(xs: &[u32]) -> u32 {
    xs[0] //~ panic-freedom
}

pub fn suppressed_unwrap(x: Option<u32>) -> u32 {
    // lint: allow(panic-freedom) fixture: a justified suppression must silence the rule
    x.unwrap()
}

pub fn strings_and_comments_are_inert() -> &'static str {
    // a comment mentioning x.unwrap() or panic!("boom") must not fire
    "neither does x.unwrap() or panic!(\"boom\") inside a string literal"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let xs = vec![1u32];
        assert_eq!(xs[0], xs.first().copied().unwrap());
    }
}
