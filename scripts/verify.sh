#!/usr/bin/env bash
# Run the urbane-verify ε-certification harness and write VERIFY_report.json.
#
# The fast corpus (default) finishes in well under a second after the build:
# 15 differential workloads ≈ 280 runs across bounded / weighted / accurate /
# id-buffer / prepared × threads {1,4} × binning {Off, Grid}, plus the
# metamorphic laws. The full sweep quadruples the corpus.
#
#   scripts/verify.sh                 # fast corpus → VERIFY_report.json
#   VERIFY_FULL=1 scripts/verify.sh   # full sweep (~60 workloads, ~1100 runs)
#   scripts/verify.sh --seed 7 --out /tmp/report.json   # extra flags pass through
#
# Exit status is 0 iff every differential run certified its budget and every
# metamorphic law held; the report is written either way.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo run --release -p urbane-verify --bin verify -- "$@"
