#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Everything runs offline — the workspace
# vendors its few dependencies in-tree (vendor/), so no registry access is
# needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Invariant lint: the per-line rules (panic-freedom, atomics orderings,
# catch_unwind pairing, bounded growth, determinism) plus the call-graph
# analyses (cancel-poll reachability, lock ordering, wire-input taint; see
# DESIGN.md §11 and §16). Fails on any violation beyond the committed
# lint-baseline.json ratchet. The machine-readable report is kept as a CI
# artifact, and the rule catalog has a floor — a refactor that silently
# drops a rule fails here, not in review.
cargo run --release -p urbane-lint -- check
cargo run --release -p urbane-lint -- check --json > LINT_report.json
rule_count="$(sed -n 's/.*"rules": \[\([^]]*\)\].*/\1/p' LINT_report.json \
  | grep -o '"[a-z-]*"' | wc -l)"
[ "$rule_count" -ge 11 ] || {
  echo "lint rule catalog shrank to $rule_count rules (floor: 11)"
  exit 1
}
echo "lint report OK ($rule_count rules) — artifact: LINT_report.json"

# Verify stage: the ε-certification harness on the fast corpus (15 seeded
# workloads ≈ 280 differential runs + the metamorphic laws, sub-second
# after the build). Fails if any run exceeds its analytic error budget or
# any law is violated. VERIFY_FULL=1 in the environment quadruples the
# corpus for the nightly sweep — same command, same report schema.
./scripts/verify.sh --quiet --out VERIFY_report.json
echo "verify stage OK"

# Bench smoke: the perf suite must run to completion without panicking
# (its built-in binned == unbinned assertions double as a correctness
# gate). Small scale, one rep — this is a crash check, not a regression
# gate; the real numbers come from scripts/bench.sh.
cargo run --release -p urbane-bench --bin repro -- \
  --exp bench --scale 20000 --threads 2 --reps 1 > /dev/null

# Server smoke: boot urbane-serve on an ephemeral port, hit every endpoint
# once over real TCP, prove the repeat query is a cache hit, and shut down
# cleanly. Fast (small synthetic dataset) and self-contained.
serve_log="$(mktemp)"
target/release/urbane-serve --port 0 --rows 20000 --workers 2 > "$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's#^urbane-serve listening on http://##p' "$serve_log")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "urbane-serve did not report an address"; cat "$serve_log"; exit 1; }

# grep reads all of stdin (no -q) so curl never sees a closed pipe under
# pipefail.
curl -fsS "http://$addr/healthz" | grep '^ok' > /dev/null
curl -fsS "http://$addr/datasets" | grep '"taxi"' > /dev/null
body='{"dataset":"taxi","level":1}'
curl -fsS -X POST -d "$body" "http://$addr/query" | grep '"cached":false' > /dev/null
curl -fsS -X POST -d "$body" "http://$addr/query" | grep '"cached":true' > /dev/null
curl -fsS "http://$addr/metrics" | grep '^urbane_requests_total{path="/query",status="200"}' > /dev/null
curl -fsS "http://$addr/metrics" | grep '^urbane_cache_hits_total' > /dev/null

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"
echo "server smoke OK"

# Store smoke: build a `.ubs` out-of-core store with the CLI, prove the
# build is byte-deterministic, answer an exact index join straight off the
# chunk directory, and cold-boot the server against the store directory
# (--store-dir) with a streamed mode=index query that must not page the
# table in.
store_dir="$(mktemp -d)"
target/release/urbane-cli generate --rows 20000 --seed 7 \
  --out "$store_dir/taxi.upt" 2> /dev/null
target/release/urbane-cli build-store --data "$store_dir/taxi.upt" \
  --out "$store_dir/taxi.ubs" --chunk-rows 4096 2> /dev/null
target/release/urbane-cli build-store --data "$store_dir/taxi.upt" \
  --out "$store_dir/rebuild.ubs" --chunk-rows 4096 2> /dev/null
cmp "$store_dir/taxi.ubs" "$store_dir/rebuild.ubs" \
  || { echo "store build is not byte-deterministic"; exit 1; }
rm -f "$store_dir/rebuild.ubs"

# The exact index join over the store must rank regions identically to the
# accurate raster path over the original table.
idx="$(target/release/urbane-cli query --data "$store_dir/taxi.ubs" \
  --regions grid:8 --agg count --mode index --top 5 2> /dev/null)"
acc="$(target/release/urbane-cli query --data "$store_dir/taxi.upt" \
  --regions grid:8 --agg count --mode accurate --top 5 2> /dev/null)"
[ "$idx" = "$acc" ] || {
  echo "index join diverged from accurate raster:"
  printf 'index:\n%s\naccurate:\n%s\n' "$idx" "$acc"
  exit 1
}

serve_log="$(mktemp)"
target/release/urbane-serve --port 0 --rows 2000 --workers 2 \
  --store-dir "$store_dir" > "$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's#^urbane-serve listening on http://##p' "$serve_log")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "urbane-serve did not report an address"; cat "$serve_log"; exit 1; }

curl -fsS -X POST -d '{"dataset":"taxi","level":1,"mode":"index"}' \
  "http://$addr/query" | grep '"error_bound":0' > /dev/null
curl -fsS "http://$addr/metrics" | grep '^urbane_store_streamed_queries_total 1' > /dev/null
curl -fsS "http://$addr/metrics" | grep '^urbane_store_page_ins_total 0' > /dev/null

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"
rm -rf "$store_dir"
echo "store smoke OK"

# Batch smoke: boot urbane-serve with the admission window open and fire
# two concurrent distinct queries (distinct filters — different cache keys,
# so neither the result cache nor single-flight can absorb them). Both must
# land in ONE coalesced batch: batched_queries (the histogram sum) has to
# exceed batches (the count). batch-max 2 makes this deterministic — the
# second arrival seals and dispatches the group immediately.
serve_log="$(mktemp)"
target/release/urbane-serve --port 0 --rows 20000 --workers 2 \
  --deadline-ms 30000 --batch-window-ms 2000 --batch-max 2 > "$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's#^urbane-serve listening on http://##p' "$serve_log")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "urbane-serve did not report an address"; cat "$serve_log"; exit 1; }

curl -fsS -X POST -d '{"dataset":"taxi","level":1,"filters":[{"type":"range","column":"fare","min":0,"max":500}]}' \
  "http://$addr/query" > /dev/null &
c1=$!
curl -fsS -X POST -d '{"dataset":"taxi","level":1,"filters":[{"type":"range","column":"fare","min":0,"max":501}]}' \
  "http://$addr/query" > /dev/null &
c2=$!
wait "$c1" "$c2"

curl -fsS "http://$addr/metrics" | awk '
  /^urbane_batch_size_sum /   { sum = $2 }
  /^urbane_batch_size_count / { count = $2 }
  END {
    if (count < 1 || sum <= count) {
      printf "no coalesced batch: batches=%d batched_queries=%d\n", count, sum
      exit 1
    }
  }'

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"
echo "batch smoke OK"

# Swarm smoke: the chaos-driven sharded front at miniature scale — 2
# shards, 1 scheduled kill (wedge + health-loop revival), zipfian clients.
# `repro --exp swarm` exits non-zero unless every full-fidelity answer
# matched the serial oracle, no 5xx escaped, and availability stayed ≥99%;
# the jq-free grep below additionally pins the kill actually firing and a
# clean JSON artifact.
swarm_json="$(mktemp)"
cargo run --release -p urbane-bench --bin repro -- \
  --exp swarm --scale 6000 --shards 2 --clients 3 --requests 40 --kills 1 \
  --json "$swarm_json" > /dev/null
grep -q '"kills_fired": 1' "$swarm_json" || { echo "swarm kill did not fire"; cat "$swarm_json"; exit 1; }
grep -q '"wrong": 0' "$swarm_json" || { echo "swarm served wrong answers"; cat "$swarm_json"; exit 1; }
grep -q '"passed": true' "$swarm_json" || { echo "swarm smoke failed"; cat "$swarm_json"; exit 1; }
rm -f "$swarm_json"
echo "swarm smoke OK"

# Block-cache smoke: boot urbane-serve with the additive block cache on and
# replay one pan step — two overlapping viewports whose exact keys differ,
# so neither the result cache nor single-flight can help. The second query
# must compose cached blocks from the first: /metrics has to report a
# nonzero partial_hit count (and nonzero per-block hits). Coordinates are
# the nyc_like extent in Mercator meters; level 2 is the tract grid, fine
# enough that a 70% viewport fully contains many regions.
serve_log="$(mktemp)"
target/release/urbane-serve --port 0 --rows 20000 --workers 2 \
  --deadline-ms 30000 --block-cache-bytes 8388608 > "$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's#^urbane-serve listening on http://##p' "$serve_log")"
  [ -n "$addr" ] && break
  sleep 0.2
done
[ -n "$addr" ] || { echo "urbane-serve did not report an address"; cat "$serve_log"; exit 1; }

curl -fsS -X POST -d '{"dataset":"taxi","level":2,"filters":[{"type":"bbox","x0":-8243208,"y0":4944000,"x1":-8215935,"y1":5001000}]}' \
  "http://$addr/query" | grep '"cached":false' > /dev/null
curl -fsS -X POST -d '{"dataset":"taxi","level":2,"filters":[{"type":"bbox","x0":-8239312,"y0":4944000,"x1":-8212038,"y1":5001000}]}' \
  "http://$addr/query" | grep '"cached":false' > /dev/null

curl -fsS "http://$addr/metrics" | awk '
  /^urbane_blockcache_hits_total /         { hits = $2 }
  /^urbane_blockcache_partial_hits_total / { partial = $2 }
  END {
    if (partial < 1 || hits < 1) {
      printf "pan step did not compose cached blocks: hits=%d partial_hits=%d\n", hits, partial
      exit 1
    }
  }'

kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_log"
echo "blockcache smoke OK"
