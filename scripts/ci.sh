#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Everything runs offline — the workspace
# vendors its few dependencies in-tree (vendor/), so no registry access is
# needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
