#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Everything runs offline — the workspace
# vendors its few dependencies in-tree (vendor/), so no registry access is
# needed or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: the perf suite must run to completion without panicking
# (its built-in binned == unbinned assertions double as a correctness
# gate). Small scale, one rep — this is a crash check, not a regression
# gate; the real numbers come from scripts/bench.sh.
cargo run --release -p urbane-bench --bin repro -- \
  --exp bench --scale 20000 --threads 2 --reps 1 > /dev/null
