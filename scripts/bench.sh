#!/usr/bin/env bash
# Reproduce BENCH_rasterjoin.json — the binning + work-stealing numbers
# quoted in CHANGES.md/DESIGN.md. Short deterministic mode: seeded 1M-point
# taxi workload, 260 neighborhoods, 4 worker threads, median of 5 reps.
#
#   scripts/bench.sh             # 1M points, 4 threads → BENCH_rasterjoin.json
#   SCALE=200000 THREADS=2 scripts/bench.sh   # smaller/laptop-friendly run
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

SCALE="${SCALE:-1000000}"
THREADS="${THREADS:-4}"
REPS="${REPS:-5}"
OUT="${OUT:-BENCH_rasterjoin.json}"

cargo run --release -p urbane-bench --bin repro -- \
  --exp bench --scale "$SCALE" --threads "$THREADS" --reps "$REPS" --json "$OUT"
