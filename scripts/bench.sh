#!/usr/bin/env bash
# Reproduce BENCH_rasterjoin.json — the binning + work-stealing numbers
# quoted in CHANGES.md/DESIGN.md. Short deterministic mode: seeded 1M-point
# taxi workload, 260 neighborhoods, 4 worker threads, median of 5 reps.
#
#   scripts/bench.sh             # 1M points, 4 threads → BENCH_rasterjoin.json
#   SCALE=200000 THREADS=2 scripts/bench.sh   # smaller/laptop-friendly run
#   scripts/bench.sh indexjoin   # just the raster-vs-index race (the
#                                # `index_join` series of the JSON): bounded
#                                # raster vs exact `.ubs` index join across
#                                # region-set sizes, with the crossover point
#
# Also reproduces BENCH_batch.json — the multi-query batching suite: 8
# closed-loop clients with distinct filters against one in-process service,
# admission window on vs off, cache disabled in both legs, answers
# cross-checked bit-for-bit between the legs.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

SCALE="${SCALE:-1000000}"
THREADS="${THREADS:-4}"
REPS="${REPS:-5}"
OUT="${OUT:-BENCH_rasterjoin.json}"
BATCH_CLIENTS="${BATCH_CLIENTS:-8}"
BATCH_REQUESTS="${BATCH_REQUESTS:-8}"
BATCH_WINDOW_MS="${BATCH_WINDOW_MS:-30}"
BATCH_OUT="${BATCH_OUT:-BENCH_batch.json}"

if [ "${1:-}" = "indexjoin" ]; then
  exec cargo run --release -p urbane-bench --bin repro -- \
    --exp indexjoin --scale "$SCALE" --threads "$THREADS" --reps "$REPS"
fi

cargo run --release -p urbane-bench --bin repro -- \
  --exp bench --scale "$SCALE" --threads "$THREADS" --reps "$REPS" --json "$OUT"

cargo run --release -p urbane-bench --bin repro -- \
  --exp batch --scale "$SCALE" --clients "$BATCH_CLIENTS" \
  --requests "$BATCH_REQUESTS" --window-ms "$BATCH_WINDOW_MS" --json "$BATCH_OUT"
