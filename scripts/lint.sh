#!/usr/bin/env bash
# Run the workspace invariant linter (see DESIGN.md §11 and §16).
#
#   scripts/lint.sh                                    # check against the committed baseline
#   scripts/lint.sh --json                             # same, machine-readable
#   scripts/lint.sh --trace FILE:LINE
#                                 # print the witness path (entry point ->
#                                 # call chain -> offending line) behind the
#                                 # finding at FILE:LINE; fails if nothing
#                                 # fires there
#   scripts/lint.sh baseline                           # regenerate lint-baseline.json (ratchet down)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

mode="check"
if [ "${1:-}" = "baseline" ]; then
  mode="baseline"
  shift
fi
exec cargo run --release -p urbane-lint -- "$mode" "$@"
